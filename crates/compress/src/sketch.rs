//! Lossless homomorphic gradient compression (count-sketch family).
//!
//! Li et al. 2024 (PAPERS.md) observe that gradient aggregation only
//! ever *adds* tensors, so a codec whose compressed representations
//! form an additive group lets every aggregation point — host or
//! in-network switch — fold frames **without decompressing**. This
//! module implements that idea over exact fixed-point arithmetic:
//!
//! 1. Values are quantized to a `2^-frac_bits` grid as `i64` counts
//!    (`q = round(v · 2^frac_bits)`). All further arithmetic is integer
//!    and therefore exact, associative, and commutative — the
//!    properties the `add_compressed` proptests pin.
//! 2. The `q` vector is framed in one of three self-describing modes,
//!    chosen canonically from the content:
//!    * `RAW32` / `RAW64` — the **exact-recovery dense path**: the grid
//!      counts verbatim (narrowest width that fits). This is the
//!      fallback whenever sketching would not shrink the frame or the
//!      sketch would not peel.
//!    * `SKETCH` — a support bitmap (`⌈n/8⌉` bytes) plus
//!      [`ROWS`] hashed rows of `i64` cells. Each nonzero index is
//!      added into one seeded cell per row; the decoder rebuilds each
//!      cell's occupancy from the bitmap and *peels* singleton cells
//!      (classic invertible-sketch recovery), so decoding is exact,
//!      not approximate. The encoder verifies peelability before
//!      committing and falls back to RAW otherwise — no lossy path
//!      exists in this codec.
//! 3. Merging two frames ([`SketchFrame::add_compressed`]) decodes
//!    both to grid counts, adds exactly, and re-encodes. Because the
//!    re-encode is a pure function of the summed counts, a merged
//!    frame is **byte-identical** to encoding the sum directly, and
//!    merge order cannot matter.
//!
//! The frame header (16 bytes, little-endian) makes frames fully
//! self-contained so a merge needs no out-of-band codec handle:
//! `[mode: u8][frac_bits: u8][rows: u8][reserved: u8][len: u32]`
//! `[seed: u64]`, followed by the mode-specific payload. Hashing uses
//! the same seeded splitmix64 chain as the sparsifier — nothing about
//! the wire layout depends on time, addresses, or a global RNG.

use crate::inceptionn::DecodeError;
use crate::sparse::splitmix64;

/// Frame header size: `[mode][frac_bits][rows][reserved][len: u32][seed: u64]`.
pub const FRAME_HEADER_BYTES: usize = 16;
/// Hash rows in a `SKETCH`-mode frame.
pub const ROWS: usize = 3;
/// Largest supported grid precision (keeps `f64` round trips exact for
/// gradient-scale magnitudes).
pub const MAX_FRAC_BITS: u8 = 20;

const MODE_RAW32: u8 = 0;
const MODE_RAW64: u8 = 1;
const MODE_SKETCH: u8 = 2;
/// Salt mixed with the frame seed per hash row.
const ROW_SALT: u64 = 0x005E_EDC0_DE0F_5A17;

#[inline]
fn fail(at_value: usize) -> DecodeError {
    DecodeError {
        at_value,
        bit_offset: 0,
        tag: None,
    }
}

/// Frame mode tag (which payload layout follows the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameMode {
    /// Dense grid counts as `i32` — the exact-recovery dense tail.
    Raw32,
    /// Dense grid counts as `i64` (counts overflow `i32`).
    Raw64,
    /// Support bitmap + peelable hashed rows.
    Sketch,
}

/// Parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Payload layout.
    pub mode: FrameMode,
    /// Grid precision: counts are multiples of `2^-frac_bits`.
    pub frac_bits: u8,
    /// Uncompressed value count.
    pub len: usize,
    /// Hash seed (carried on the wire so frames merge without a codec
    /// handle).
    pub seed: u64,
}

/// Parses and validates a frame header.
///
/// # Errors
///
/// Returns [`DecodeError`] on truncation, an unknown mode tag, an
/// out-of-range `frac_bits`, or a row count other than [`ROWS`].
pub fn frame_meta(bytes: &[u8]) -> Result<FrameMeta, DecodeError> {
    if bytes.len() < FRAME_HEADER_BYTES {
        return Err(fail(0));
    }
    let mode = match bytes[0] {
        MODE_RAW32 => FrameMode::Raw32,
        MODE_RAW64 => FrameMode::Raw64,
        MODE_SKETCH => FrameMode::Sketch,
        _ => return Err(fail(0)),
    };
    let frac_bits = bytes[1];
    if frac_bits == 0 || frac_bits > MAX_FRAC_BITS || bytes[2] as usize != ROWS || bytes[3] != 0 {
        return Err(fail(0));
    }
    let len = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]) as usize;
    let seed = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]);
    Ok(FrameMeta {
        mode,
        frac_bits,
        len,
        seed,
    })
}

/// Cells per hash row for a frame with `support` nonzero entries: load
/// factor ~0.5 across [`ROWS`] rows, which peels with overwhelming
/// probability; the encoder still verifies and falls back to RAW on
/// the rare failure. Derived from the bitmap's popcount, so encoder
/// and decoder always agree.
fn cells_per_row(support: usize) -> usize {
    ((support * 2).div_ceil(ROWS)).max(4)
}

#[inline]
fn row_base(seed: u64, row: usize) -> u64 {
    splitmix64(seed ^ ROW_SALT.wrapping_add(row as u64))
}

#[inline]
fn cell_of(base: u64, index: usize, cells: usize) -> usize {
    (splitmix64(base ^ index as u64) % cells as u64) as usize
}

#[inline]
fn grid_scale(frac_bits: u8) -> f64 {
    (1u64 << frac_bits) as f64
}

/// Quantizes `v` to grid counts: `round(v · 2^frac_bits)` with
/// saturation at the `i64` range (NaN quantizes to 0).
#[inline]
pub fn quantize_value(v: f32, frac_bits: u8) -> i64 {
    (f64::from(v) * grid_scale(frac_bits)).round() as i64
}

/// The grid value a count decodes to.
#[inline]
pub fn grid_value(q: i64, frac_bits: u8) -> f32 {
    (q as f64 / grid_scale(frac_bits)) as f32
}

/// Converts accumulated grid counts back to `f32` — the final step of
/// both host decode and the switch's sketch fold, so the two finish
/// bit-identically by construction.
pub fn finish_q(q: &[i64], frac_bits: u8, out: &mut [f32]) {
    for (o, &c) in out.iter_mut().zip(q) {
        *o = grid_value(c, frac_bits);
    }
}

/// Structural peel over cell occupancy only (no values): returns true
/// if every support index resolves through singleton elimination.
fn peels(support: &[u32], cells: usize, seed: u64) -> bool {
    let total = ROWS * cells;
    let mut counts = vec![0u32; total];
    let mut idx_xor = vec![0u64; total];
    let bases = [row_base(seed, 0), row_base(seed, 1), row_base(seed, 2)];
    for &i in support {
        for (r, &base) in bases.iter().enumerate() {
            let c = r * cells + cell_of(base, i as usize, cells);
            counts[c] += 1;
            idx_xor[c] ^= u64::from(i);
        }
    }
    let mut stack: Vec<usize> = (0..total).filter(|&c| counts[c] == 1).collect();
    let mut peeled = 0usize;
    while let Some(c) = stack.pop() {
        if counts[c] != 1 {
            continue;
        }
        let i = idx_xor[c] as usize;
        peeled += 1;
        for (r, &base) in bases.iter().enumerate() {
            let cc = r * cells + cell_of(base, i, cells);
            counts[cc] -= 1;
            idx_xor[cc] ^= i as u64;
            if counts[cc] == 1 {
                stack.push(cc);
            }
        }
    }
    peeled == support.len()
}

/// Encodes grid counts into the canonical frame for `(frac_bits, seed)`:
/// `SKETCH` when it both shrinks the frame and peels, else the
/// narrowest RAW width. Appends to `out`; returns appended bytes.
fn encode_q_append(q: &[i64], frac_bits: u8, seed: u64, out: &mut Vec<u8>) -> usize {
    let before = out.len();
    let n = q.len();
    let mut support: Vec<u32> = Vec::with_capacity(n);
    let mut fits32 = true;
    for (i, &c) in q.iter().enumerate() {
        if c != 0 {
            support.push(i as u32);
        }
        fits32 &= i64::from(c as i32) == c;
    }
    let raw_bytes = FRAME_HEADER_BYTES + n * if fits32 { 4 } else { 8 };
    let cells = cells_per_row(support.len());
    let bitmap_bytes = n.div_ceil(8);
    let sketch_bytes = FRAME_HEADER_BYTES + bitmap_bytes + ROWS * cells * 8;
    let sketchable = sketch_bytes < raw_bytes && peels(&support, cells, seed);

    let mode = if sketchable {
        MODE_SKETCH
    } else if fits32 {
        MODE_RAW32
    } else {
        MODE_RAW64
    };
    out.push(mode);
    out.push(frac_bits);
    out.push(ROWS as u8);
    out.push(0);
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    match mode {
        MODE_RAW32 => {
            for &c in q {
                out.extend_from_slice(&(c as i32).to_le_bytes());
            }
        }
        MODE_RAW64 => {
            for &c in q {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        _ => {
            let mut bitmap = vec![0u8; bitmap_bytes];
            for &i in &support {
                bitmap[i as usize / 8] |= 1 << (i % 8);
            }
            out.extend_from_slice(&bitmap);
            let mut rows = vec![0i64; ROWS * cells];
            let bases = [row_base(seed, 0), row_base(seed, 1), row_base(seed, 2)];
            for &i in &support {
                let c = q[i as usize];
                for (r, &base) in bases.iter().enumerate() {
                    let cell = r * cells + cell_of(base, i as usize, cells);
                    rows[cell] = rows[cell].wrapping_add(c);
                }
            }
            for &cell in &rows {
                out.extend_from_slice(&cell.to_le_bytes());
            }
        }
    }
    out.len() - before
}

/// Folds a frame's grid counts into `acc` (exact `i64` adds) without
/// materializing the dense vector for RAW frames and via singleton
/// peeling for `SKETCH` frames. This is the switch reduce-unit's
/// native operation and the host merge's workhorse.
///
/// # Errors
///
/// Returns [`DecodeError`] if the header is malformed, `acc.len()`
/// disagrees with the frame, the payload is truncated, or a sketch
/// fails to peel cleanly (only possible on a corrupt frame — the
/// encoder verified peelability).
pub fn fold_frame_into_q(bytes: &[u8], acc: &mut [i64]) -> Result<FrameMeta, DecodeError> {
    let meta = frame_meta(bytes)?;
    let n = meta.len;
    if n != acc.len() {
        return Err(fail(0));
    }
    let payload = &bytes[FRAME_HEADER_BYTES..];
    match meta.mode {
        FrameMode::Raw32 => {
            if payload.len() != n * 4 {
                return Err(fail(0));
            }
            for (a, chunk) in acc.iter_mut().zip(payload.chunks_exact(4)) {
                let c = i32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                *a = a.wrapping_add(i64::from(c));
            }
        }
        FrameMode::Raw64 => {
            if payload.len() != n * 8 {
                return Err(fail(0));
            }
            for (a, chunk) in acc.iter_mut().zip(payload.chunks_exact(8)) {
                let c = i64::from_le_bytes([
                    chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
                ]);
                *a = a.wrapping_add(c);
            }
        }
        FrameMode::Sketch => {
            let bitmap_bytes = n.div_ceil(8);
            if payload.len() < bitmap_bytes {
                return Err(fail(0));
            }
            let (bitmap, cell_bytes) = payload.split_at(bitmap_bytes);
            let support_count: usize = bitmap.iter().map(|b| b.count_ones() as usize).sum();
            let cells = cells_per_row(support_count);
            let total = ROWS * cells;
            if cell_bytes.len() != total * 8 {
                return Err(fail(0));
            }
            let mut counts = vec![0u32; total];
            let mut idx_xor = vec![0u64; total];
            let mut vals = vec![0i64; total];
            for (cell, chunk) in vals.iter_mut().zip(cell_bytes.chunks_exact(8)) {
                *cell = i64::from_le_bytes([
                    chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
                ]);
            }
            let bases = [
                row_base(meta.seed, 0),
                row_base(meta.seed, 1),
                row_base(meta.seed, 2),
            ];
            for i in 0..n {
                if bitmap[i / 8] & (1 << (i % 8)) != 0 {
                    for (r, &base) in bases.iter().enumerate() {
                        let c = r * cells + cell_of(base, i, cells);
                        counts[c] += 1;
                        idx_xor[c] ^= i as u64;
                    }
                }
            }
            let mut stack: Vec<usize> = (0..total).filter(|&c| counts[c] == 1).collect();
            let mut peeled = 0usize;
            while let Some(c) = stack.pop() {
                if counts[c] != 1 {
                    continue;
                }
                let i = idx_xor[c] as usize;
                if i >= n {
                    return Err(fail(i));
                }
                let q = vals[c];
                acc[i] = acc[i].wrapping_add(q);
                peeled += 1;
                for (r, &base) in bases.iter().enumerate() {
                    let cc = r * cells + cell_of(base, i, cells);
                    counts[cc] -= 1;
                    idx_xor[cc] ^= i as u64;
                    vals[cc] = vals[cc].wrapping_sub(q);
                    if counts[cc] == 1 {
                        stack.push(cc);
                    }
                }
            }
            if peeled != support_count || counts.iter().any(|&c| c != 0) {
                return Err(fail(0));
            }
        }
    }
    Ok(meta)
}

/// Decodes a frame into `out` — exact recovery for every mode.
///
/// # Errors
///
/// Same conditions as [`fold_frame_into_q`].
pub fn decode_frame(bytes: &[u8], out: &mut [f32]) -> Result<(), DecodeError> {
    let mut q = vec![0i64; out.len()];
    let meta = fold_frame_into_q(bytes, &mut q)?;
    finish_q(&q, meta.frac_bits, out);
    Ok(())
}

/// The homomorphic codec: grid precision + hash seed, no interior
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SketchCodec {
    frac_bits: u8,
    seed: u64,
}

impl SketchCodec {
    /// Creates a codec with the given grid precision and hash seed.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= frac_bits <= MAX_FRAC_BITS`.
    pub fn new(frac_bits: u8, seed: u64) -> Self {
        assert!(
            (1..=MAX_FRAC_BITS).contains(&frac_bits),
            "frac_bits must be in 1..={MAX_FRAC_BITS}",
        );
        SketchCodec { frac_bits, seed }
    }

    /// Grid precision in fractional bits.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Hash seed carried into every frame.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Snaps `values` to the codec grid in place — the loopback
    /// shortcut: exactly what encode → decode reconstructs.
    pub fn quantize_inplace(&self, values: &mut [f32]) {
        for v in values.iter_mut() {
            *v = grid_value(quantize_value(*v, self.frac_bits), self.frac_bits);
        }
    }

    /// Allocating variant of [`quantize_inplace`](Self::quantize_inplace).
    pub fn quantize(&self, values: &[f32]) -> Vec<f32> {
        let mut out = values.to_vec();
        self.quantize_inplace(&mut out);
        out
    }

    /// Encodes `values`, appending the frame to `out`; returns the
    /// appended byte count.
    pub fn encode_append(&self, values: &[f32], out: &mut Vec<u8>) -> usize {
        let mut q = vec![0i64; values.len()];
        for (c, &v) in q.iter_mut().zip(values) {
            *c = quantize_value(v, self.frac_bits);
        }
        encode_q_append(&q, self.frac_bits, self.seed, out)
    }

    /// Encodes `values` into an owned [`SketchFrame`].
    pub fn encode(&self, values: &[f32]) -> SketchFrame {
        let mut bytes = Vec::new();
        self.encode_append(values, &mut bytes);
        SketchFrame { bytes }
    }

    /// Encodes pre-quantized grid counts (the canonical re-encode used
    /// by frame merges and tests).
    pub fn encode_q(&self, q: &[i64]) -> SketchFrame {
        let mut bytes = Vec::new();
        encode_q_append(q, self.frac_bits, self.seed, &mut bytes);
        SketchFrame { bytes }
    }
}

/// An owned, validated frame supporting compressed-domain merges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchFrame {
    bytes: Vec<u8>,
}

impl SketchFrame {
    /// Wraps raw frame bytes after a full structural validation
    /// (header plus a trial fold).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the bytes are not a well-formed
    /// frame.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, DecodeError> {
        let meta = frame_meta(&bytes)?;
        let mut scratch = vec![0i64; meta.len];
        fold_frame_into_q(&bytes, &mut scratch)?;
        Ok(SketchFrame { bytes })
    }

    /// The wire bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the frame, yielding its wire bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Parsed header.
    pub fn meta(&self) -> FrameMeta {
        // Validated at construction; re-parse is infallible here.
        match frame_meta(&self.bytes) {
            Ok(meta) => meta,
            Err(_) => unreachable!("SketchFrame bytes validated at construction"),
        }
    }

    /// Uncompressed value count.
    pub fn values(&self) -> usize {
        self.meta().len
    }

    /// Frame size on the wire.
    pub fn wire_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Merges `other` into `self` **in the compressed domain**: the
    /// result is byte-identical to encoding the exact sum of the two
    /// frames' grid counts (canonical re-encode), so the merge is
    /// associative and commutative and the switch's native fold agrees
    /// with it bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the frames disagree on length,
    /// precision, or seed.
    pub fn add_compressed(&mut self, other: &SketchFrame) -> Result<(), DecodeError> {
        let meta = self.meta();
        let other_meta = other.meta();
        if meta.len != other_meta.len
            || meta.frac_bits != other_meta.frac_bits
            || meta.seed != other_meta.seed
        {
            return Err(fail(0));
        }
        let mut q = vec![0i64; meta.len];
        fold_frame_into_q(&self.bytes, &mut q)?;
        fold_frame_into_q(&other.bytes, &mut q)?;
        self.bytes.clear();
        encode_q_append(&q, meta.frac_bits, meta.seed, &mut self.bytes);
        Ok(())
    }

    /// Decodes the frame into `out` (exact recovery).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if `out.len()` disagrees with the
    /// frame.
    pub fn decode_into(&self, out: &mut [f32]) -> Result<(), DecodeError> {
        decode_frame(&self.bytes, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec() -> SketchCodec {
        SketchCodec::new(10, 0x00C0_FFEE)
    }

    /// On-grid values with small integer numerators: f32 addition over
    /// them is exact, so encode-after-sum is well-defined bitwise.
    fn on_grid(raw: &[i32], frac_bits: u8) -> Vec<f32> {
        raw.iter()
            .map(|&k| grid_value(i64::from(k), frac_bits))
            .collect()
    }

    #[test]
    fn dense_input_takes_the_raw_path_and_recovers_exactly() {
        let c = codec();
        let values: Vec<f32> = (0..64).map(|i| grid_value(i - 32, c.frac_bits())).collect();
        let frame = c.encode(&values);
        assert_eq!(frame.meta().mode, FrameMode::Raw32);
        let mut out = vec![0.0f32; 64];
        frame.decode_into(&mut out).unwrap();
        assert_eq!(values, out, "raw dense tail must recover exactly");
    }

    #[test]
    fn sparse_input_takes_the_sketch_path_and_recovers_exactly() {
        let mut values = vec![0.0f32; 1024];
        values[3] = 0.5;
        values[100] = -0.25;
        values[777] = 1.5;
        let frame = codec().encode(&values);
        assert_eq!(frame.meta().mode, FrameMode::Sketch);
        assert!(frame.wire_bytes() < FRAME_HEADER_BYTES + 1024 * 4);
        let mut out = vec![0.0f32; 1024];
        frame.decode_into(&mut out).unwrap();
        assert_eq!(values, out, "sketch recovery must be exact");
    }

    #[test]
    fn decode_is_exact_on_the_grid_and_within_half_step_off_it() {
        let c = codec();
        let step = 1.0 / grid_scale(c.frac_bits()) as f32;
        let values: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) * 0.013).collect();
        let frame = c.encode(&values);
        assert_eq!(frame.meta().mode, FrameMode::Raw32);
        let mut out = vec![0.0f32; 256];
        frame.decode_into(&mut out).unwrap();
        for (&v, &o) in values.iter().zip(&out) {
            assert!((v - o).abs() <= step / 2.0 + f32::EPSILON);
        }
        // Idempotence: re-encoding the decoded grid reproduces the counts.
        let again = c.encode(&out);
        assert_eq!(frame.as_bytes(), again.as_bytes());
    }

    #[test]
    fn wide_counts_fall_back_to_raw64() {
        let c = SketchCodec::new(20, 1);
        let values = vec![3.0e6f32; 8];
        let frame = c.encode(&values);
        assert_eq!(frame.meta().mode, FrameMode::Raw64);
        let mut out = vec![0.0f32; 8];
        frame.decode_into(&mut out).unwrap();
        for &o in &out {
            assert!((o - 3.0e6).abs() < 1.0);
        }
    }

    #[test]
    fn truncated_or_mislabeled_frames_fail_with_a_typed_error() {
        let frame = codec().encode(&[0.5f32; 16]).into_bytes();
        let mut out = vec![0.0f32; 16];
        assert!(decode_frame(&frame[..frame.len() - 2], &mut out).is_err());
        assert!(decode_frame(&frame, &mut out[..8].to_vec()).is_err());
        let mut bad_mode = frame.clone();
        bad_mode[0] = 9;
        assert!(decode_frame(&bad_mode, &mut out).is_err());
        assert!(decode_frame(&frame, &mut out).is_ok());
    }

    #[test]
    fn switch_style_fold_matches_host_merge_bit_for_bit() {
        let c = codec();
        let a: Vec<f32> = (0..300).map(|i| ((i % 17) as f32 - 8.0) / 32.0).collect();
        let b: Vec<f32> = (0..300).map(|i| ((i % 23) as f32 - 11.0) / 64.0).collect();
        // Host path: compressed-domain merge, then decode.
        let mut merged = c.encode(&a);
        merged.add_compressed(&c.encode(&b)).unwrap();
        let mut host = vec![0.0f32; 300];
        merged.decode_into(&mut host).unwrap();
        // Switch path: fold both frames into one i64 accumulator.
        let mut acc = vec![0i64; 300];
        fold_frame_into_q(c.encode(&a).as_bytes(), &mut acc).unwrap();
        fold_frame_into_q(c.encode(&b).as_bytes(), &mut acc).unwrap();
        let mut switch = vec![0.0f32; 300];
        finish_q(&acc, c.frac_bits(), &mut switch);
        let host_bits: Vec<u32> = host.iter().map(|v| v.to_bits()).collect();
        let switch_bits: Vec<u32> = switch.iter().map(|v| v.to_bits()).collect();
        assert_eq!(host_bits, switch_bits);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn add_compressed_is_bit_identical_to_encode_after_sum(
            raw_a in proptest::collection::vec(-512i32..512, 1..200),
            raw_b in proptest::collection::vec(-512i32..512, 1..200),
        ) {
            let c = codec();
            let n = raw_a.len().min(raw_b.len());
            let a = on_grid(&raw_a[..n], c.frac_bits());
            let b = on_grid(&raw_b[..n], c.frac_bits());
            let sum: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let mut merged = c.encode(&a);
            merged.add_compressed(&c.encode(&b)).unwrap();
            let direct = c.encode(&sum);
            prop_assert_eq!(merged.as_bytes(), direct.as_bytes());
        }

        #[test]
        fn add_compressed_is_commutative_and_associative(
            raw_a in proptest::collection::vec(-256i32..256, 1..120),
            raw_b in proptest::collection::vec(-256i32..256, 1..120),
            raw_c in proptest::collection::vec(-256i32..256, 1..120),
        ) {
            let c = codec();
            let n = raw_a.len().min(raw_b.len()).min(raw_c.len());
            let a = on_grid(&raw_a[..n], c.frac_bits());
            let b = on_grid(&raw_b[..n], c.frac_bits());
            let d = on_grid(&raw_c[..n], c.frac_bits());
            // Commutativity: a+b == b+a.
            let mut ab = c.encode(&a);
            ab.add_compressed(&c.encode(&b)).unwrap();
            let mut ba = c.encode(&b);
            ba.add_compressed(&c.encode(&a)).unwrap();
            prop_assert_eq!(ab.as_bytes(), ba.as_bytes());
            // Associativity: (a+b)+d == a+(b+d).
            let mut ab_d = ab.clone();
            ab_d.add_compressed(&c.encode(&d)).unwrap();
            let mut bd = c.encode(&b);
            bd.add_compressed(&c.encode(&d)).unwrap();
            let mut a_bd = c.encode(&a);
            a_bd.add_compressed(&bd).unwrap();
            prop_assert_eq!(ab_d.as_bytes(), a_bd.as_bytes());
        }

        #[test]
        fn every_frame_roundtrips_exactly_on_grid(
            raw in proptest::collection::vec(-1024i32..1024, 0..300),
            sparsity in 0u8..4,
        ) {
            let c = codec();
            let values: Vec<f32> = raw
                .iter()
                .enumerate()
                .map(|(i, &k)| {
                    // Higher sparsity levels zero more positions to
                    // exercise the sketch path as well as RAW.
                    if sparsity > 0 && (i % (1 << sparsity)) != 0 {
                        0.0
                    } else {
                        grid_value(i64::from(k), c.frac_bits())
                    }
                })
                .collect();
            let frame = c.encode(&values);
            let mut out = vec![0.0f32; values.len()];
            frame.decode_into(&mut out).unwrap();
            prop_assert_eq!(values, out);
        }
    }
}
