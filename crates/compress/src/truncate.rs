//! Naive IEEE-754 LSB truncation — the paper's strawman lossy scheme
//! (`16b-T`, `22b-T`, `24b-T` in Figs. 4 and 14).
//!
//! Truncating `x` LSBs of the 32-bit representation keeps the sign, the
//! exponent (until `x > 23`, at which point exponent bits start to go,
//! which is what wrecks accuracy for `24b-T`), and the top mantissa
//! bits. The compression ratio is a *constant* `32 / (32 - x)` — at most
//! 4× for `24b-T` — which is the paper's argument for a value-adaptive
//! codec instead.

use serde::{Deserialize, Serialize};

/// A truncation scheme dropping `bits` LSBs from every `f32`.
///
/// # Examples
///
/// ```
/// use inceptionn_compress::truncate::Truncation;
///
/// let t = Truncation::new(16);
/// assert_eq!(t.compression_ratio(), 2.0);
/// let v = t.apply(0.123456789f32);
/// assert!((v - 0.1234).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Truncation {
    bits: u8,
}

impl Truncation {
    /// Creates a scheme that zeroes the low `bits` bits (`1 ≤ bits ≤ 31`).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or ≥ 32.
    pub fn new(bits: u8) -> Self {
        assert!(
            (1..32).contains(&bits),
            "truncation bits {bits} outside 1..32"
        );
        Truncation { bits }
    }

    /// Number of truncated LSBs.
    pub fn bits(self) -> u8 {
        self.bits
    }

    /// The fixed compression ratio `32 / (32 - bits)`.
    pub fn compression_ratio(self) -> f64 {
        32.0 / f64::from(32 - self.bits)
    }

    /// Truncates one value (the lossy round trip: the receiver sees
    /// exactly this).
    pub fn apply(self, v: f32) -> f32 {
        let mask = u32::MAX << self.bits;
        f32::from_bits(v.to_bits() & mask)
    }

    /// Truncates a slice in place.
    pub fn apply_inplace(self, values: &mut [f32]) {
        let mask = u32::MAX << self.bits;
        for v in values.iter_mut() {
            *v = f32::from_bits(v.to_bits() & mask);
        }
    }

    /// Packs a slice into the truncated wire format: `32 - bits` MSBs of
    /// each value, bit-packed. Returns the compressed bytes.
    pub fn compress(self, values: &[f32]) -> Vec<u8> {
        let keep = u32::from(32 - self.bits);
        let mut w = crate::bitio::BitWriter::new();
        for &v in values {
            w.write_bits(v.to_bits() >> self.bits, keep);
        }
        w.into_bytes()
    }

    /// Unpacks `count` values from the truncated wire format.
    ///
    /// Returns `None` if `bytes` is too short.
    pub fn decompress(self, bytes: &[u8], count: usize) -> Option<Vec<f32>> {
        let keep = u32::from(32 - self.bits);
        let mut r = crate::bitio::BitReader::new(bytes);
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let top = r.read_bits(keep)?;
            out.push(f32::from_bits(top << self.bits));
        }
        Some(out)
    }
}

/// The three truncation settings the paper evaluates.
pub const PAPER_TRUNCATIONS: [u8; 3] = [16, 22, 24];

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ratio_matches_paper_claims() {
        assert_eq!(Truncation::new(16).compression_ratio(), 2.0);
        assert!((Truncation::new(22).compression_ratio() - 3.2).abs() < 1e-12);
        assert_eq!(Truncation::new(24).compression_ratio(), 4.0); // "4x at most"
    }

    #[test]
    fn truncation_error_grows_with_bits() {
        let v = 0.7123456f32;
        let e16 = (v - Truncation::new(16).apply(v)).abs();
        let e22 = (v - Truncation::new(22).apply(v)).abs();
        let e24 = (v - Truncation::new(24).apply(v)).abs();
        assert!(e16 <= e22 && e22 <= e24);
        // 16-bit truncation keeps 7 mantissa bits: relative error < 2^-7.
        assert!(e16 / v < 2f32.powi(-7));
    }

    #[test]
    fn truncating_24_bits_perturbs_exponent() {
        // With 24 LSBs dropped only sign + 7 exponent MSBs remain; values
        // collapse onto coarse powers of two — the accuracy cliff in Fig. 4.
        let t = Truncation::new(24);
        let a = t.apply(0.9f32);
        let b = t.apply(0.6f32);
        assert_eq!(a, b, "0.9 and 0.6 should collapse to the same value");
    }

    #[test]
    fn pack_round_trip() {
        let t = Truncation::new(22);
        let vals: Vec<f32> = (0..100).map(|i| (i as f32 * 0.0173).sin()).collect();
        let bytes = t.compress(&vals);
        assert!(bytes.len() * 8 <= vals.len() * 10 + 8);
        let out = t.decompress(&bytes, vals.len()).unwrap();
        for (v, o) in vals.iter().zip(&out) {
            assert_eq!(t.apply(*v).to_bits(), o.to_bits());
        }
    }

    #[test]
    fn decompress_short_buffer_is_none() {
        let t = Truncation::new(16);
        assert_eq!(t.decompress(&[0u8; 3], 2), None);
    }

    #[test]
    #[should_panic(expected = "outside 1..32")]
    fn rejects_zero_bits() {
        Truncation::new(0);
    }

    proptest! {
        #[test]
        fn prop_apply_is_idempotent(v in any::<f32>(), bits in 1u8..32) {
            let t = Truncation::new(bits);
            let once = t.apply(v);
            prop_assert_eq!(t.apply(once).to_bits(), once.to_bits());
        }

        #[test]
        fn prop_truncated_magnitude_never_grows(v in -1e30f32..1e30, bits in 1u8..24) {
            let t = Truncation::new(bits);
            prop_assert!(t.apply(v).abs() <= v.abs());
        }
    }
}
