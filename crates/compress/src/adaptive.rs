//! Extension: per-block adaptive error bounds.
//!
//! The paper's codec uses one *absolute* bound for the whole gradient
//! stream. That is exactly right for the peaked distributions of Fig. 5,
//! but layers differ in gradient scale: a block whose largest value is
//! below the bound compresses to all-zeros — total information loss for
//! that layer — while a block of large values wastes headroom it could
//! have traded for ratio.
//!
//! [`AdaptiveCodec`] re-derives the bound per fixed-size block as
//! `2^(ceil(log2 max|g|) - R)` (i.e. `R` bits of *relative* precision
//! against the block's peak), clamped to a configured exponent range,
//! and prefixes each block with its 5-bit bound exponent. Everything
//! else — tags, fixed-point forms, the 8-lane packing — is the paper's
//! codec unchanged, so the hardware cost of the extension is one
//! exponent register per block.

use crate::bitio::{BitReader, BitWriter};
use crate::inceptionn::{DecodeError, ErrorBound, InceptionnCodec};

/// Bits used for the per-block bound-exponent header.
const EXP_BITS: u32 = 5;

/// The adaptive-bound codec.
///
/// # Examples
///
/// ```
/// use inceptionn_compress::adaptive::AdaptiveCodec;
///
/// let codec = AdaptiveCodec::new(8, 256);
/// // A "layer" of uniformly tiny gradients…
/// let tiny = vec![3e-5f32; 512];
/// let stream = codec.compress(&tiny);
/// let out = codec.decompress(&stream).unwrap();
/// // …survives with ~8 bits of relative precision instead of being
/// // zeroed by a fixed 2^-10 bound.
/// assert!(out.iter().all(|&v| (v - 3e-5).abs() < 3e-5 * 0.01));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveCodec {
    /// Relative precision bits `R` kept against each block's peak.
    relative_bits: u8,
    /// Values per block.
    block: usize,
}

/// A compressed stream with per-block bound headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveStream {
    /// Encoded value count.
    pub len: usize,
    /// Packed bytes.
    pub bytes: Vec<u8>,
    /// Exact bit length.
    pub bit_len: usize,
}

impl AdaptiveStream {
    /// Compression ratio vs raw f32 (1.0 when empty).
    pub fn compression_ratio(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            self.len as f64 * 32.0 / self.bit_len.max(1) as f64
        }
    }
}

impl AdaptiveCodec {
    /// Creates a codec keeping `relative_bits` of precision per block of
    /// `block` values.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ relative_bits ≤ 20` and `block ≥ 8`.
    pub fn new(relative_bits: u8, block: usize) -> Self {
        assert!(
            (2..=20).contains(&relative_bits),
            "relative bits {relative_bits} outside 2..=20"
        );
        assert!(block >= 8, "block {block} must hold at least one burst");
        AdaptiveCodec {
            relative_bits,
            block,
        }
    }

    /// The bound exponent chosen for one block (the `e` of `2^-e`).
    fn block_exponent(&self, block: &[f32]) -> u8 {
        let peak = block
            .iter()
            .map(|v| v.abs())
            .filter(|v| v.is_finite())
            .fold(0.0f32, f32::max);
        if peak == 0.0 {
            // Nothing to preserve: the loosest legal bound.
            return 1;
        }
        // ceil(log2 peak): power-of-two envelope of the block.
        let envelope = peak.log2().ceil() as i32;
        let e = self.relative_bits as i32 - envelope;
        e.clamp(1, 30) as u8
    }

    /// Compresses a gradient slice.
    pub fn compress(&self, values: &[f32]) -> AdaptiveStream {
        let mut w = BitWriter::new();
        for block in values.chunks(self.block) {
            let e = self.block_exponent(block);
            w.write_bits(u32::from(e), EXP_BITS);
            let codec = InceptionnCodec::new(ErrorBound::pow2(e));
            let stream = codec.compress(block);
            // Re-pack the block's bits (LSB-first order preserved).
            let mut r = BitReader::new(&stream.bytes);
            let mut remaining = stream.bit_len;
            while remaining > 0 {
                let take = remaining.min(32) as u32;
                let bits = r.read_bits(take).expect("self-produced stream");
                w.write_bits(bits, take);
                remaining -= take as usize;
            }
        }
        let bit_len = w.bit_len();
        AdaptiveStream {
            len: values.len(),
            bytes: w.into_bytes(),
            bit_len,
        }
    }

    /// Decompresses a stream produced by [`AdaptiveCodec::compress`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input.
    pub fn decompress(&self, stream: &AdaptiveStream) -> Result<Vec<f32>, DecodeError> {
        let mut r = BitReader::new(&stream.bytes);
        let mut out = Vec::with_capacity(stream.len);
        let mut remaining = stream.len;
        while remaining > 0 {
            let n = remaining.min(self.block);
            let e = r
                .read_bits(EXP_BITS)
                .ok_or_else(|| DecodeError::at_tags(out.len(), r.bit_pos()))?
                as u8;
            let e = e.clamp(1, 30);
            let codec = InceptionnCodec::new(ErrorBound::pow2(e));
            // Decode n values directly from the shared reader using the
            // per-group format (16-bit tags + payloads).
            let mut left = n;
            while left > 0 {
                let group = left.min(crate::inceptionn::LANES_PER_BURST);
                let tags = r
                    .read_bits(16)
                    .ok_or_else(|| DecodeError::at_tags(out.len(), r.bit_pos()))?;
                for lane in 0..crate::inceptionn::LANES_PER_BURST {
                    let tag = crate::inceptionn::Tag::from_bits((tags >> (2 * lane)) as u8);
                    let payload = r
                        .read_bits(tag.payload_bits())
                        .ok_or_else(|| DecodeError::at_payload(out.len(), r.bit_pos(), tag))?;
                    if lane < group {
                        out.push(
                            codec.decompress_value(crate::inceptionn::CompressedValue {
                                tag,
                                payload,
                            }),
                        );
                    }
                }
                left -= group;
            }
            remaining -= n;
        }
        Ok(out)
    }

    /// The lossy round trip (compress + decompress).
    pub fn quantize(&self, values: &[f32]) -> Vec<f32> {
        let stream = self.compress(values);
        self.decompress(&stream).expect("self-produced stream")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn round_trip_respects_relative_bound_per_block() {
        let codec = AdaptiveCodec::new(8, 64);
        let mut rng = StdRng::seed_from_u64(1);
        // Three "layers" of very different scales.
        let mut vals = Vec::new();
        for scale in [1e-6f32, 1e-3, 0.3] {
            for _ in 0..200 {
                vals.push(rng.gen_range(-1.0f32..1.0) * scale);
            }
        }
        let out = codec.quantize(&vals);
        for (chunk_vals, chunk_out) in vals.chunks(64).zip(out.chunks(64)) {
            let peak = chunk_vals.iter().fold(0.0f32, |m, v| m.max(v.abs()));
            if peak == 0.0 {
                continue;
            }
            let envelope = 2f32.powi(peak.log2().ceil() as i32);
            let bound = (envelope * 2f32.powi(-8)).max(2f32.powi(-30));
            for (a, b) in chunk_vals.iter().zip(chunk_out) {
                if a.abs() < 1.0 {
                    assert!(
                        (a - b).abs() <= bound * 1.0001,
                        "peak {peak}: {a} -> {b} (bound {bound})"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_layers_survive_where_fixed_bound_zeroes_them() {
        let vals = vec![2e-5f32; 256];
        let fixed = InceptionnCodec::new(ErrorBound::pow2(10));
        let fixed_out = fixed.quantize(&vals);
        assert!(
            fixed_out.iter().all(|&v| v == 0.0),
            "fixed bound keeps info?"
        );
        let adaptive = AdaptiveCodec::new(8, 64);
        let out = adaptive.quantize(&vals);
        let mean: f32 = out.iter().sum::<f32>() / out.len() as f32;
        assert!((mean - 2e-5).abs() < 2e-6, "adaptive mean {mean}");
    }

    #[test]
    fn uniform_scale_costs_only_the_headers() {
        // On a homogeneous stream the adaptive codec pays ~5 bits per
        // block over the best fixed bound.
        let mut rng = StdRng::seed_from_u64(2);
        let vals: Vec<f32> = (0..10_000).map(|_| rng.gen_range(-0.01f32..0.01)).collect();
        let adaptive = AdaptiveCodec::new(8, 256).compress(&vals);
        // Compare against the fixed codec at the same effective bound
        // (envelope 2^-6 with R=8 -> 2^-14... compute what adaptive picked).
        let fixed_best = InceptionnCodec::new(ErrorBound::pow2(14)).compress(&vals);
        let overhead = adaptive.bit_len as f64 - fixed_best.bit_len as f64;
        let headers = (vals.len() as f64 / 256.0).ceil() * 5.0;
        assert!(
            overhead.abs() <= headers + 16.0,
            "overhead {overhead} vs headers {headers}"
        );
    }

    #[test]
    fn zero_block_compresses_maximally() {
        let codec = AdaptiveCodec::new(8, 64);
        let stream = codec.compress(&vec![0.0f32; 640]);
        // 2 bits per value + 5 per block.
        assert!(stream.compression_ratio() > 14.0);
        assert!(codec.quantize(&vec![0.0f32; 640]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn truncated_stream_errors() {
        let codec = AdaptiveCodec::new(8, 64);
        let mut stream = codec.compress(&vec![0.5f32; 100]);
        stream.bytes.truncate(3);
        assert!(codec.decompress(&stream).is_err());
    }

    #[test]
    #[should_panic(expected = "outside 2..=20")]
    fn rejects_degenerate_precision() {
        AdaptiveCodec::new(1, 64);
    }

    proptest! {
        #[test]
        fn prop_round_trip_preserves_count_and_signs(
            vals in proptest::collection::vec(-1.0f32..1.0, 1..400),
            r in 4u8..12,
        ) {
            let codec = AdaptiveCodec::new(r, 64);
            let out = codec.quantize(&vals);
            prop_assert_eq!(out.len(), vals.len());
            for (a, b) in vals.iter().zip(&out) {
                prop_assert!(*b == 0.0 || a.signum() == b.signum());
            }
        }
    }
}
