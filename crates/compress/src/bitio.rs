//! LSB-first bit-level writer and reader.
//!
//! The INCEPTIONN wire format is a bit stream (variable 0/8/16/32-bit
//! fields packed back to back, exactly like the hardware alignment unit
//! in Fig. 9). These helpers pack bits LSB-first into bytes, which keeps
//! the packing order independent of field width.

/// Accumulates bit fields LSB-first into a byte buffer.
///
/// # Examples
///
/// ```
/// use inceptionn_compress::bitio::{BitReader, BitWriter};
///
/// let mut w = BitWriter::new();
/// w.write_bits(0b101, 3);
/// w.write_bits(0xff, 8);
/// let bytes = w.into_bytes();
/// let mut r = BitReader::new(&bytes);
/// assert_eq!(r.read_bits(3), Some(0b101));
/// assert_eq!(r.read_bits(8), Some(0xff));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits already used in the final byte (0 means byte-aligned).
    bit_pos: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer whose backing buffer can hold `bits` bits
    /// without reallocating.
    ///
    /// Encoders that can estimate their output size (e.g. from a tag
    /// histogram) use this to avoid the repeated `Vec` growth that
    /// otherwise dominates small-field packing.
    pub fn with_capacity_bits(bits: usize) -> Self {
        BitWriter {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            bit_pos: 0,
        }
    }

    /// Appends the low `width` bits of `value` (`width ≤ 32`).
    ///
    /// # Panics
    ///
    /// Panics if `width > 32`.
    pub fn write_bits(&mut self, value: u32, width: u32) {
        assert!(width <= 32, "width {width} exceeds 32");
        if width == 0 {
            return;
        }
        let mut v = value as u64 & ((1u64 << width) - 1);
        let mut remaining = width;
        while remaining > 0 {
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let free = 8 - self.bit_pos;
            let take = free.min(remaining);
            let last = self.bytes.last_mut().expect("byte pushed above");
            *last |= ((v & ((1u64 << take) - 1)) as u8) << self.bit_pos;
            v >>= take;
            self.bit_pos = (self.bit_pos + take) % 8;
            remaining -= take;
        }
    }

    /// Total bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.bytes.is_empty() {
            0
        } else {
            (self.bytes.len() - 1) * 8
                + if self.bit_pos == 0 {
                    8
                } else {
                    self.bit_pos as usize
                }
        }
    }

    /// Finishes the stream, returning the backing bytes (final byte
    /// zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Reads bit fields LSB-first from a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    /// Absolute bit cursor.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Reads the next `width` bits, or `None` if the stream is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `width > 32`.
    pub fn read_bits(&mut self, width: u32) -> Option<u32> {
        assert!(width <= 32, "width {width} exceeds 32");
        if width == 0 {
            return Some(0);
        }
        if self.pos + width as usize > self.bytes.len() * 8 {
            return None;
        }
        let mut out = 0u64;
        let mut got = 0u32;
        while got < width {
            let byte = self.bytes[self.pos / 8];
            let offset = (self.pos % 8) as u32;
            let avail = 8 - offset;
            let take = avail.min(width - got);
            let chunk = ((byte >> offset) as u64) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            self.pos += take as usize;
        }
        Some(out as u32)
    }

    /// Bits remaining in the stream.
    pub fn remaining_bits(&self) -> usize {
        self.bytes.len() * 8 - self.pos
    }

    /// Absolute bit position of the read cursor (bits consumed so far).
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_mixed_widths() {
        let fields: Vec<(u32, u32)> = vec![
            (0b1, 1),
            (0xdead_beef, 32),
            (0, 0),
            (0x7f, 7),
            (0xffff, 16),
            (0b101, 3),
        ];
        let mut w = BitWriter::new();
        for &(v, width) in &fields {
            w.write_bits(v, width);
        }
        let total: u32 = fields.iter().map(|f| f.1).sum();
        assert_eq!(w.bit_len(), total as usize);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, width) in &fields {
            assert_eq!(
                r.read_bits(width),
                Some(v & ((1u64 << width) - 1) as u32),
                "width {width}"
            );
        }
    }

    #[test]
    fn read_past_end_returns_none() {
        let mut r = BitReader::new(&[0xff]);
        assert_eq!(r.read_bits(8), Some(0xff));
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn masked_write_ignores_high_bits() {
        let mut w = BitWriter::new();
        w.write_bits(0xffff_ffff, 4);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0x0f]);
    }

    #[test]
    fn empty_writer_yields_nothing() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        assert!(w.into_bytes().is_empty());
    }

    proptest! {
        #[test]
        fn prop_round_trip(fields in proptest::collection::vec((any::<u32>(), 0u32..=32), 0..200)) {
            let mut w = BitWriter::new();
            for &(v, width) in &fields {
                w.write_bits(v, width);
            }
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            for &(v, width) in &fields {
                let mask = if width == 32 { u32::MAX } else { (1u32 << width) - 1 };
                prop_assert_eq!(r.read_bits(width), Some(v & mask));
            }
        }
    }
}
