//! Synthetic gradient-value streams with paper-calibrated distributions.
//!
//! The accuracy-scale models (AlexNet, VGG-16, ResNet-50) cannot be
//! trained in this environment, but several experiments (Table III,
//! Fig. 14's ratios) only need realistic gradient *value streams*. The
//! paper characterizes those streams precisely: values lie in `(-1, 1)`,
//! peak tightly at zero with low variance (Fig. 5), and their mass below
//! each error bound is reported per model in Table III.
//!
//! [`GradientModel`] samples from a mixture of zero-centered Laplace
//! components (plus a small `|g| ≥ 1` outlier mass), with per-model
//! parameters calibrated so the zero-tag fractions under the INCEPTIONN
//! codec land close to Table III's measurements.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One Laplace mixture component: `weight` of the mass at scale `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Component {
    weight: f64,
    scale: f64,
}

/// Named presets matching the paper's four benchmark DNNs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GradientPreset {
    /// AlexNet (Table III rows 1–3).
    AlexNet,
    /// Handwritten-digit classifier MLP.
    Hdc,
    /// ResNet-50.
    ResNet50,
    /// VGG-16.
    Vgg16,
}

impl GradientPreset {
    /// All presets, in the paper's Table III order.
    pub const ALL: [GradientPreset; 4] = [
        GradientPreset::AlexNet,
        GradientPreset::Hdc,
        GradientPreset::ResNet50,
        GradientPreset::Vgg16,
    ];

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            GradientPreset::AlexNet => "AlexNet",
            GradientPreset::Hdc => "HDC",
            GradientPreset::ResNet50 => "ResNet-50",
            GradientPreset::Vgg16 => "VGG-16",
        }
    }
}

/// A sampler for synthetic gradient values of one DNN.
///
/// # Examples
///
/// ```
/// use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let model = GradientModel::preset(GradientPreset::AlexNet);
/// let mut rng = StdRng::seed_from_u64(0);
/// let grads = model.sample(&mut rng, 10_000);
/// // Fig. 5: essentially all mass inside (-1, 1), peaked at zero.
/// let inside = grads.iter().filter(|g| g.abs() < 1.0).count();
/// assert!(inside as f64 / grads.len() as f64 > 0.99);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GradientModel {
    components: Vec<Component>,
    /// Probability of an `|g| ≥ 1` outlier (stored as Full/34-bit).
    outlier_prob: f64,
}

impl GradientModel {
    /// Builds the calibrated model for a paper benchmark.
    pub fn preset(preset: GradientPreset) -> Self {
        // (weight, Laplace scale) triples fit to Table III's zero-tag
        // fractions at eb = 2^-10 / 2^-8 / 2^-6; see DESIGN.md.
        let (comps, outlier_prob): (&[(f64, f64)], f64) = match preset {
            GradientPreset::AlexNet => (&[(0.72, 1e-4), (0.16, 4e-3), (0.12, 0.04)], 1e-3),
            GradientPreset::Hdc => (&[(0.90, 1e-4), (0.06, 3e-3), (0.04, 0.025)], 0.0),
            GradientPreset::ResNet50 => (&[(0.78, 1e-4), (0.18, 3e-3), (0.04, 0.02)], 2e-4),
            GradientPreset::Vgg16 => (&[(0.935, 1e-4), (0.045, 4e-3), (0.02, 0.1)], 1e-4),
        };
        GradientModel {
            components: comps
                .iter()
                .map(|&(weight, scale)| Component { weight, scale })
                .collect(),
            outlier_prob,
        }
    }

    /// Builds a custom single-Laplace model (used by tests and ablations).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn laplace(scale: f64) -> Self {
        assert!(scale > 0.0, "laplace scale must be positive");
        GradientModel {
            components: vec![Component { weight: 1.0, scale }],
            outlier_prob: 0.0,
        }
    }

    /// Draws one gradient value.
    pub fn sample_one<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        if self.outlier_prob > 0.0 && rng.gen_bool(self.outlier_prob) {
            // Rare large-magnitude gradient (|g| in [1, 4)).
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            return (sign * rng.gen_range(1.0..4.0)) as f32;
        }
        let mut pick = rng.gen_range(0.0..1.0);
        let mut scale = self.components.last().map(|c| c.scale).unwrap_or(1e-3);
        for c in &self.components {
            if pick < c.weight {
                scale = c.scale;
                break;
            }
            pick -= c.weight;
        }
        // Inverse-CDF Laplace sample, clamped to the open unit interval
        // the paper observes (Fig. 5).
        let u: f64 = rng.gen_range(-0.5..0.5);
        let v = -scale * u.signum() * (1.0 - 2.0 * u.abs()).ln();
        (v.clamp(-0.9999, 0.9999)) as f32
    }

    /// Draws `n` gradient values.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.sample_one(rng)).collect()
    }

    /// Analytic `P(|g| ≤ t)` of the mixture (ignoring outliers).
    pub fn cdf_abs(&self, t: f64) -> f64 {
        let body: f64 = self
            .components
            .iter()
            .map(|c| c.weight * (1.0 - (-t / c.scale).exp()))
            .sum();
        body * (1.0 - self.outlier_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inceptionn::{ErrorBound, InceptionnCodec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Paper Table III zero-tag (2-bit) fractions at eb = 2^-10/2^-8/2^-6.
    fn paper_zero_fractions(p: GradientPreset) -> [f64; 3] {
        match p {
            GradientPreset::AlexNet => [0.749, 0.825, 0.930],
            GradientPreset::Hdc => [0.920, 0.957, 0.981],
            GradientPreset::ResNet50 => [0.816, 0.923, 0.976],
            GradientPreset::Vgg16 => [0.942, 0.962, 0.973],
        }
    }

    #[test]
    fn calibration_tracks_table_iii_zero_fractions() {
        let mut rng = StdRng::seed_from_u64(7);
        for preset in GradientPreset::ALL {
            let model = GradientModel::preset(preset);
            let grads = model.sample(&mut rng, 200_000);
            for (i, e) in [10u8, 8, 6].into_iter().enumerate() {
                let codec = InceptionnCodec::new(ErrorBound::pow2(e));
                let hist = codec.histogram(&grads);
                let zero_frac = hist.fractions().0;
                let want = paper_zero_fractions(preset)[i];
                assert!(
                    (zero_frac - want).abs() < 0.05,
                    "{} @2^-{e}: got {zero_frac:.3}, paper {want:.3}",
                    preset.name()
                );
            }
        }
    }

    #[test]
    fn loose_bound_reaches_paper_scale_ratios() {
        // Fig. 14: at eb = 2^-6 compression ratios approach ~15x.
        let mut rng = StdRng::seed_from_u64(8);
        for preset in GradientPreset::ALL {
            let grads = GradientModel::preset(preset).sample(&mut rng, 100_000);
            let codec = InceptionnCodec::new(ErrorBound::pow2(6));
            let ratio = codec.compress(&grads).compression_ratio();
            assert!(ratio > 9.0, "{}: ratio {ratio:.1}", preset.name());
        }
    }

    #[test]
    fn distribution_is_symmetric_and_peaked() {
        let mut rng = StdRng::seed_from_u64(9);
        let grads = GradientModel::preset(GradientPreset::AlexNet).sample(&mut rng, 100_000);
        let mean: f64 = grads.iter().map(|&g| f64::from(g)).sum::<f64>() / grads.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        let near_zero = grads.iter().filter(|g| g.abs() < 0.01).count() as f64;
        assert!(near_zero / grads.len() as f64 > 0.8);
    }

    #[test]
    fn cdf_matches_sampling() {
        let model = GradientModel::laplace(0.01);
        let mut rng = StdRng::seed_from_u64(10);
        let grads = model.sample(&mut rng, 100_000);
        for t in [0.001f64, 0.01, 0.05] {
            let analytic = model.cdf_abs(t);
            let empirical = grads.iter().filter(|g| f64::from(g.abs()) <= t).count() as f64
                / grads.len() as f64;
            assert!(
                (analytic - empirical).abs() < 0.01,
                "t={t}: {analytic} vs {empirical}"
            );
        }
    }

    #[test]
    fn alexnet_has_rare_full_values() {
        // Table III reports 0.1% 34-bit values for AlexNet.
        let mut rng = StdRng::seed_from_u64(11);
        let grads = GradientModel::preset(GradientPreset::AlexNet).sample(&mut rng, 300_000);
        let codec = InceptionnCodec::new(ErrorBound::pow2(10));
        let full_frac = codec.histogram(&grads).fractions().3;
        assert!(
            full_frac > 0.0 && full_frac < 0.01,
            "full fraction {full_frac}"
        );
    }
}
