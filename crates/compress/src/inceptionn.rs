//! The INCEPTIONN lossy gradient codec (paper Sec. V, Algorithms 2–3).
//!
//! Each `f32` gradient is encoded independently into one of four forms,
//! identified by a 2-bit tag:
//!
//! | tag | payload | used for |
//! |---|---|---|
//! | `00` | 0 bits  | `\|g\| ≤ eb` — the value is dropped entirely |
//! | `01` | 8 bits  | sign + 7 fixed-point MSBs, when that already meets the bound |
//! | `10` | 16 bits | sign + 15 fixed-point MSBs |
//! | `11` | 32 bits | `\|g\| ≥ 1.0` (or the bound cannot otherwise be met): raw IEEE bits |
//!
//! For the 8/16-bit forms the exponent is *normalized to 127*: the
//! significand (with its implicit leading `1` made explicit) is shifted
//! right by `127 − e`, producing a fixed-point field whose bit `i` has
//! weight `2^(i-32)`. The decompressor recovers the exponent from the
//! position of the leading one — that is why the hardware concatenates
//! the implicit `1` before shifting (Sec. V).
//!
//! The published pseudo-code is partially garbled in the available text;
//! the reconstruction here (smallest form whose *actual* error for this
//! value meets the bound) is validated against Table III's bitwidth
//! distributions — see `DESIGN.md`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bitio::{BitReader, BitWriter};
use crate::stats::BitwidthHistogram;

/// Number of `f32` lanes the hardware compresses per 256-bit AXI burst.
pub const LANES_PER_BURST: usize = 8;

/// An absolute error bound of the form `2^-E`, the knob the paper sweeps
/// (`2^-10`, `2^-8`, `2^-6` in the evaluation).
///
/// # Examples
///
/// ```
/// use inceptionn_compress::ErrorBound;
///
/// let eb = ErrorBound::pow2(10);
/// assert_eq!(eb.value(), 2f32.powi(-10));
/// assert_eq!(eb.to_string(), "2^-10");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ErrorBound {
    /// The (positive) exponent `E` in `2^-E`.
    exponent: u8,
}

impl ErrorBound {
    /// Creates the bound `2^-exponent`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ exponent ≤ 30` (the hardware supports bounds
    /// strictly inside the gradient range `(0, 0.5]`).
    pub fn pow2(exponent: u8) -> Self {
        assert!(
            (1..=30).contains(&exponent),
            "error-bound exponent {exponent} outside 1..=30"
        );
        ErrorBound { exponent }
    }

    /// The bound as an `f32` (`2^-E`).
    pub fn value(self) -> f32 {
        2f32.powi(-(self.exponent as i32))
    }

    /// The exponent `E`.
    pub fn exponent(self) -> u8 {
        self.exponent
    }
}

impl fmt::Display for ErrorBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "2^-{}", self.exponent)
    }
}

impl Default for ErrorBound {
    /// The paper's default evaluation bound, `2^-10`.
    fn default() -> Self {
        ErrorBound::pow2(10)
    }
}

/// The 2-bit compression mechanism tag attached to every value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Tag {
    /// `2'b00` — value dropped (decodes to exactly 0.0).
    Zero = 0b00,
    /// `2'b01` — 8-bit compressed form.
    Bits8 = 0b01,
    /// `2'b10` — 16-bit compressed form.
    Bits16 = 0b10,
    /// `2'b11` — uncompressed 32-bit IEEE value.
    Full = 0b11,
}

impl Tag {
    /// Payload width in bits for this tag.
    pub fn payload_bits(self) -> u32 {
        match self {
            Tag::Zero => 0,
            Tag::Bits8 => 8,
            Tag::Bits16 => 16,
            Tag::Full => 32,
        }
    }

    /// Total on-wire width including the 2-bit tag itself
    /// (Table III's 2/10/18/34-bit columns).
    pub fn wire_bits(self) -> u32 {
        self.payload_bits() + 2
    }

    /// Decodes a 2-bit tag field.
    pub fn from_bits(bits: u8) -> Tag {
        match bits & 0b11 {
            0b00 => Tag::Zero,
            0b01 => Tag::Bits8,
            0b10 => Tag::Bits16,
            _ => Tag::Full,
        }
    }
}

/// One value compressed into `(tag, payload)` — the per-lane output of a
/// hardware Compression Block (CB).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressedValue {
    /// Compression mechanism chosen for this value.
    pub tag: Tag,
    /// Payload, in the low `tag.payload_bits()` bits.
    pub payload: u32,
}

/// A compressed gradient stream: the byte-exact wire format produced by
/// the NIC compression engine, plus enough metadata to decode and audit
/// it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompressedStream {
    /// Number of encoded `f32` values.
    pub len: usize,
    /// Packed bit stream: per 8-lane group, 16 tag bits then the
    /// concatenated payloads (lane order, LSB-first packing).
    pub bytes: Vec<u8>,
    /// Exact bit count before byte padding.
    pub bit_len: usize,
}

impl CompressedStream {
    /// Uncompressed size in bytes (`4·len`).
    pub fn original_bytes(&self) -> usize {
        self.len * 4
    }

    /// Compressed payload size in bytes (padded).
    pub fn compressed_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// The achieved compression ratio (original bits / compressed bits).
    ///
    /// Returns 1.0 for an empty stream.
    pub fn compression_ratio(&self) -> f64 {
        if self.len == 0 {
            1.0
        } else {
            (self.len as f64 * 32.0) / self.bit_len.max(1) as f64
        }
    }
}

/// Error produced when decoding a corrupt or truncated stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Index of the value whose payload could not be read.
    pub at_value: usize,
    /// Absolute bit offset into the stream where the failed read began.
    pub bit_offset: usize,
    /// Tag whose payload could not be read, or `None` when the 16-bit
    /// tag vector itself was truncated.
    pub tag: Option<Tag>,
}

impl DecodeError {
    /// Truncation detected while reading a group's 16-bit tag vector.
    pub(crate) fn at_tags(at_value: usize, bit_offset: usize) -> Self {
        DecodeError {
            at_value,
            bit_offset,
            tag: None,
        }
    }

    /// Truncation detected while reading the payload for `tag`.
    pub(crate) fn at_payload(at_value: usize, bit_offset: usize, tag: Tag) -> Self {
        DecodeError {
            at_value,
            bit_offset,
            tag: Some(tag),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compressed stream truncated at value {} (bit offset {}, ",
            self.at_value, self.bit_offset
        )?;
        match self.tag {
            Some(tag) => write!(
                f,
                "reading the {}-bit payload of {tag:?})",
                tag.payload_bits()
            ),
            None => write!(f, "reading the tag vector)"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The INCEPTIONN gradient codec at a fixed [`ErrorBound`].
///
/// This is the software-reference implementation; `inceptionn-nicsim`
/// implements the identical transform burst-by-burst as the hardware
/// does, and its tests assert bit-exact agreement with this codec.
///
/// # Examples
///
/// ```
/// use inceptionn_compress::{ErrorBound, InceptionnCodec};
///
/// let codec = InceptionnCodec::new(ErrorBound::pow2(8));
/// let stream = codec.compress(&[0.5f32, -0.001, 0.0000001]);
/// let out = codec.decompress(&stream).unwrap();
/// assert!((out[0] - 0.5).abs() <= 2f32.powi(-8));
/// assert_eq!(out[2], 0.0); // below the bound: dropped
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InceptionnCodec {
    bound: ErrorBound,
}

impl InceptionnCodec {
    /// Creates a codec for the given error bound.
    pub fn new(bound: ErrorBound) -> Self {
        InceptionnCodec { bound }
    }

    /// The configured error bound.
    pub fn bound(&self) -> ErrorBound {
        self.bound
    }

    /// Compresses one value — Algorithm 2.
    ///
    /// Deterministic, branch-light, and implementable as a combinational
    /// hardware block: one exponent compare, one shift, two candidate
    /// truncation-error compares.
    pub fn compress_value(&self, f: f32) -> CompressedValue {
        let bits = f.to_bits();
        let sign = bits >> 31;
        let exp = ((bits >> 23) & 0xff) as i32;
        // |f| >= 1.0, NaN, or infinity: never compressed (tag 2'b11).
        if exp >= 127 {
            return CompressedValue {
                tag: Tag::Full,
                payload: bits,
            };
        }
        let abs = f64::from(f.abs());
        let eb = f64::from(self.bound.value());
        if abs <= eb {
            return CompressedValue {
                tag: Tag::Zero,
                payload: 0,
            };
        }
        // Normalize the exponent to 127: make the implicit one explicit
        // and shift right by d = 127 - e, yielding the fixed-point field
        // P = trunc(|f| * 2^32) (bit i weighs 2^(i-32)).
        let d = (127 - exp) as u32; // 1..=127 (zero/denormals fall in Zero above)
        let significand = (1u64 << 23) | u64::from(bits & 0x7f_ffff);
        let p = if d <= 9 + 32 {
            ((significand << 9) >> d) as u32
        } else {
            0
        };
        // Candidate 8-bit form: sign + P[31:25].
        let p8 = p >> 25 << 25;
        if abs - f64::from(p8) * 2f64.powi(-32) <= eb {
            return CompressedValue {
                tag: Tag::Bits8,
                payload: (sign << 7) | (p >> 25),
            };
        }
        // Candidate 16-bit form: sign + P[31:17].
        let p16 = p >> 17 << 17;
        if abs - f64::from(p16) * 2f64.powi(-32) <= eb {
            return CompressedValue {
                tag: Tag::Bits16,
                payload: (sign << 15) | (p >> 17),
            };
        }
        CompressedValue {
            tag: Tag::Full,
            payload: bits,
        }
    }

    /// Decompresses one `(tag, payload)` pair — Algorithm 3.
    pub fn decompress_value(&self, cv: CompressedValue) -> f32 {
        match cv.tag {
            Tag::Zero => 0.0,
            Tag::Full => f32::from_bits(cv.payload),
            Tag::Bits8 => Self::from_fixed(cv.payload >> 7 & 1, (cv.payload & 0x7f) << 25),
            Tag::Bits16 => Self::from_fixed(cv.payload >> 15 & 1, (cv.payload & 0x7fff) << 17),
        }
    }

    /// Reconstructs a float from the sign bit and the 32-bit fixed-point
    /// field (bit `i` weighs `2^(i-32)`). The leading-one position of the
    /// field encodes the exponent.
    fn from_fixed(sign: u32, p: u32) -> f32 {
        if p == 0 {
            return 0.0;
        }
        let magnitude = (f64::from(p) * 2f64.powi(-32)) as f32;
        if sign == 1 {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Estimates the wire size of `values` in bits from a tag histogram
    /// of an evenly strided sample (exact for streams of ≤ 256 values).
    ///
    /// Used to pre-size encoder buffers so packing does not pay repeated
    /// `Vec` reallocation; it is an estimate, not a bound — callers must
    /// still tolerate growth.
    pub fn estimate_wire_bits(&self, values: &[f32]) -> usize {
        if values.is_empty() {
            return 0;
        }
        const SAMPLE: usize = 256;
        let stride = values.len().div_ceil(SAMPLE).max(1);
        let mut h = BitwidthHistogram::default();
        let mut i = 0;
        while i < values.len() {
            h.record(self.compress_value(values[i]).tag);
            i += stride;
        }
        let sampled = h.total().max(1) as usize;
        let groups = values.len().div_ceil(LANES_PER_BURST);
        // Scale sampled payload bits to the full stream and add the
        // fixed 16 tag bits per 8-lane group (plus slack for sampling
        // error on skewed streams).
        let payload = h.payload_bits() * values.len() / sampled;
        groups * 16 + payload + payload / 8 + 64
    }

    /// Compresses a gradient slice into the packed wire format.
    ///
    /// Values are processed in groups of [`LANES_PER_BURST`]; each group
    /// contributes its 16 concatenated tag bits followed by the
    /// concatenated variable-width payloads, exactly as the hardware
    /// Compression Unit emits them (Fig. 9). A final partial group is
    /// padded with `Zero` lanes (free: 2 bits each).
    ///
    /// This is the scalar *reference* implementation; the burst fast
    /// path in [`crate::burst`] produces byte-identical streams several
    /// times faster and is what the transport stack uses.
    pub fn compress(&self, values: &[f32]) -> CompressedStream {
        let mut w = BitWriter::with_capacity_bits(self.estimate_wire_bits(values));
        for group in values.chunks(LANES_PER_BURST) {
            let mut cvs = [CompressedValue {
                tag: Tag::Zero,
                payload: 0,
            }; LANES_PER_BURST];
            for (cv, &v) in cvs.iter_mut().zip(group.iter()) {
                *cv = self.compress_value(v);
            }
            // 16-bit tag vector first (lane 0 in the low bits)…
            let mut tags = 0u32;
            for (lane, cv) in cvs.iter().enumerate() {
                tags |= (cv.tag as u32) << (2 * lane);
            }
            w.write_bits(tags, 16);
            // …then the aligned payloads.
            for cv in &cvs {
                w.write_bits(cv.payload, cv.tag.payload_bits());
            }
        }
        let bit_len = w.bit_len();
        CompressedStream {
            len: values.len(),
            bytes: w.into_bytes(),
            bit_len,
        }
    }

    /// Decompresses a packed stream back to `f32` values.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the stream ends before `stream.len`
    /// values have been decoded.
    pub fn decompress(&self, stream: &CompressedStream) -> Result<Vec<f32>, DecodeError> {
        let mut r = BitReader::new(&stream.bytes);
        let mut out = Vec::with_capacity(stream.len);
        let mut remaining = stream.len;
        while remaining > 0 {
            let group = remaining.min(LANES_PER_BURST);
            let tags = r
                .read_bits(16)
                .ok_or_else(|| DecodeError::at_tags(out.len(), r.bit_pos()))?;
            let mut lane_tags = [Tag::Zero; LANES_PER_BURST];
            for (lane, t) in lane_tags.iter_mut().enumerate() {
                *t = Tag::from_bits((tags >> (2 * lane)) as u8);
            }
            for &tag in lane_tags.iter().take(group) {
                let payload = r
                    .read_bits(tag.payload_bits())
                    .ok_or_else(|| DecodeError::at_payload(out.len(), r.bit_pos(), tag))?;
                out.push(self.decompress_value(CompressedValue { tag, payload }));
            }
            // Padded lanes of a final partial group carry Zero tags and
            // no payload in well-formed streams; a corrupt stream that
            // claims payload bits here is a decode error, not something
            // to skip silently.
            for &tag in lane_tags.iter().skip(group) {
                r.read_bits(tag.payload_bits())
                    .ok_or_else(|| DecodeError::at_payload(out.len(), r.bit_pos(), tag))?;
            }
            remaining -= group;
        }
        Ok(out)
    }

    /// Compresses and immediately decompresses, returning the values the
    /// receiver will see. Used by training loops that want the lossy
    /// round trip without materializing the bit stream.
    pub fn quantize(&self, values: &[f32]) -> Vec<f32> {
        values
            .iter()
            .map(|&v| self.decompress_value(self.compress_value(v)))
            .collect()
    }

    /// Applies the lossy round trip in place.
    pub fn quantize_inplace(&self, values: &mut [f32]) {
        for v in values.iter_mut() {
            *v = self.decompress_value(self.compress_value(*v));
        }
    }

    /// Tallies the tag distribution of a gradient stream (Table III).
    pub fn histogram(&self, values: &[f32]) -> BitwidthHistogram {
        let mut h = BitwidthHistogram::default();
        for &v in values {
            h.record(self.compress_value(v).tag);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn codec(e: u8) -> InceptionnCodec {
        InceptionnCodec::new(ErrorBound::pow2(e))
    }

    #[test]
    fn values_at_or_above_one_are_uncompressed_and_lossless() {
        let c = codec(10);
        for v in [1.0f32, -1.0, 1.5, -123.456, 1e30, f32::INFINITY] {
            let cv = c.compress_value(v);
            assert_eq!(cv.tag, Tag::Full, "{v}");
            assert_eq!(c.decompress_value(cv), v);
        }
    }

    #[test]
    fn nan_survives_round_trip_as_nan() {
        let c = codec(10);
        let cv = c.compress_value(f32::NAN);
        assert_eq!(cv.tag, Tag::Full);
        assert!(c.decompress_value(cv).is_nan());
    }

    #[test]
    fn tiny_values_drop_to_zero() {
        let c = codec(10);
        for v in [
            0.0f32,
            -0.0,
            1e-20,
            2f32.powi(-11),
            -2f32.powi(-10),
            2f32.powi(-10),
        ] {
            let cv = c.compress_value(v);
            assert_eq!(cv.tag, Tag::Zero, "{v}");
            assert_eq!(c.decompress_value(cv), 0.0);
        }
    }

    #[test]
    fn error_bound_is_respected_everywhere() {
        for e in [6u8, 8, 10, 14] {
            let c = codec(e);
            let eb = ErrorBound::pow2(e).value();
            let mut v = 1e-9f32;
            while v < 1.0 {
                for s in [v, -v] {
                    let out = c.decompress_value(c.compress_value(s));
                    assert!(
                        (s - out).abs() <= eb,
                        "bound 2^-{e}: {s} -> {out}, err {}",
                        (s - out).abs()
                    );
                }
                v *= 1.37;
            }
        }
    }

    #[test]
    fn loose_bound_uses_eight_bits_for_everything_nonzero() {
        // With eb = 2^-6 truncating at 2^-7 always meets the bound, so no
        // non-zero sub-1.0 value should need 16 bits (Table III: ~0%).
        let c = codec(6);
        let mut v = 2f32.powi(-6) * 1.01;
        while v < 1.0 {
            let cv = c.compress_value(v);
            assert_eq!(cv.tag, Tag::Bits8, "{v}");
            v *= 1.1;
        }
    }

    #[test]
    fn tight_bound_mostly_needs_sixteen_bits() {
        // With eb = 2^-10, a value with a dense mantissa cannot fit in the
        // 8-bit form (error ~2^-8 > 2^-10).
        let c = codec(10);
        let v = 0.3337f32; // dense mantissa
        assert_eq!(c.compress_value(v).tag, Tag::Bits16);
        // …but a value with zeros below bit 7 of the fixed field fits in 8.
        let v = 0.25f32;
        assert_eq!(c.compress_value(v).tag, Tag::Bits8);
    }

    #[test]
    fn sign_is_preserved() {
        let c = codec(10);
        for v in [0.3f32, 0.01, 0.9, 0.002] {
            let plus = c.decompress_value(c.compress_value(v));
            let minus = c.decompress_value(c.compress_value(-v));
            assert_eq!(plus, -minus);
            assert!(plus >= 0.0);
        }
    }

    #[test]
    fn stream_round_trip_exactly_matches_scalar_path() {
        let c = codec(10);
        let vals: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.37).sin() * 1.2).collect();
        let stream = c.compress(&vals);
        let out = c.decompress(&stream).unwrap();
        let scalar = c.quantize(&vals);
        assert_eq!(out, scalar);
    }

    #[test]
    fn stream_handles_partial_final_group() {
        let c = codec(8);
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            let vals: Vec<f32> = (0..n).map(|i| (i as f32 + 1.0) * 0.01).collect();
            let stream = c.compress(&vals);
            assert_eq!(stream.len, n);
            let out = c.decompress(&stream).unwrap();
            assert_eq!(out.len(), n);
        }
    }

    #[test]
    fn truncated_stream_reports_decode_error() {
        let c = codec(10);
        let vals = vec![0.5f32; 16];
        let mut stream = c.compress(&vals);
        stream.bytes.truncate(2);
        let err = c.decompress(&stream).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn compression_ratio_matches_tag_accounting() {
        let c = codec(10);
        let vals: Vec<f32> = (0..800).map(|i| ((i * 37) % 101) as f32 * 1e-5).collect();
        let stream = c.compress(&vals);
        let hist = c.histogram(&vals);
        // groups of 8 -> 16 tag bits each + payload bits.
        let expected_bits = (vals.len() / 8) * 16 + hist.payload_bits();
        assert_eq!(stream.bit_len, expected_bits);
        assert!(stream.compression_ratio() > 2.0);
    }

    #[test]
    fn zero_only_stream_compresses_to_two_bits_per_value() {
        let c = codec(10);
        let stream = c.compress(&vec![0.0f32; 80]);
        assert_eq!(stream.bit_len, 80 / 8 * 16);
        assert!((stream.compression_ratio() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn wire_bits_match_table_iii_columns() {
        assert_eq!(Tag::Zero.wire_bits(), 2);
        assert_eq!(Tag::Bits8.wire_bits(), 10);
        assert_eq!(Tag::Bits16.wire_bits(), 18);
        assert_eq!(Tag::Full.wire_bits(), 34);
    }

    #[test]
    #[should_panic(expected = "outside 1..=30")]
    fn error_bound_rejects_zero_exponent() {
        ErrorBound::pow2(0);
    }

    proptest! {
        #[test]
        fn prop_round_trip_respects_bound(vals in proptest::collection::vec(-1.5f32..1.5, 1..300), e in 4u8..16) {
            let c = codec(e);
            let eb = ErrorBound::pow2(e).value();
            let stream = c.compress(&vals);
            let out = c.decompress(&stream).unwrap();
            prop_assert_eq!(out.len(), vals.len());
            for (v, o) in vals.iter().zip(&out) {
                if v.abs() >= 1.0 {
                    prop_assert_eq!(v.to_bits(), o.to_bits());
                } else {
                    prop_assert!((v - o).abs() <= eb, "{} -> {} (eb 2^-{})", v, o, e);
                }
            }
        }

        #[test]
        fn prop_quantize_converges_in_two_passes(vals in proptest::collection::vec(-2f32..2.0, 1..200)) {
            // Quantization is not strictly idempotent at error-bound
            // boundaries (a requantized value may qualify for a smaller
            // form), but it reaches a fixed point after two passes and the
            // compound error stays within 2·eb.
            let c = codec(10);
            let eb = c.bound().value();
            let once = c.quantize(&vals);
            let twice = c.quantize(&once);
            let thrice = c.quantize(&twice);
            prop_assert_eq!(&twice, &thrice);
            for (v, q) in vals.iter().zip(&twice) {
                if v.abs() < 1.0 {
                    prop_assert!((v - q).abs() <= 2.0 * eb, "{} -> {}", v, q);
                }
            }
        }

        #[test]
        fn prop_decompressed_magnitude_never_exceeds_original(v in -0.999f32..0.999) {
            // Truncation only ever shrinks the fixed-point field.
            let c = codec(10);
            let out = c.decompress_value(c.compress_value(v));
            prop_assert!(out.abs() <= v.abs() + 1e-12);
            prop_assert!(out == 0.0 || out.signum() == v.signum());
        }
    }
}
