//! Differential tests: the burst fast path and the sharded parallel
//! codec against the scalar reference codec.
//!
//! The INCEPTIONN wire format has exactly one reference definition —
//! [`InceptionnCodec`] — and every accelerated implementation must be
//! *byte-identical* to it, not merely value-equivalent: the modeled
//! hardware engines, the fabric transports, and the regression bench
//! all pin their goldens against these bytes. These tests sweep the
//! paper's three error bounds (2⁻⁶, 2⁻⁸, 2⁻¹⁰), block lengths that are
//! not multiples of the 8-lane burst, and the value classes that sit on
//! classifier decision boundaries (±0, subnormals, |g| ≥ 1, NaN/inf).

use inceptionn_compress::{BurstCodec, ErrorBound, InceptionnCodec, ParallelCodec};
use proptest::prelude::*;

/// The paper's evaluated error-bound exponents.
const BOUNDS: [u8; 3] = [6, 8, 10];

/// Values that land on classifier decision boundaries, in both signs.
fn boundary_values(e: u8) -> Vec<f32> {
    let eb = (2.0f64.powi(-i32::from(e))) as f32;
    let mut vals = vec![
        0.0,
        -0.0,
        f32::from_bits(1), // smallest subnormal
        -f32::from_bits(1),
        f32::MIN_POSITIVE, // smallest normal
        -f32::MIN_POSITIVE,
        eb, // exactly the bound
        -eb,
        eb * 0.5,
        eb * 1.5,
        1.0, // |g| >= 1 falls back to Full
        -1.0,
        1.0 - f32::EPSILON / 2.0, // largest value below 1.0
        f32::from_bits(0x3f7f_ffff),
        1.5,
        -123.456,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        f32::MAX,
        f32::MIN,
    ];
    // Values straddling the 8-bit/16-bit payload split for this bound.
    for shift in [7i32, 8, 15, 16] {
        let v = (2.0f64.powi(-i32::from(e) - shift)) as f32;
        vals.push(v);
        vals.push(-v);
        vals.push(v * 0.999);
    }
    vals
}

/// Asserts byte-identity and bit-exact round trips of both fast paths
/// against the scalar reference for one block.
fn assert_differential(e: u8, shards: usize, vals: &[f32]) {
    let bound = ErrorBound::pow2(e);
    let scalar = InceptionnCodec::new(bound);
    let burst = BurstCodec::new(bound);
    let parallel = ParallelCodec::new(bound, shards);

    let reference = scalar.compress(vals);
    let fast = burst.compress(vals);
    assert_eq!(
        fast.bytes,
        reference.bytes,
        "burst stream diverged (e={e}, n={})",
        vals.len()
    );
    assert_eq!(fast.bit_len, reference.bit_len);

    // Round trips agree bit-for-bit (NaNs compare equal as bits).
    let want: Vec<u32> = scalar
        .decompress(&reference)
        .expect("scalar decode")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let got: Vec<u32> = burst
        .decompress(&fast)
        .expect("burst decode")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(got, want, "burst round trip diverged (e={e})");

    let frame = parallel.encode(vals);
    let got: Vec<u32> = parallel
        .decode(&frame)
        .expect("parallel decode")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(
        got, want,
        "parallel round trip diverged (e={e}, shards={shards})"
    );

    // A single-shard frame's payload is exactly the reference stream;
    // multi-shard frames are deterministic in (len, shards).
    if shards == 1 {
        assert_eq!(frame.payload, reference.bytes);
    }
    assert_eq!(frame, ParallelCodec::new(bound, shards).encode(vals));
}

#[test]
fn boundary_values_differential_across_bounds_and_tails() {
    for &e in &BOUNDS {
        let pool = boundary_values(e);
        // Lengths around the burst width exercise padded final groups.
        for n in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 63, 64, 65] {
            let vals: Vec<f32> = (0..n).map(|i| pool[i % pool.len()]).collect();
            for shards in [1usize, 2, 3] {
                assert_differential(e, shards, &vals);
            }
        }
        // The full pool in order, and repeated past two bursts.
        assert_differential(e, 2, &pool);
        let long: Vec<f32> = pool.iter().copied().cycle().take(pool.len() * 5).collect();
        assert_differential(e, 4, &long);
    }
}

proptest! {
    /// Arbitrary bit patterns (every NaN payload, subnormal, and
    /// infinity included) through all three implementations, across the
    /// paper's bounds and non-multiple-of-8 block lengths.
    #[test]
    fn prop_raw_bits_differential(
        bits in proptest::collection::vec(any::<u32>(), 0..100),
        which in 0usize..3,
        shards in 1usize..5,
    ) {
        let vals: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        assert_differential(BOUNDS[which], shards, &vals);
    }

    /// Gradient-magnitude values (the common case) with a tail that is
    /// rarely a whole number of bursts.
    #[test]
    fn prop_gradient_range_differential(
        vals in proptest::collection::vec(-1.5f32..1.5, 0..200),
        which in 0usize..3,
        shards in 1usize..5,
    ) {
        assert_differential(BOUNDS[which], shards, &vals);
    }
}
