//! Decoder robustness: arbitrary (corrupt, adversarial) byte streams
//! must produce clean errors or garbage values — never panics, hangs,
//! or unbounded allocations. The NIC decompression engine faces raw
//! network input, so this property is load-bearing.

use inceptionn_compress::szlike::SzCodec;
use inceptionn_compress::truncate::Truncation;
use inceptionn_compress::{lz, CompressedStream, ErrorBound, InceptionnCodec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn inceptionn_decode_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..600),
        len in 0usize..2000,
        e in 1u8..=30,
    ) {
        let codec = InceptionnCodec::new(ErrorBound::pow2(e));
        let stream = CompressedStream {
            len,
            bit_len: bytes.len() * 8,
            bytes,
        };
        match codec.decompress(&stream) {
            Ok(values) => prop_assert_eq!(values.len(), len),
            Err(err) => prop_assert!(err.at_value <= len),
        }
    }

    #[test]
    fn lz_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..800)) {
        // Arbitrary token streams either decode or error; decoded output
        // is bounded by the max expansion a valid stream could produce.
        if let Ok(out) = lz::decompress(&bytes) {
            prop_assert!(out.len() <= bytes.len() * 200);
        }
    }

    #[test]
    fn sz_decode_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
        count in 0usize..500,
    ) {
        let codec = SzCodec::new(ErrorBound::pow2(10));
        if let Some(values) = codec.decompress(&bytes, count) {
            prop_assert_eq!(values.len(), count);
        }
    }

    #[test]
    fn truncation_decode_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
        count in 0usize..200,
        drop_bits in 1u8..32,
    ) {
        let t = Truncation::new(drop_bits);
        if let Some(values) = t.decompress(&bytes, count) {
            prop_assert_eq!(values.len(), count);
            // Reconstructed values honor the truncation mask.
            for v in values {
                prop_assert_eq!(v.to_bits() & ((1u32 << drop_bits) - 1), 0);
            }
        }
    }

    #[test]
    fn flipping_bits_in_valid_stream_is_safe(
        vals in proptest::collection::vec(-1.0f32..1.0, 1..100),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let codec = InceptionnCodec::new(ErrorBound::pow2(10));
        let mut stream = codec.compress(&vals);
        if !stream.bytes.is_empty() {
            let idx = flip_byte % stream.bytes.len();
            stream.bytes[idx] ^= 1 << flip_bit;
        }
        // Must not panic; values that do decode are arbitrary but finite
        // in count.
        if let Ok(out) = codec.decompress(&stream) {
            prop_assert_eq!(out.len(), vals.len());
        }
    }
}
