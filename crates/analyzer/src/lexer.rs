//! A lightweight, dependency-free Rust tokenizer for the invariant
//! linter.
//!
//! The rules in [`crate::rules`] are lexical: they must never fire on
//! text inside string literals or comments ("`unwrap()` mentioned in a
//! doc sentence"), and they must be able to *read* comments (the
//! `SAFETY:` rule). So the tokenizer's contract is not full Rust
//! grammar — it is exact recognition of the token classes whose
//! misclassification would produce false positives:
//!
//! * line (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, raw strings `r#"…"#` with any
//!   number of `#`s, byte strings, C strings,
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * raw identifiers (`r#match`) vs. raw strings (`r#"…"`),
//! * identifiers, numbers, and one-byte punctuation (everything the
//!   rules match structure against: `#[…]`, `.unwrap()`, `unsafe {`).
//!
//! Every token carries its 1-based line number and byte span so
//! diagnostics point at real locations. The unit tests pin the
//! traps — raw strings containing quotes, nested comments containing
//! `unsafe`, macro bodies, lifetimes next to char literals.

/// Token classes the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `// …` including doc (`///`) and inner-doc (`//!`) comments.
    LineComment,
    /// `/* … */`, nested arbitrarily, including doc block comments.
    BlockComment,
    /// Any string-like literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A char literal `'x'` (escapes included).
    Char,
    /// A lifetime such as `'a` (no closing quote).
    Lifetime,
    /// An identifier or keyword (`unsafe`, `fn`, `unwrap`, …); raw
    /// identifiers are reported without the `r#` prefix.
    Ident,
    /// A numeric literal (lexed loosely; rules never inspect digits).
    Number,
    /// One byte of punctuation (`{`, `}`, `#`, `.`, `!`, …).
    Punct(u8),
}

/// One token: kind, byte span in the source, and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// True for comment tokens (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src`. Unknown bytes are consumed as punctuation so the
/// lexer never stalls; multi-byte UTF-8 sequences outside
/// comments/strings are skipped byte-wise (the rules only ever match
/// ASCII structure).
pub fn tokenize(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

/// UTF-8 sequence length implied by a leading byte.
fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                _ if b.is_ascii_whitespace() => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' | b'c' if self.string_prefix() => self.prefixed_string(),
                _ if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ if b.is_ascii_digit() => self.number(),
                _ => {
                    self.pos += 1;
                    TokenKind::Punct(b)
                }
            };
            self.tokens.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Does the cursor sit on a string-literal prefix (`r"`, `r#"`,
    /// `b"`, `br#"`, `b'`, `c"`)? Raw *identifiers* (`r#match`) return
    /// false.
    fn string_prefix(&self) -> bool {
        let mut at = self.pos;
        // Consume up to two prefix letters (e.g. `br`).
        for _ in 0..2 {
            match self.src.get(at) {
                Some(b'r' | b'b' | b'c') => at += 1,
                _ => break,
            }
        }
        // Then any number of `#`s followed by a quote = raw string; a
        // bare quote = plain prefixed string; `b'` = byte char.
        let hashes_start = at;
        while self.src.get(at) == Some(&b'#') {
            at += 1;
        }
        match self.src.get(at) {
            Some(b'"') => {
                // `r#ident` has hashes but no quote; quote means string.
                // (With zero hashes this is `r"` / `b"` / `br"`.)
                at > self.pos && (hashes_start == at || self.src.get(at) == Some(&b'"'))
            }
            Some(b'\'') if hashes_start == at => {
                // `b'x'` byte char (only valid directly after `b`).
                self.src[self.pos] == b'b' && at == self.pos + 1
            }
            _ => false,
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            match (self.src[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::BlockComment
    }

    /// A plain `"…"` string starting at the cursor.
    fn string(&mut self) -> TokenKind {
        self.pos += 1;
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    self.pos += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        TokenKind::Str
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `b'x'`, `c"…"` — the
    /// cursor sits on the first prefix letter.
    fn prefixed_string(&mut self) -> TokenKind {
        while matches!(self.src.get(self.pos), Some(b'r' | b'b' | b'c')) {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.src.get(self.pos) == Some(&b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.src.get(self.pos) == Some(&b'\'') {
            // Byte char `b'x'`: same shape as a char literal.
            return self.char_or_lifetime();
        }
        self.pos += 1; // opening quote
        if hashes == 0 && !self.raw_marker() {
            // `b"…"` / `c"…"` respect escapes like plain strings.
            self.pos -= 1;
            return self.string();
        }
        // Raw string: ends at `"` followed by `hashes` `#`s, no escapes.
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'\n' {
                self.line += 1;
            }
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for i in 0..hashes {
                    if self.src.get(self.pos + 1 + i) != Some(&b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    return TokenKind::Str;
                }
            }
            self.pos += 1;
        }
        TokenKind::Str
    }

    /// True when the token being lexed began with an `r` (raw string —
    /// no escapes) as opposed to `b`/`c` (escapes apply).
    fn raw_marker(&self) -> bool {
        // `pos` is just past the opening quote; walk back over it and
        // any `#`s to the prefix letters.
        let mut at = self.pos.saturating_sub(2);
        while at > 0 && self.src[at] == b'#' {
            at -= 1;
        }
        matches!(self.src.get(at), Some(b'r'))
    }

    /// Distinguishes `'a'` (char) from `'a` (lifetime). A quote starts
    /// a char literal iff it closes after one (possibly escaped)
    /// character; otherwise it is a lifetime marker.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let q = self.pos;
        self.pos += 1;
        match self.src.get(self.pos) {
            Some(b'\\') => {
                // Escaped char literal: consume to the closing quote.
                self.pos += 2;
                while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                    self.pos += 1;
                }
                self.pos = (self.pos + 1).min(self.src.len());
                TokenKind::Char
            }
            Some(c) if *c != b'\'' => {
                // `'x'` = char (x is ANY single character — `'"'`, `'{'`,
                // `'—'` included, so advance by its UTF-8 width); `'ident`
                // with no closing quote = lifetime.
                let ch_len = utf8_len(*c);
                if self.src.get(self.pos + ch_len) == Some(&b'\'') {
                    self.pos += ch_len + 1;
                    return TokenKind::Char;
                }
                let mut at = self.pos;
                while at < self.src.len()
                    && (self.src[at] == b'_' || self.src[at].is_ascii_alphanumeric())
                {
                    at += 1;
                }
                if self.src.get(at) == Some(&b'\'') && at > self.pos {
                    // A quoted multi-char run (malformed char literal):
                    // consume it whole so the quote does not leak.
                    self.pos = at + 1;
                    TokenKind::Char
                } else {
                    self.pos = at.max(q + 1);
                    TokenKind::Lifetime
                }
            }
            _ => {
                // `''` or EOF: consume the quote alone.
                TokenKind::Lifetime
            }
        }
    }

    fn ident(&mut self) -> TokenKind {
        // (Identifiers in this workspace are ASCII; multi-byte chars only
        // occur in comments/strings, which are consumed atomically.)
        while self.pos < self.src.len()
            && (self.src[self.pos] == b'_' || self.src[self.pos].is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        TokenKind::Ident
    }

    fn number(&mut self) -> TokenKind {
        // Loose: digits plus anything that can continue a numeric
        // literal (hex, underscores, type suffixes, exponents, a `.`
        // followed by a digit). Rules never look inside numbers; the
        // only requirement is not swallowing structure like `1..n`.
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            let continues = b == b'_'
                || b.is_ascii_alphanumeric()
                || (b == b'.'
                    && self.peek(1).map(|n| n.is_ascii_digit()).unwrap_or(false)
                    && self.src.get(self.pos.wrapping_sub(1)) != Some(&b'.'));
            if !continues {
                break;
            }
            self.pos += 1;
        }
        TokenKind::Number
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src).to_string())
            .collect()
    }

    #[test]
    fn strings_hide_code_words() {
        // `unwrap` and `unsafe` inside literals must not surface as
        // identifiers.
        let src = r#"let s = "call unwrap() or unsafe {"; s.len();"#;
        let ids = idents(src);
        assert!(ids.contains(&"len".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"unsafe".to_string()));
    }

    #[test]
    fn raw_strings_with_quotes_and_hashes() {
        let src = "let s = r#\"she said \"unsafe\" loudly\"#; x.unwrap();";
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(ids.contains(&"unwrap".to_string()));
        // Deeper hash nesting.
        let src2 = "let s = r##\"quote\"# inside\"##; done();";
        assert!(idents(src2).contains(&"done".to_string()));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        let src = "let r#match = 1; r#match.unwrap();";
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "match").count(), 2);
        assert!(ids.contains(&"unwrap".to_string()));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unsafe */ still comment unwrap() */ real();";
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        let ids = idents(src);
        assert_eq!(ids, vec!["real".to_string()]);
    }

    #[test]
    fn line_comments_capture_text_and_lines() {
        let src = "// SAFETY: fine\nlet x = 1; // trailing\n";
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokenKind::LineComment);
        assert!(toks[0].text(src).contains("SAFETY:"));
        assert_eq!(toks[0].line, 1);
        let trailing = toks.iter().rfind(|t| t.is_comment()).unwrap();
        assert_eq!(trailing.line, 2);
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\n'; }";
        let toks = tokenize(src);
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let src = "let a = b\"unsafe\"; let b = b'x'; let c = br#\"unwrap\"#; go();";
        let ids = idents(src);
        assert!(!ids.contains(&"unsafe".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"go".to_string()));
    }

    #[test]
    fn macro_bodies_tokenize_structurally() {
        let src = "assert!(x == 1, \"panic! in message\"); panic!(\"boom {}\", y);";
        let ids = idents(src);
        // The real `panic` ident surfaces once (the macro call), not the
        // one inside the assert message.
        assert_eq!(ids.iter().filter(|s| *s == "panic").count(), 1);
    }

    #[test]
    fn line_numbers_survive_all_multiline_tokens() {
        let src = "/* 1\n2\n3 */\nlet s = \"a\nb\";\nr#\"x\ny\"#;\nfinal_token();";
        let toks = tokenize(src);
        let last = toks.iter().rfind(|t| t.kind == TokenKind::Ident).unwrap();
        assert_eq!(last.text(src), "final_token");
        assert_eq!(last.line, 8);
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let src = r#"let s = "she \"said\" unsafe"; tail();"#;
        assert!(idents(src).contains(&"tail".to_string()));
        assert!(!idents(src).contains(&"unsafe".to_string()));
    }

    #[test]
    fn punctuation_and_unicode_char_literals_do_not_desync() {
        // `b'"'` and friends must not leak their quotes into phantom
        // strings (this desynced the lexer on its own source once).
        let src = "let q = b'\"'; let d = '—'; let brace = '{'; after();";
        assert!(idents(src).contains(&"after".to_string()));
        let chars = tokenize(src)
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn alloc_and_panic_sink_text_inside_literals_never_surfaces() {
        // The interprocedural pass matches sink names (`Vec::new`,
        // `to_vec`, `panic!`, `format!`) against identifier tokens; any
        // of them appearing inside a literal must stay invisible.
        let src = "let a = r#\"Vec::new() then panic!(\"x\")\"#;\n\
                   let b = b\"to_vec format!\";\n\
                   let c = c\"Box::new\";\n\
                   tail();";
        let ids = idents(src);
        for hidden in ["Vec", "panic", "to_vec", "format", "Box"] {
            assert!(
                !ids.contains(&hidden.to_string()),
                "`{hidden}` leaked out of a literal"
            );
        }
        assert!(ids.contains(&"tail".to_string()));
    }

    #[test]
    fn multihash_raw_string_spanning_lines_keeps_line_numbers() {
        // `r###"…"###` closing requires exactly three hashes; a `"#`
        // inside must not terminate it, and embedded newlines must keep
        // advancing the line counter for everything after.
        let src =
            "let s = r###\"line one \"# fake close\nline two unsafe\nline three\"###;\nafter();";
        let toks = tokenize(src);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].line, 1);
        assert!(strs[0].text(src).ends_with("\"###"));
        let after = toks.iter().rfind(|t| t.kind == TokenKind::Ident).unwrap();
        assert_eq!(after.text(src), "after");
        assert_eq!(after.line, 4);
        assert!(!idents(src).contains(&"unsafe".to_string()));
    }

    #[test]
    fn quotes_inside_nested_comments_do_not_desync() {
        // An odd number of quotes inside a nested block comment must not
        // open a phantom string that swallows the code after it.
        let src = "/* outer \" /* inner Box::new(\" */ unwrap() */ real();";
        let toks = tokenize(src);
        assert_eq!(toks[0].kind, TokenKind::BlockComment);
        assert_eq!(idents(src), vec!["real".to_string()]);
    }

    #[test]
    fn ranges_do_not_merge_into_numbers() {
        let src = "for i in 1..n { a[i] = 0.5; }";
        let texts: Vec<_> = kinds(src);
        assert!(texts
            .iter()
            .any(|(k, s)| *k == TokenKind::Number && s == "1"));
        assert!(texts
            .iter()
            .any(|(k, s)| *k == TokenKind::Number && s == "0.5"));
        assert!(idents(src).contains(&"n".to_string()));
    }
}
