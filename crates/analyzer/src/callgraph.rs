//! Interprocedural analysis: a lightweight symbol table and
//! function-level call graph built from the [`crate::lexer`] token
//! stream, plus hot-root reachability propagation.
//!
//! The graph is deliberately syntactic — no type inference, no borrow
//! information. Function *definitions* are discovered with their
//! enclosing `impl`/`trait` qualifier; call *sites* are classified as
//! free calls (`helper(x)`), method calls (`fabric.deliver(x)`), or
//! qualified calls (`Fabric::transfer(..)`, `pool::global()`), and
//! resolved by name:
//!
//! - free calls bind to free functions of the same name anywhere in the
//!   workspace;
//! - method calls bind to *every* method of that name (a sound
//!   over-approximation of dynamic dispatch through `dyn Fabric`);
//! - qualified calls bind to methods whose `impl` self-type or trait
//!   matches the qualifier, falling back to free functions when the
//!   qualifier is a lowercase module path (`pool::global`).
//!
//! Hot roots — `encode_into`/`decode_into`, the `Fabric::transfer*`
//! family, the four `pipelined_*_allreduce_over` loops, and every
//! function in a recovery-ladder file — taint everything reachable.
//! Panic sites (`unwrap`/`expect`/`panic!`) and allocation sites
//! (`Vec::new`, `to_vec`, `clone`, `Box::new`, `format!`) anywhere in
//! the reachable set fail with the full root→sink call chain in the
//! diagnostic ([`rule_hot_reachability`]).
//!
//! Over-approximation is the design: a name-resolved graph has false
//! edges, and the shrink-only allowlist absorbs the handful of sites
//! that are genuinely cold (recovery re-sends, one-shot wrappers). A
//! missed edge would be worse — it silently un-taints a real hot path —
//! so resolution always errs toward more edges.
//!
//! The `analyzer` and `bench` crates are excluded from the graph: they
//! are dev tools never linked into the training stack, and the
//! mini-loom's simulated primitives (`lock`, `send`, `recv`, `get`,
//! `set`) alias std method names, which would wire the product's hot
//! set into the checker itself.

use std::collections::{BTreeMap, VecDeque};

use crate::lexer::TokenKind;
use crate::rules::{Diagnostic, FileCtx, RECOVERY_PATH_FILES};

/// Function names that seed the hot set wherever they are defined.
pub const HOT_ROOT_NAMES: &[&str] = &[
    "encode_into",
    "decode_into",
    "deliver_ring_chunk",
    "deliver_with_recovery",
    // Membership transitions run at the top of every training
    // iteration; the per-endpoint liveness probe runs on every
    // delivery. (Snapshot catch-up's `transfer_snapshot` is already
    // tainted by the `transfer_` prefix rule.)
    "apply_membership_event",
    "down_at",
];

/// The exact allocation-sink list. `Vec::with_capacity` and `vec![]`
/// are deliberately absent: sized pre-allocation at setup or leg entry
/// is the *sanctioned* pattern the scratch buffers are built from.
pub const ALLOC_SINKS: &[&str] = &["Vec::new", "to_vec", "clone", "Box::new", "format!"];

/// Crates excluded from the graph (dev tools whose simulated primitives
/// alias std method names — see the module docs).
const EXCLUDED_PREFIXES: &[&str] = &["crates/analyzer/", "crates/bench/"];

/// Method names whose std-type meaning swamps any workspace meaning:
/// resolving `.map(…)` by name would wire every iterator adapter to
/// `Tensor::map`, `.pop()` to `CalendarQueue::pop`, `.value()` on an
/// `ErrorBound` to the JSON `Parser::value`, and so on. Dropping these
/// edges loses nothing real: the workspace methods sharing the names
/// are leaf accessors. Tuned against the actual tree — extend when a
/// new false chain appears, never to silence a true one.
pub const AMBIENT_METHODS: &[&str] = &["map", "pop", "resize", "finish", "value"];

/// Identifiers that look like calls but are control flow or tuple
/// constructors, never workspace function names.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "in", "as", "move", "ref", "impl", "trait", "where", "unsafe", "dyn", "pub", "use", "mod",
    "Some", "None", "Ok", "Err", "self", "super", "crate",
];

/// One function (or method) definition discovered in the tree.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Repo-relative file defining it.
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl` self-type or `trait` name, if any.
    pub qualifier: Option<String>,
    /// For `impl Trait for Type` methods and trait default methods, the
    /// trait name (qualified calls through the trait resolve here too).
    pub trait_name: Option<String>,
    /// 1-based line of the definition.
    pub line: u32,
    /// Byte range of the body block.
    pub body: (usize, usize),
    /// Defined inside a `#[cfg(test)]` region.
    pub is_test: bool,
}

impl FnDef {
    /// The crate this definition lives in (`crates/<name>/…`).
    pub fn crate_name(&self) -> &str {
        self.file
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("workspace")
    }

    /// `Type::name` for methods, bare `name` for free functions.
    pub fn display_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{}::{}", q, self.name),
            None => self.name.clone(),
        }
    }

    /// Is this definition a hot root? Recovery-ladder files contribute
    /// only their delivery/recovery entry points — fault *planning* and
    /// injection helpers (`FaultPlan::new`, `corrupted`) are cold setup.
    pub fn is_hot_root(&self) -> bool {
        HOT_ROOT_NAMES.contains(&self.name.as_str())
            || self.name == "transfer"
            || self.name.starts_with("transfer_")
            || (self.name.starts_with("pipelined_") && self.name.contains("_allreduce_over"))
            || (RECOVERY_PATH_FILES.contains(&self.file.as_str())
                && (self.name.starts_with("deliver")
                    || self.name.starts_with("redeliver")
                    || self.name.contains("recover")))
    }
}

/// What a sink does when executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// Unwinds: `unwrap`, `expect`, `panic!`.
    Panic,
    /// Heap-allocates: one of [`ALLOC_SINKS`].
    Alloc,
}

/// One panic/allocation site inside a function body.
#[derive(Debug, Clone)]
pub struct Sink {
    /// Panic or allocation.
    pub kind: SinkKind,
    /// The offending token (`unwrap`, `Vec::new`, `format!`, …).
    pub what: &'static str,
    /// 1-based line of the site.
    pub line: u32,
}

/// A call site classified by syntax, pre-resolution.
#[derive(Debug, Clone)]
enum Callee {
    /// `helper(x)` — binds to free functions.
    Free(String),
    /// `recv.deliver(x)` — binds to every method of that name.
    Method(String),
    /// `Fabric::transfer(..)`, `pool::global()` — binds through the
    /// qualifier.
    Qualified(String, String),
}

/// The workspace call graph: definitions, adjacency, per-function
/// sinks, and the hot-root seed set.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every discovered definition.
    pub fns: Vec<FnDef>,
    /// `callees[i]` = indices of functions `fns[i]` may call.
    pub callees: Vec<Vec<usize>>,
    /// `sinks[i]` = panic/alloc sites inside `fns[i]`.
    pub sinks: Vec<Vec<Sink>>,
    /// Indices of hot-root definitions.
    pub roots: Vec<usize>,
}

/// Matches the `{` at code index `open` to its closing brace. Returns
/// (byte end of the block, code index of the close).
fn match_brace(ctx: &FileCtx, open: usize) -> (usize, usize) {
    let mut depth = 0i32;
    let mut k = open;
    while k < ctx.code.len() {
        match ctx.ct(k).kind {
            TokenKind::Punct(b'{') => depth += 1,
            TokenKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return (ctx.ct(k).end, k);
                }
            }
            _ => {}
        }
        k += 1;
    }
    (ctx.src.len(), ctx.code.len().saturating_sub(1))
}

/// `(start byte, end byte, self type, trait name)` of an `impl`/`trait`
/// block body.
type ContextBlock = (usize, usize, Option<String>, Option<String>);

/// Collects `impl …` and `trait …` block contexts for one file.
fn collect_contexts(ctx: &FileCtx) -> Vec<ContextBlock> {
    let n = ctx.code.len();
    let mut contexts = Vec::new();
    let mut i = 0;
    while i < n {
        let is_impl = ctx.is_ident(i, "impl");
        let is_trait = ctx.is_ident(i, "trait");
        if !(is_impl || is_trait) {
            i += 1;
            continue;
        }
        // Skip type positions: `-> impl Trait`, `&impl T`, `dyn Trait`,
        // generic bounds (`T: impl …` cannot occur, but `+ impl` can't
        // hurt to skip).
        if i > 0 {
            let skip = match ctx.ct(i - 1).kind {
                TokenKind::Punct(p) => {
                    matches!(p, b'>' | b'(' | b',' | b'&' | b'=' | b'<' | b'+' | b':')
                }
                TokenKind::Ident => ctx.text(i - 1) == "dyn",
                _ => false,
            };
            if skip {
                i += 1;
                continue;
            }
        }
        // Header scan: depth-0 idents up to the body `{` (or `;` for
        // bodyless forms). `for` splits trait path from self type;
        // `where` ends path collection.
        let mut j = i + 1;
        let mut angle = 0i32;
        let mut first_path: Vec<String> = Vec::new();
        let mut second_path: Vec<String> = Vec::new();
        let mut after_for = false;
        let mut in_where = false;
        // Set by a depth-0 single `:` (supertrait list: `trait Fabric:
        // Send`) or `+` (auto-trait bound): idents after it are bounds,
        // not the path. A `::` pair is a path separator, not a bound.
        let mut in_bounds = false;
        let mut open = None;
        while j < n {
            match ctx.ct(j).kind {
                TokenKind::Punct(b'<') => angle += 1,
                TokenKind::Punct(b'>') => angle -= 1,
                TokenKind::Punct(b'{') => {
                    open = Some(j);
                    break;
                }
                TokenKind::Punct(b';') => break,
                TokenKind::Punct(b':') if angle <= 0 => {
                    let paired = (j + 1 < n && ctx.is_punct(j + 1, b':'))
                        || (j > 0 && ctx.is_punct(j - 1, b':'));
                    if !paired {
                        in_bounds = true;
                    }
                }
                TokenKind::Punct(b'+') if angle <= 0 => in_bounds = true,
                TokenKind::Ident if angle <= 0 => {
                    let t = ctx.text(j);
                    if t == "for" {
                        after_for = true;
                        in_bounds = false;
                    } else if t == "where" {
                        in_where = true;
                    } else if !in_where && !in_bounds && t != "dyn" {
                        if after_for {
                            second_path.push(t.to_string());
                        } else {
                            first_path.push(t.to_string());
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let (body_end, _) = match_brace(ctx, open);
        let self_ty = if after_for {
            second_path.last().cloned()
        } else {
            first_path.last().cloned()
        };
        let trait_ty = if is_trait {
            // Trait default methods answer to the trait's own name.
            first_path.first().cloned()
        } else if after_for {
            first_path.last().cloned()
        } else {
            None
        };
        contexts.push((ctx.ct(open).start, body_end, self_ty, trait_ty));
        // Keep scanning inside the block: trait items never nest, but a
        // module may hold several impls.
        i = open + 1;
    }
    contexts
}

impl CallGraph {
    /// Builds the graph over a set of tokenized files. Pass one file
    /// for the single-file approximation `lint_source` uses, or the
    /// whole tree for the real interprocedural pass.
    pub fn build(ctxs: &[FileCtx]) -> CallGraph {
        let mut fns: Vec<FnDef> = Vec::new();
        let mut sinks_raw: Vec<(usize, Sink)> = Vec::new();
        let mut calls: Vec<(usize, Callee)> = Vec::new();
        for ctx in ctxs {
            if EXCLUDED_PREFIXES.iter().any(|p| ctx.path.starts_with(p)) {
                continue;
            }
            parse_file(ctx, &mut fns, &mut sinks_raw, &mut calls);
        }

        // Name-resolution indices over non-test definitions.
        let mut by_free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (idx, d) in fns.iter().enumerate() {
            if d.is_test {
                continue;
            }
            match &d.qualifier {
                None => by_free.entry(d.name.as_str()).or_default().push(idx),
                Some(q) => {
                    by_method.entry(d.name.as_str()).or_default().push(idx);
                    by_qual
                        .entry((q.as_str(), d.name.as_str()))
                        .or_default()
                        .push(idx);
                }
            }
            if let Some(t) = &d.trait_name {
                by_qual
                    .entry((t.as_str(), d.name.as_str()))
                    .or_default()
                    .push(idx);
            }
        }

        let empty: Vec<usize> = Vec::new();
        let mut callees = vec![Vec::new(); fns.len()];
        for (owner, callee) in &calls {
            let targets = match callee {
                Callee::Free(n) => by_free.get(n.as_str()).unwrap_or(&empty),
                Callee::Method(n) => by_method.get(n.as_str()).unwrap_or(&empty),
                Callee::Qualified(q, n) => {
                    if let Some(v) = by_qual.get(&(q.as_str(), n.as_str())) {
                        v
                    } else if q.starts_with(|c: char| c.is_lowercase()) {
                        // Module-qualified free call: `pool::global()`.
                        by_free.get(n.as_str()).unwrap_or(&empty)
                    } else {
                        &empty
                    }
                }
            };
            for &t in targets {
                if t != *owner {
                    callees[*owner].push(t);
                }
            }
        }
        for v in &mut callees {
            v.sort_unstable();
            v.dedup();
        }

        let mut sinks = vec![Vec::new(); fns.len()];
        for (owner, s) in sinks_raw {
            sinks[owner].push(s);
        }

        let roots: Vec<usize> = fns
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_test && d.is_hot_root())
            .map(|(i, _)| i)
            .collect();

        CallGraph {
            fns,
            callees,
            sinks,
            roots,
        }
    }

    /// Multi-source BFS from the hot roots. Returns (reachable mask,
    /// BFS predecessor per function) — predecessors reconstruct a
    /// shortest root→sink chain deterministically.
    pub fn reachable(&self) -> (Vec<bool>, Vec<Option<usize>>) {
        let mut seen = vec![false; self.fns.len()];
        let mut pred = vec![None; self.fns.len()];
        let mut queue = VecDeque::new();
        for &r in &self.roots {
            if !seen[r] {
                seen[r] = true;
                queue.push_back(r);
            }
        }
        while let Some(u) = queue.pop_front() {
            for &v in &self.callees[u] {
                if !seen[v] {
                    seen[v] = true;
                    pred[v] = Some(u);
                    queue.push_back(v);
                }
            }
        }
        (seen, pred)
    }

    /// The root→…→`idx` chain of definition indices.
    pub fn chain_to(&self, pred: &[Option<usize>], idx: usize) -> Vec<usize> {
        let mut chain = vec![idx];
        let mut cur = idx;
        while let Some(p) = pred[cur] {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }
}

/// Parses one file: definitions, sinks, call sites. Sinks and calls are
/// attributed to the innermost enclosing non-test definition.
fn parse_file(
    ctx: &FileCtx,
    fns: &mut Vec<FnDef>,
    sinks_raw: &mut Vec<(usize, Sink)>,
    calls: &mut Vec<(usize, Callee)>,
) {
    let n = ctx.code.len();
    let contexts = collect_contexts(ctx);

    // Pass 1: function definitions.
    let first_local = fns.len();
    let mut i = 0;
    while i + 1 < n {
        if !ctx.is_ident(i, "fn") || ctx.ct(i + 1).kind != TokenKind::Ident {
            i += 1;
            continue;
        }
        let name = ctx.text(i + 1).to_string();
        // Body: the first `{` before any terminating `;` (a `;` first
        // means a bodyless trait/extern declaration).
        let mut j = i + 2;
        let mut open = None;
        while j < n {
            match ctx.ct(j).kind {
                TokenKind::Punct(b'{') => {
                    open = Some(j);
                    break;
                }
                TokenKind::Punct(b';') => break,
                _ => j += 1,
            }
        }
        let Some(open) = open else {
            i = j.max(i + 2) + 1;
            continue;
        };
        let (body_end, close) = match_brace(ctx, open);
        let start = ctx.ct(i).start;
        let (qualifier, trait_name) = contexts
            .iter()
            .filter(|(s, e, _, _)| start > *s && start < *e)
            .min_by_key(|(s, e, _, _)| e - s)
            .map(|(_, _, q, t)| (q.clone(), t.clone()))
            .unwrap_or((None, None));
        fns.push(FnDef {
            file: ctx.path.to_string(),
            name,
            qualifier,
            trait_name,
            line: ctx.ct(i + 1).line,
            body: (ctx.ct(open).start, body_end),
            is_test: ctx.offset_in_test(start),
        });
        // Nested fns get their own defs: resume just inside the body.
        let _ = close;
        i += 2;
    }
    let local: Vec<usize> = (first_local..fns.len()).collect();

    // Innermost enclosing definition of a byte offset.
    let innermost = |b: usize| -> Option<usize> {
        local
            .iter()
            .copied()
            .filter(|&d| b > fns[d].body.0 && b < fns[d].body.1)
            .min_by_key(|&d| fns[d].body.1 - fns[d].body.0)
    };

    // `let`-bound names per definition: a call through a local binding
    // (`let run = |job| …; run(job)`) is a closure invocation, not a
    // free-function call — resolving it by name would wire the owner to
    // every free fn that happens to share the binding's name.
    let mut shadowed: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut i = 0;
    while i < n {
        if !ctx.is_ident(i, "let") {
            i += 1;
            continue;
        }
        let owner = innermost(ctx.ct(i).start);
        let mut j = i + 1;
        while j < n {
            match ctx.ct(j).kind {
                TokenKind::Punct(b'=') | TokenKind::Punct(b';') | TokenKind::Punct(b':') => break,
                TokenKind::Ident => {
                    let t = ctx.text(j);
                    if t != "mut" && t != "ref" {
                        if let Some(o) = owner {
                            shadowed.entry(o).or_default().push(t.to_string());
                        }
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j;
    }

    // Pass 2: sinks and call sites.
    for i in 0..n {
        if ctx.ct(i).kind != TokenKind::Ident {
            continue;
        }
        let at = ctx.ct(i).start;
        let Some(owner) = innermost(at) else { continue };
        if fns[owner].is_test {
            continue;
        }
        let name = ctx.text(i);
        let line = ctx.ct(i).line;
        let next_paren = i + 1 < n && ctx.is_punct(i + 1, b'(');
        let next_bang = i + 1 < n && ctx.is_punct(i + 1, b'!');
        let prev_dot = i > 0 && ctx.is_punct(i - 1, b'.');
        let qual_prev = i >= 2 && ctx.is_punct(i - 1, b':') && ctx.is_punct(i - 2, b':');

        let sink = match name {
            "unwrap" if prev_dot && next_paren => Some((SinkKind::Panic, "unwrap")),
            "expect" if prev_dot && next_paren => Some((SinkKind::Panic, "expect")),
            "panic" if next_bang => Some((SinkKind::Panic, "panic!")),
            "to_vec" if prev_dot && next_paren => Some((SinkKind::Alloc, "to_vec")),
            "clone" if prev_dot && next_paren => Some((SinkKind::Alloc, "clone")),
            "format" if next_bang => Some((SinkKind::Alloc, "format!")),
            "new" if next_paren && qual_prev && i >= 3 && ctx.is_ident(i - 3, "Vec") => {
                Some((SinkKind::Alloc, "Vec::new"))
            }
            "new" if next_paren && qual_prev && i >= 3 && ctx.is_ident(i - 3, "Box") => {
                Some((SinkKind::Alloc, "Box::new"))
            }
            _ => None,
        };
        if let Some((kind, what)) = sink {
            sinks_raw.push((owner, Sink { kind, what, line }));
        }

        if !next_paren || NON_CALL_IDENTS.contains(&name) {
            continue;
        }
        if i > 0 && ctx.is_ident(i - 1, "fn") {
            continue; // the definition itself
        }
        let callee = if prev_dot {
            // Sink method names never double as call edges (`.expect(`
            // would otherwise wire its caller to the JSON parser's
            // `Parser::expect`); ambient std methods likewise.
            if matches!(name, "unwrap" | "expect" | "clone" | "to_vec")
                || AMBIENT_METHODS.contains(&name)
            {
                continue;
            }
            Callee::Method(name.to_string())
        } else if qual_prev {
            if i >= 3 && ctx.ct(i - 3).kind == TokenKind::Ident {
                let q = ctx.text(i - 3);
                if q == "Self" {
                    match &fns[owner].qualifier {
                        Some(sq) => Callee::Qualified(sq.clone(), name.to_string()),
                        None => Callee::Free(name.to_string()),
                    }
                } else {
                    Callee::Qualified(q.to_string(), name.to_string())
                }
            } else {
                continue; // turbofish or other non-ident qualifier
            }
        } else {
            if shadowed
                .get(&owner)
                .is_some_and(|s| s.iter().any(|b| b == name))
            {
                continue; // local closure/binding, not a free fn
            }
            Callee::Free(name.to_string())
        };
        calls.push((owner, callee));
    }
}

/// The two interprocedural rules: `no-panic-hot-path` and
/// `no-alloc-hot-path`. Every sink in a hot-reachable function fails
/// with the full root→sink call chain. Panic sinks in recovery-ladder
/// files are skipped — the stricter, allowlist-free
/// `no-panic-recovery-path` rule owns those.
pub fn rule_hot_reachability(graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let (seen, pred) = graph.reachable();
    for (idx, d) in graph.fns.iter().enumerate() {
        if !seen[idx] || graph.sinks[idx].is_empty() {
            continue;
        }
        let chain: Vec<String> = graph
            .chain_to(&pred, idx)
            .into_iter()
            .map(|i| graph.fns[i].display_name())
            .collect();
        let chain_str = chain.join(" -> ");
        for s in &graph.sinks[idx] {
            match s.kind {
                SinkKind::Panic => {
                    if RECOVERY_PATH_FILES.contains(&d.file.as_str()) {
                        continue;
                    }
                    out.push(Diagnostic {
                        rule: "no-panic-hot-path",
                        file: d.file.clone(),
                        line: s.line,
                        message: format!(
                            "`{}` reachable from hot root `{}` (call chain: {chain_str})",
                            s.what, chain[0]
                        ),
                        hint: "propagate a typed error (DecodeError / FrameError / FabricError) \
                               instead; if the panic is provably unreachable, add an allowlist \
                               entry with the proof sketch"
                            .to_string(),
                    });
                }
                SinkKind::Alloc => {
                    out.push(Diagnostic {
                        rule: "no-alloc-hot-path",
                        file: d.file.clone(),
                        line: s.line,
                        message: format!(
                            "`{}` allocates on a path reachable from hot root `{}` \
                             (call chain: {chain_str})",
                            s.what, chain[0]
                        ),
                        hint: "reuse a PipelineScratch / FrameArena / ByteSink buffer or hoist \
                               the allocation to setup; genuinely cold sites (recovery resends, \
                               one-shot wrappers) may take a justified allowlist entry"
                            .to_string(),
                    });
                }
            }
        }
    }
}

/// DOT rendering of the hot-reachable subgraph, with a per-crate
/// summary in comment lines (also returned by [`summary_lines`] for
/// DESIGN.md).
pub fn hot_subgraph_dot(graph: &CallGraph) -> String {
    let (seen, _) = graph.reachable();
    let mut out = String::from("digraph hot_paths {\n");
    for line in summary_lines(graph) {
        out.push_str("    // ");
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str("    rankdir=LR;\n    node [shape=box, fontsize=10];\n");
    let node_id = |i: usize| -> String {
        let d = &graph.fns[i];
        format!("{}::{}#{i}", d.crate_name(), d.display_name())
    };
    for (i, d) in graph.fns.iter().enumerate() {
        if !seen[i] {
            continue;
        }
        let style = if graph.roots.contains(&i) {
            ", style=bold, color=red"
        } else if !graph.sinks[i].is_empty() {
            ", style=dashed"
        } else {
            ""
        };
        out.push_str(&format!(
            "    \"{}\" [label=\"{}::{}\"{}];\n",
            node_id(i),
            d.crate_name(),
            d.display_name(),
            style
        ));
    }
    for (i, cs) in graph.callees.iter().enumerate() {
        if !seen[i] {
            continue;
        }
        for &c in cs {
            if seen[c] {
                out.push_str(&format!("    \"{}\" -> \"{}\";\n", node_id(i), node_id(c)));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Per-crate node/edge/root/sink counts of the hot-reachable subgraph,
/// one formatted line per crate plus a totals line.
pub fn summary_lines(graph: &CallGraph) -> Vec<String> {
    let (seen, _) = graph.reachable();
    let mut per: BTreeMap<&str, (usize, usize, usize, usize)> = BTreeMap::new();
    let mut total_edges = 0usize;
    for (i, d) in graph.fns.iter().enumerate() {
        if !seen[i] {
            continue;
        }
        let entry = per.entry(d.crate_name()).or_default();
        entry.0 += 1;
        let edges = graph.callees[i].iter().filter(|&&c| seen[c]).count();
        entry.1 += edges;
        total_edges += edges;
        if graph.roots.contains(&i) {
            entry.2 += 1;
        }
        entry.3 += graph.sinks[i].len();
    }
    let total_nodes = seen.iter().filter(|&&s| s).count();
    let mut lines: Vec<String> = per
        .iter()
        .map(|(c, (nodes, edges, roots, sinks))| {
            format!("{c}: {nodes} hot fns, {edges} edges, {roots} roots, {sinks} sinks")
        })
        .collect();
    lines.push(format!(
        "total: {} fns in graph, {total_nodes} hot-reachable, {total_edges} edges in hot subgraph",
        graph.fns.len()
    ));
    lines
}
