//! Concurrency models of the repo's two hand-rolled threading
//! protocols, plus the intentionally-broken fixtures the checker must
//! catch.
//!
//! The models run the *real* production kernels — `BurstCodec`
//! encode/decode from `inceptionn-compress`, `block_range` from
//! `inceptionn-distrib` — under the mini-loom's instrumented
//! primitives, so what gets explored is the actual sharding/handshake
//! protocol logic with the actual codec math inside it. What the
//! checker proves within its preemption bound:
//!
//! - [`parallel_encode_model`] / [`parallel_decode_model`]: the
//!   ParallelCodec shard protocol (fan out disjoint shards, collect
//!   results through a shared table, assemble in shard order) never
//!   deadlocks and yields byte-identical frames on every schedule;
//! - [`ring_reduce_model`]: the threaded ring's reduce-scatter +
//!   all-gather over capacity-1 channels with a shared locked codec
//!   never deadlocks and every worker converges to the same vector on
//!   every schedule;
//! - [`racy_counter_model`] and [`lock_inversion_model`]: seeded-bug
//!   fixtures — a lost-update race and an AB-BA deadlock — that the
//!   checker MUST flag; the gate test fails if it ever stops catching
//!   them.

use std::sync::Arc;

use inceptionn_compress::{BurstCodec, ErrorBound};
use inceptionn_distrib::ring::block_range;

use crate::conc::{
    sim_channel, Explorer, JoinHandle, RaceCell, Report, SimCondvar, SimMutex, Violation,
};

/// Deterministic pseudo-gradient: a fixed mix of zeros, small and large
/// magnitudes, with no RNG (the checker forbids wall-clock/RNG in
/// models just as the linter forbids it in wire code).
pub fn synthetic_values(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761);
            match h % 4 {
                0 => 0.0,
                1 => ((h >> 8) % 1000) as f32 * 1e-4,
                2 => -(((h >> 8) % 1000) as f32) * 1e-2,
                _ => ((h >> 8) % 1000) as f32,
            }
        })
        .collect()
}

/// Splits `len` values into `shards` contiguous ranges the same way for
/// every schedule (mirrors `ParallelCodec::shard_ranges`' burst-aligned
/// split in miniature).
fn shard_ranges(len: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    (0..shards).map(|k| block_range(len, shards, k)).collect()
}

/// ParallelCodec encode protocol: each worker compresses a disjoint
/// shard with the real [`BurstCodec`] and publishes into a shared slot
/// table; the root assembles the self-describing frame in shard order.
/// Output bytes must not depend on worker completion order.
pub fn parallel_encode_model(shards: usize, values_per_shard: usize) -> Result<Report, Violation> {
    let values = Arc::new(synthetic_values(shards * values_per_shard));
    Explorer::default().explore(move |sim| {
        let codec = Arc::new(BurstCodec::new(ErrorBound::pow2(8)));
        let slots: Arc<SimMutex<Vec<Option<Vec<u8>>>>> =
            Arc::new(SimMutex::new(sim, vec![None; shards]));
        let ranges = shard_ranges(values.len(), shards);
        let handles: Vec<JoinHandle> = ranges
            .iter()
            .cloned()
            .enumerate()
            .map(|(k, range)| {
                let (codec, slots, values) =
                    (Arc::clone(&codec), Arc::clone(&slots), Arc::clone(&values));
                sim.spawn(move || {
                    let stream = codec.compress(&values[range]);
                    slots.lock()[k] = Some(stream.bytes);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        // Frame assembly: shard order, length-prefixed — like ShardFrame.
        let table = slots.lock();
        let mut frame = Vec::new();
        for slot in table.iter() {
            let bytes = slot.as_ref().expect("every shard published");
            frame.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            frame.extend_from_slice(bytes);
        }
        frame
    })
}

/// ParallelCodec decode protocol: shards (pre-encoded outside the
/// exploration, so they are schedule-independent inputs) are decoded
/// concurrently and stitched in shard order.
pub fn parallel_decode_model(shards: usize, values_per_shard: usize) -> Result<Report, Violation> {
    let codec = BurstCodec::new(ErrorBound::pow2(8));
    let values = synthetic_values(shards * values_per_shard);
    let encoded: Arc<Vec<(Vec<u8>, usize)>> = Arc::new(
        shard_ranges(values.len(), shards)
            .into_iter()
            .map(|r| {
                let stream = codec.compress(&values[r.clone()]);
                (stream.bytes, r.len())
            })
            .collect(),
    );
    Explorer::default().explore(move |sim| {
        let codec = Arc::new(BurstCodec::new(ErrorBound::pow2(8)));
        let slots: Arc<SimMutex<Vec<Option<Vec<f32>>>>> =
            Arc::new(SimMutex::new(sim, vec![None; shards]));
        let handles: Vec<JoinHandle> = (0..shards)
            .map(|k| {
                let (codec, slots, encoded) =
                    (Arc::clone(&codec), Arc::clone(&slots), Arc::clone(&encoded));
                sim.spawn(move || {
                    let (bytes, count) = &encoded[k];
                    let mut out = vec![0f32; *count];
                    codec
                        .decompress_into(bytes, *count, &mut out)
                        .expect("shard decodes");
                    slots.lock()[k] = Some(out);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let table = slots.lock();
        table
            .iter()
            .flat_map(|s| s.as_ref().expect("every shard decoded"))
            .flat_map(|v| v.to_le_bytes())
            .collect()
    })
}

/// The threaded ring's reduce-scatter + all-gather handshake: `n`
/// workers, capacity-1 channels to the right neighbor (the real code's
/// `sync_channel(1)`), and a single shared, locked codec standing in
/// for the ring's `Mutex<Box<dyn Fabric>>`. Reduce-scatter re-encodes
/// the accumulated block each hop; all-gather forwards reduced bytes
/// verbatim, so every worker must end with the identical vector.
pub fn ring_reduce_model(n: usize, values_per_block: usize) -> Result<Report, Violation> {
    let len = n * values_per_block;
    let explorer = Explorer {
        // The ring model has ~an order of magnitude more scheduling
        // points than the shard models; one preemption already explores
        // every single-interference schedule of the handshake.
        max_preemptions: 1,
        ..Explorer::default()
    };
    explorer.explore(move |sim| {
        let fabric = Arc::new(SimMutex::new(sim, BurstCodec::new(ErrorBound::pow2(8))));
        // links[i] feeds worker (i + 1) % n.
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = sim_channel::<Vec<u8>>(sim, 1);
            senders.push(Some(tx));
            receivers.push(Some(rx));
        }
        let finals: Arc<SimMutex<Vec<Option<Vec<f32>>>>> =
            Arc::new(SimMutex::new(sim, vec![None; n]));
        let handles: Vec<JoinHandle> = (0..n)
            .map(|w| {
                let tx = senders[w].take().expect("one sender per link");
                let rx = receivers[(w + n - 1) % n]
                    .take()
                    .expect("one receiver per link");
                let (fabric, finals) = (Arc::clone(&fabric), Arc::clone(&finals));
                sim.spawn(move || {
                    // Each worker contributes a distinct deterministic vector.
                    let mut data: Vec<f32> = (0..len)
                        .map(|i| ((i + 1) * (w + 1)) as f32 * 0.25)
                        .collect();
                    // Reduce-scatter: after n-1 rounds, worker w owns the
                    // fully reduced block (w + 1) % n.
                    for round in 0..n - 1 {
                        let send_block = (w + n - round) % n;
                        let recv_block = (w + n - round - 1) % n;
                        let bytes = {
                            let codec = fabric.lock();
                            codec.compress(&data[block_range(len, n, send_block)]).bytes
                        };
                        tx.send(bytes);
                        let incoming = rx.recv();
                        let r = block_range(len, n, recv_block);
                        let decoded = {
                            let codec = fabric.lock();
                            let mut out = vec![0f32; r.len()];
                            codec
                                .decompress_into(&incoming, r.len(), &mut out)
                                .expect("ring payload decodes");
                            out
                        };
                        for (slot, v) in data[r].iter_mut().zip(decoded) {
                            *slot += v;
                        }
                    }
                    // All-gather: forward the owned block's reduced bytes
                    // verbatim around the ring. The codec is lossy, so the
                    // owner adopts the decoded view of its own block — the
                    // same bytes everyone else will decode.
                    let owned = (w + 1) % n;
                    let mut outgoing = {
                        let codec = fabric.lock();
                        let r = block_range(len, n, owned);
                        let bytes = codec.compress(&data[r.clone()]).bytes;
                        let mut out = vec![0f32; r.len()];
                        codec
                            .decompress_into(&bytes, r.len(), &mut out)
                            .expect("own block decodes");
                        data[r].copy_from_slice(&out);
                        bytes
                    };
                    for round in 0..n - 1 {
                        tx.send(outgoing);
                        let incoming = rx.recv();
                        let recv_block = (w + n - round) % n;
                        let r = block_range(len, n, recv_block);
                        let codec = fabric.lock();
                        let mut out = vec![0f32; r.len()];
                        codec
                            .decompress_into(&incoming, r.len(), &mut out)
                            .expect("gathered payload decodes");
                        data[r].copy_from_slice(&out);
                        outgoing = incoming;
                    }
                    finals.lock()[w] = Some(data);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        let table = finals.lock();
        let first = table[0].as_ref().expect("worker 0 finished");
        for (w, other) in table.iter().enumerate().skip(1) {
            let other = other.as_ref().expect("worker finished");
            assert_eq!(first, other, "worker {w} diverged from worker 0");
        }
        first.iter().flat_map(|v| v.to_le_bytes()).collect()
    })
}

/// Seeded-bug fixture: two workers perform a non-atomic
/// read-modify-write on a shared [`RaceCell`]. Some schedule loses an
/// update; the checker must report the failed assertion.
pub fn racy_counter_model() -> Result<Report, Violation> {
    Explorer::default().explore(|sim| {
        let counter = Arc::new(RaceCell::new(sim, 0u32));
        let handles: Vec<JoinHandle> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                sim.spawn(move || {
                    let v = counter.get();
                    counter.set(v + 1);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.get(), 2, "racy counter lost an update");
        Vec::new()
    })
}

/// Seeded-bug fixture: classic AB-BA lock inversion. Some schedule
/// deadlocks; the checker must report it.
pub fn lock_inversion_model() -> Result<Report, Violation> {
    Explorer::default().explore(|sim| {
        let a = Arc::new(SimMutex::new(sim, ()));
        let b = Arc::new(SimMutex::new(sim, ()));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = sim.spawn(move || {
            let _ga = a1.lock();
            let _gb = b1.lock();
        });
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = sim.spawn(move || {
            let _gb = b2.lock();
            let _ga = a2.lock();
        });
        t1.join();
        t2.join();
        Vec::new()
    })
}

/// Shared state of the miniature `compress::pool` model: the installed
/// task's claim cursor, the completion count, the first recorded job
/// panic (the real pool's `Task::panicked` slot), and the shutdown
/// flag the model adds so exploration terminates (real workers park
/// forever between tasks).
struct PoolTask {
    next: usize,
    remaining: usize,
    jobs: usize,
    installed: bool,
    shutdown: bool,
    panicked: Option<&'static str>,
}

/// The `compress::pool` worker park/unpark handshake, in miniature but
/// with the real protocol shape: workers park on a work condvar while
/// no task is installed, claim job indices from a shared cursor under
/// the state mutex, run the job with the lock dropped, write an
/// index-addressed slot, and signal a done condvar when the last job
/// completes; the submitter installs the task, notifies, and waits on
/// the done condvar. Clean on every schedule = no lost wakeup; byte-
/// identical output = shard placement is a function of the index, not
/// the claim order. `poison_job` injects the real pool's `JobPanic`
/// capture: that job records itself in the `panicked` slot instead of
/// producing output, and the submitter surfaces the message after the
/// barrier — completion of the *other* jobs must not depend on it.
fn pool_model(workers: usize, jobs: usize, poison_job: Option<usize>) -> Result<Report, Violation> {
    let explorer = Explorer {
        // Two condvars multiply scheduling points; one forced preemption
        // already interleaves park/notify every way that matters.
        max_preemptions: 1,
        ..Explorer::default()
    };
    explorer.explore(move |sim| {
        let state = Arc::new(SimMutex::new(
            sim,
            PoolTask {
                next: 0,
                remaining: jobs,
                jobs,
                installed: false,
                shutdown: false,
                panicked: None,
            },
        ));
        let work_cv = Arc::new(SimCondvar::new(sim));
        let done_cv = Arc::new(SimCondvar::new(sim));
        let slots: Arc<SimMutex<Vec<u8>>> = Arc::new(SimMutex::new(sim, vec![0; jobs]));
        let inputs = Arc::new(synthetic_values(jobs * 8));

        let handles: Vec<JoinHandle> = (0..workers)
            .map(|_| {
                let (state, work_cv, done_cv) = (
                    Arc::clone(&state),
                    Arc::clone(&work_cv),
                    Arc::clone(&done_cv),
                );
                let (slots, inputs) = (Arc::clone(&slots), Arc::clone(&inputs));
                sim.spawn(move || loop {
                    let i = {
                        let mut g = state.lock();
                        loop {
                            if g.shutdown {
                                return;
                            }
                            if g.installed && g.next < g.jobs {
                                break;
                            }
                            g = work_cv.wait(g);
                        }
                        let i = g.next;
                        g.next += 1;
                        i
                    };
                    // Job body runs with the state lock dropped, like the
                    // real pool: fold the job's input block to one byte.
                    let byte = if poison_job == Some(i) {
                        None
                    } else {
                        let block = &inputs[i * 8..(i + 1) * 8];
                        Some(block.iter().fold(0u8, |acc, v| {
                            acc.wrapping_mul(31).wrapping_add(v.to_bits() as u8)
                        }))
                    };
                    match byte {
                        Some(b) => slots.lock()[i] = b,
                        None => {
                            // The real worker records the first panic via
                            // get_or_insert and still decrements `remaining`.
                            state.lock().panicked.get_or_insert("shard poisoned");
                        }
                    }
                    let mut g = state.lock();
                    g.remaining -= 1;
                    if g.remaining == 0 {
                        drop(g);
                        done_cv.notify_all();
                    }
                })
            })
            .collect();

        // Submitter: install the task, wake the parked workers, wait for
        // the barrier, then shut the pool down.
        {
            let mut g = state.lock();
            g.installed = true;
        }
        work_cv.notify_all();
        {
            let mut g = state.lock();
            while g.remaining > 0 {
                g = done_cv.wait(g);
            }
            g.shutdown = true;
        }
        work_cv.notify_all();
        for h in handles {
            h.join();
        }

        // Output: the slot bytes, plus the propagated panic (if any) the
        // way `JobPanic::resume` would re-surface it to the submitter.
        let mut out = slots.lock().clone();
        if let Some(msg) = state.lock().panicked {
            out.push(0xEE);
            out.extend_from_slice(msg.as_bytes());
        }
        out
    })
}

/// Clean pool handshake: no lost wakeup (deadlock-free on every
/// schedule) and deterministic, index-addressed shard placement.
pub fn pool_handshake_model(workers: usize, jobs: usize) -> Result<Report, Violation> {
    pool_model(workers, jobs, None)
}

/// Pool panic propagation: job 1 "panics"; every other job still
/// completes and the recorded panic surfaces identically on every
/// schedule (the real pool's `JobPanic::resume` contract).
pub fn pool_panic_propagation_model() -> Result<Report, Violation> {
    pool_model(2, 3, Some(1))
}

/// Seeded-bug fixture: a worker parks with the broken release-yield-
/// park sequence ([`SimCondvar::wait_racy`]); the submitter's only
/// notification can land in the window, after which nobody ever wakes
/// the worker. The checker must report the deadlock.
pub fn pool_lost_wakeup_fixture() -> Result<Report, Violation> {
    Explorer::default().explore(|sim| {
        let installed = Arc::new(SimMutex::new(sim, false));
        let work_cv = Arc::new(SimCondvar::new(sim));
        let (st, cv) = (Arc::clone(&installed), Arc::clone(&work_cv));
        let worker = sim.spawn(move || {
            let mut g = st.lock();
            while !*g {
                g = cv.wait_racy(g); // release, yield, park: the bug
            }
        });
        {
            let mut g = installed.lock();
            *g = true;
        }
        work_cv.notify_all();
        worker.join();
        Vec::new()
    })
}

/// The `FrameArena` checkout/recycle discipline under a pipelined
/// chunk in flight. A producer checks frames out of a two-frame free
/// list, writes the chunk payload, and sends the frame index to a
/// consumer over a capacity-1 channel (the in-flight chunk). Correct
/// discipline (`buggy = false`) recycles a frame only after the
/// consumer acknowledges the read. With `buggy = true` the producer
/// checks the frame back into the free list while the chunk still
/// references it — the next checkout reuses and overwrites the frame
/// under the consumer, and the consumer's payload assertion fails on
/// some schedule: the use-after-recycle the checker must catch.
pub fn frame_arena_model(buggy: bool) -> Result<Report, Violation> {
    const CHUNKS: u32 = 3;
    Explorer::default().explore(move |sim| {
        let free: Arc<SimMutex<Vec<usize>>> = Arc::new(SimMutex::new(sim, vec![0, 1]));
        let frames: Arc<Vec<RaceCell<u32>>> =
            Arc::new((0..2).map(|_| RaceCell::new(sim, 0)).collect());
        let (tx, rx) = sim_channel::<usize>(sim, 1);
        let (ack_tx, ack_rx) = sim_channel::<u8>(sim, 1);

        let consumer = {
            let frames = Arc::clone(&frames);
            sim.spawn(move || {
                for chunk in 0..CHUNKS {
                    let idx = rx.recv();
                    let got = frames[idx].get();
                    assert_eq!(
                        got,
                        10 + chunk,
                        "use-after-recycle: chunk {chunk} in frame {idx} was overwritten"
                    );
                    if !buggy {
                        ack_tx.send(1);
                    }
                }
            })
        };

        for chunk in 0..CHUNKS {
            let idx = free.lock().pop().expect("two frames cover one in flight");
            frames[idx].set(10 + chunk);
            tx.send(idx);
            if buggy {
                // Recycled while the chunk is still in flight.
                free.lock().push(idx);
            } else {
                ack_rx.recv();
                free.lock().push(idx);
            }
        }
        consumer.join();
        Vec::new()
    })
}

/// The bounded in-flight window of `distrib::pipeline`: a producer may
/// encode at most `window` chunks ahead of the consumer's folds
/// (`deliver_ring_chunk` recycles a frame per fold before the next
/// checkout). Window permits are a condvar-guarded counter; the
/// consumer asserts, at every fold, that folds arrive in order and
/// that `1 <= in-flight <= window` — the window invariant on every
/// interleaving. Output is the fold order, so determinism is also
/// checked.
pub fn pipeline_window_model(chunks: u8, window: usize) -> Result<Report, Violation> {
    let explorer = Explorer {
        max_preemptions: 1,
        ..Explorer::default()
    };
    explorer.explore(move |sim| {
        let in_flight = Arc::new(SimMutex::new(sim, 0usize));
        let space_cv = Arc::new(SimCondvar::new(sim));
        let (tx, rx) = sim_channel::<u8>(sim, window.max(1));
        let folds: Arc<SimMutex<Vec<u8>>> = Arc::new(SimMutex::new(sim, Vec::new()));

        let consumer = {
            let (in_flight, space_cv, folds) = (
                Arc::clone(&in_flight),
                Arc::clone(&space_cv),
                Arc::clone(&folds),
            );
            sim.spawn(move || {
                for k in 0..chunks {
                    let chunk = rx.recv();
                    let mut log = folds.lock();
                    assert_eq!(chunk, k, "folds must land in pipeline order");
                    log.push(chunk);
                    drop(log);
                    let mut g = in_flight.lock();
                    assert!(
                        *g >= 1 && *g <= window,
                        "window invariant violated: {} in flight, window {window}",
                        *g
                    );
                    *g -= 1; // fold recycles the frame
                    drop(g);
                    space_cv.notify_all();
                }
            })
        };

        for chunk in 0..chunks {
            // Checkout blocks while the window is full — the pipeline's
            // backpressure.
            let mut g = in_flight.lock();
            while *g == window {
                g = space_cv.wait(g);
            }
            *g += 1;
            drop(g);
            tx.send(chunk);
        }
        consumer.join();
        let order = folds.lock().clone();
        order
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_encode_is_deadlock_free_and_deterministic() {
        let report = parallel_encode_model(2, 24).expect("encode protocol is clean");
        assert!(report.schedules > 1, "exploration actually branched");
        assert!(!report.output.is_empty());
    }

    #[test]
    fn parallel_decode_is_deadlock_free_and_deterministic() {
        let report = parallel_decode_model(2, 24).expect("decode protocol is clean");
        assert!(report.schedules > 1);
        // Output is the stitched f32 bytes: 2 shards × 24 values × 4 bytes.
        assert_eq!(report.output.len(), 2 * 24 * 4);
    }

    #[test]
    fn ring_handshake_is_deadlock_free_and_converges() {
        let report = ring_reduce_model(3, 1).expect("ring handshake is clean");
        assert!(report.schedules > 1);
        assert_eq!(report.output.len(), 3 * 4);
    }

    #[test]
    fn racy_fixture_is_caught() {
        let err = racy_counter_model().expect_err("the race must be found");
        match err {
            Violation::ModelPanic { message, .. } => {
                assert!(message.contains("lost an update"), "message: {message}")
            }
            other => panic!("expected ModelPanic, got {other}"),
        }
    }

    #[test]
    fn deadlock_fixture_is_caught() {
        let err = lock_inversion_model().expect_err("the inversion must deadlock");
        assert!(matches!(err, Violation::Deadlock { .. }), "got {err}");
    }

    #[test]
    fn pool_handshake_is_clean_and_placement_is_deterministic() {
        let report = pool_handshake_model(2, 3).expect("park/claim handshake is clean");
        assert!(report.schedules > 1, "exploration actually branched");
        assert_eq!(report.output.len(), 3, "one byte per index-addressed slot");
    }

    #[test]
    fn pool_panic_propagates_identically_on_every_schedule() {
        let report = pool_panic_propagation_model().expect("panic capture is schedule-independent");
        // Slots for jobs 0 and 2, a zeroed slot for the poisoned job,
        // then the marker and message — identical on every schedule.
        assert_eq!(report.output[3], 0xEE);
        assert!(report.output.ends_with(b"shard poisoned"));
    }

    #[test]
    fn pool_lost_wakeup_fixture_is_caught() {
        let err = pool_lost_wakeup_fixture().expect_err("the lost wakeup must be found");
        assert!(matches!(err, Violation::Deadlock { .. }), "got {err}");
    }

    #[test]
    fn frame_arena_discipline_is_clean() {
        let report = frame_arena_model(false).expect("ack-before-recycle is safe");
        assert!(report.schedules > 1);
    }

    #[test]
    fn frame_arena_use_after_recycle_is_caught() {
        let err = frame_arena_model(true).expect_err("early recycle must corrupt a chunk");
        match err {
            Violation::ModelPanic { message, .. } => {
                assert!(message.contains("use-after-recycle"), "message: {message}")
            }
            other => panic!("expected ModelPanic, got {other}"),
        }
    }

    #[test]
    fn pipeline_window_invariant_holds_on_every_schedule() {
        let report = pipeline_window_model(4, 2).expect("bounded window is clean");
        assert_eq!(report.output, vec![0, 1, 2, 3], "folds in pipeline order");
    }
}
