//! CLI for the analyzer: `cargo run -p analyzer -- --check`.
//!
//! Modes:
//! - `--check` (default): invariant linter + concurrency checker
//!   (smoke-sized models); exit 1 on any violation.
//! - `--lint`: linter only.
//! - `--conc`: concurrency checker only, full-sized models.
//! - `--smoke`: concurrency checker only, smoke-sized models.
//! - `--callgraph`: emit the hot-reachable call subgraph as DOT on
//!   stdout (per-crate node/edge summary in leading comment lines);
//!   pipe through `dot -Tsvg` to render.
//!
//! `--root <dir>` overrides the workspace root (default: walk up from
//! the current directory until a `crates/` directory is found).

#![deny(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use analyzer::{run_callgraph, run_conc, run_lint, CheckOutcome};

fn find_repo_root(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(root) = explicit {
        return Some(root);
    }
    let mut dir = std::env::current_dir().ok()?;
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn report(label: &str, outcome: &CheckOutcome) -> bool {
    for line in &outcome.summary {
        println!("{line}");
    }
    for line in &outcome.failures {
        eprintln!("{line}");
    }
    if outcome.passed() {
        true
    } else {
        eprintln!("{label}: {} failure(s)", outcome.failures.len());
        false
    }
}

fn main() -> ExitCode {
    let mut mode = "--check".to_string();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" | "--lint" | "--conc" | "--smoke" | "--callgraph" => mode = arg,
            "--root" => root = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: analyzer [--check|--lint|--conc|--smoke|--callgraph] [--root <dir>]"
                );
                return ExitCode::from(2);
            }
        }
    }

    if mode == "--callgraph" {
        return match find_repo_root(root) {
            Some(repo_root) => match run_callgraph(&repo_root) {
                Ok(dot) => {
                    print!("{dot}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("callgraph: {e}");
                    ExitCode::FAILURE
                }
            },
            None => {
                eprintln!("callgraph: could not locate workspace root (pass --root <dir>)");
                ExitCode::FAILURE
            }
        };
    }

    let mut ok = true;
    if matches!(mode.as_str(), "--check" | "--lint") {
        match find_repo_root(root.clone()) {
            Some(repo_root) => {
                ok &= report("lint", &run_lint(&repo_root));
            }
            None => {
                eprintln!("lint: could not locate workspace root (pass --root <dir>)");
                ok = false;
            }
        }
    }
    if matches!(mode.as_str(), "--check" | "--conc" | "--smoke") {
        let smoke = mode != "--conc";
        ok &= report("conc", &run_conc(smoke));
    }

    if ok {
        println!("analyzer: all checks passed");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
