//! The project-invariant rule engine.
//!
//! Nine rules over every `crates/*/src/**/*.rs` file, each encoding an
//! invariant the INCEPTIONN reproduction's correctness story depends on
//! (see DESIGN.md §"Static analysis & concurrency audit" for the
//! catalog and how to add a rule):
//!
//! | id | invariant |
//! |----|-----------|
//! | `safety-comment` | every `unsafe` block/fn/impl carries a `SAFETY:` comment immediately above it |
//! | `target-feature-dispatch` | `#[target_feature]` kernels are only referenced under a matching `is_x86_feature_detected!` guard (or from a kernel enabling a superset) |
//! | `no-panic-hot-path` | no `unwrap()`/`expect()`/`panic!` in non-test code **reachable from a hot root** over the [`crate::callgraph`] call graph, modulo a shrink-only allowlist |
//! | `no-alloc-hot-path` | no `Vec::new`/`to_vec`/`clone`/`Box::new`/`format!` allocation sites in code reachable from a hot root, modulo the same allowlist |
//! | `no-panic-recovery-path` | fault-injection and recovery code never panics at all — no allowlist: a recovery path that can itself unwind defeats its purpose |
//! | `no-time-rng-in-wire` | code that determines wire byte layout never consults wall clocks or RNGs |
//! | `shim-facade` | vendored shims are only imported by the crates the facade declares |
//! | `no-eager-format-hot-path` | obs-instrumented hot paths never format strings (`format!`, `.to_string()`) or read `Instant` — events are static labels + integers, rendering deferred to export |
//! | `no-transient-thread-hot-path` | codec/fabric hot paths never create threads per call (`thread::spawn` / `thread::scope`) — shard work goes through the persistent pool |
//!
//! The two hot-path rules are *interprocedural*: instead of a file
//! list, [`crate::callgraph`] seeds the codec/transport entry points
//! (`encode_into`/`decode_into`, the `Fabric::transfer*` family, the
//! four `pipelined_*_allreduce_over` loops, and the recovery ladders)
//! as hot roots and taints everything reachable; a panic or allocation
//! site anywhere in the reachable set fails with the full root→sink
//! call chain in the diagnostic. The remaining rules run on the token
//! stream of [`crate::lexer`], so text inside strings and comments
//! never fires them, and `#[cfg(test)]` regions are excluded where a
//! rule targets production code only.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{tokenize, Token, TokenKind};

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier (`safety-comment`, …).
    pub rule: &'static str,
    /// Repo-relative file path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    hint: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// Number of distinct rule ids the engine can emit (excluding the
/// `allowlist-ratchet` meta-diagnostic).
pub const RULE_COUNT: usize = 9;

/// Obs-instrumented hot-path files covered by
/// `no-eager-format-hot-path`: the codec fast path, the transport seam,
/// and the NIC datapath. (Panic/alloc coverage is no longer file-based:
/// [`crate::callgraph`] propagates hotness over the call graph.)
/// Growing this list is encouraged; shrinking it needs a DESIGN.md note.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/compress/src/burst.rs",
    "crates/compress/src/parallel.rs",
    "crates/compress/src/inceptionn.rs",
    "crates/compress/src/bitio.rs",
    "crates/compress/src/sparse.rs",
    "crates/compress/src/sketch.rs",
    "crates/distrib/src/fabric.rs",
    "crates/distrib/src/ring.rs",
    "crates/distrib/src/aggregator.rs",
    "crates/nicsim/src/chunker.rs",
    "crates/nicsim/src/datapath.rs",
    "crates/nicsim/src/engine.rs",
    "crates/nicsim/src/nic.rs",
    "crates/nicsim/src/packet.rs",
];

/// Files covered by `no-transient-thread-hot-path`: the per-exchange
/// codec and fabric paths, where creating OS threads per call would put
/// spawn/teardown latency on every transfer. Shard fan-out belongs on
/// the persistent worker pool (`inceptionn_compress::pool::global()`).
/// Deliberately absent: `crates/compress/src/pool.rs` (its spawns run
/// once per process, building that pool) and `crates/distrib/src/ring.rs`
/// (the threaded ring exchange models one long-lived thread per worker,
/// not a per-call fan-out).
pub const TRANSIENT_THREAD_FILES: &[&str] = &[
    "crates/compress/src/burst.rs",
    "crates/compress/src/parallel.rs",
    "crates/compress/src/inceptionn.rs",
    "crates/compress/src/bitio.rs",
    "crates/compress/src/sparse.rs",
    "crates/compress/src/sketch.rs",
    "crates/distrib/src/fabric.rs",
    "crates/distrib/src/aggregator.rs",
    "crates/distrib/src/pipeline.rs",
    "crates/nicsim/src/chunker.rs",
    "crates/nicsim/src/datapath.rs",
    "crates/nicsim/src/engine.rs",
    "crates/nicsim/src/nic.rs",
    "crates/nicsim/src/packet.rs",
];

/// Fault-injection and recovery files covered by
/// `no-panic-recovery-path`. Stricter than the hot-path rule: there is
/// no allowlist. These paths exist to absorb failures; an `unwrap` here
/// turns an injected fault into a process abort, which is exactly the
/// failure mode the subsystem promises cannot happen.
pub const RECOVERY_PATH_FILES: &[&str] = &["crates/distrib/src/faults.rs"];

/// Files whose code determines wire byte layout: covered by
/// `no-time-rng-in-wire`. A wall-clock or RNG read here could make two
/// encoders of the same block disagree — the one thing the codec's
/// bit-exactness claim cannot survive. The event core and the topology
/// layer are covered too: a wall-clock timestamp or random tie-break in
/// the scheduler would let two replays of the same schedule order
/// deliveries (and thus switch folds) differently, breaking the
/// bit-identity guarantee of in-network reduction.
pub const WIRE_LAYOUT_FILES: &[&str] = &[
    "crates/compress/src/burst.rs",
    "crates/compress/src/parallel.rs",
    "crates/compress/src/inceptionn.rs",
    "crates/compress/src/bitio.rs",
    "crates/compress/src/sparse.rs",
    "crates/compress/src/sketch.rs",
    "crates/nicsim/src/chunker.rs",
    "crates/nicsim/src/engine.rs",
    "crates/nicsim/src/nic.rs",
    "crates/nicsim/src/packet.rs",
    "crates/nicsim/src/switchagg.rs",
    "crates/netsim/src/event.rs",
    "crates/netsim/src/topology.rs",
];

/// The declared shim facade: which workspace crates may import each
/// vendored shim from **non-test** code. Test modules, `tests/`, and
/// `benches/` targets are always free to use any shim.
pub const SHIM_FACADE: &[(&str, &[&str])] = &[
    ("rand", &["tensor", "dnn", "compress", "core", "bench"]),
    ("serde", &["dnn", "compress", "nicsim", "netsim", "core"]),
    ("serde_derive", &[]),
    ("bytes", &["nicsim"]),
    ("proptest", &[]),
    ("criterion", &[]),
];

/// Identifiers that read wall clocks or randomness.
const TIME_RNG_IDENTS: &[&str] = &["SystemTime", "Instant", "UNIX_EPOCH", "thread_rng"];

/// A tokenized source file plus the derived structure rules need.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Repo-relative path with unix separators.
    pub path: &'a str,
    /// Full source text.
    pub src: &'a str,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens.
    pub code: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` items (whole `mod tests { … }`).
    test_ranges: Vec<(usize, usize)>,
    /// Per 1-based line: classification for the SAFETY-comment scan.
    line_kinds: Vec<LineKind>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LineKind {
    Blank,
    /// Only comments (text of every comment covering the line joined).
    Comment(String),
    /// Only attribute tokens (plus optional comments).
    Attr,
    Code,
}

impl<'a> FileCtx<'a> {
    /// Tokenizes and indexes one file.
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let tokens = tokenize(src);
        let code: Vec<usize> = (0..tokens.len())
            .filter(|&i| !tokens[i].is_comment())
            .collect();
        let attr_mask = attr_mask(&tokens, &code);
        let test_ranges = test_ranges(src, &tokens, &code);
        let line_kinds = line_kinds(src, &tokens, &code, &attr_mask);
        FileCtx {
            path,
            src,
            tokens,
            code,
            test_ranges,
            line_kinds,
        }
    }

    /// The `i`-th code token.
    pub(crate) fn ct(&self, i: usize) -> &Token {
        &self.tokens[self.code[i]]
    }

    /// Text of the `i`-th code token.
    pub(crate) fn text(&self, i: usize) -> &str {
        self.ct(i).text(self.src)
    }

    /// Is the `i`-th code token inside a `#[cfg(test)]` region?
    fn in_test(&self, i: usize) -> bool {
        let at = self.ct(i).start;
        self.test_ranges.iter().any(|&(s, e)| at >= s && at < e)
    }

    /// Is byte offset `at` inside a `#[cfg(test)]` region?
    pub fn offset_in_test(&self, at: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| at >= s && at < e)
    }

    pub(crate) fn is_punct(&self, i: usize, b: u8) -> bool {
        self.ct(i).kind == TokenKind::Punct(b)
    }

    pub(crate) fn is_ident(&self, i: usize, s: &str) -> bool {
        self.ct(i).kind == TokenKind::Ident && self.text(i) == s
    }
}

/// Marks code tokens belonging to `#[…]` / `#![…]` attributes.
fn attr_mask(tokens: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let open = if tokens[code[i]].kind == TokenKind::Punct(b'#') {
            match code.get(i + 1).map(|&j| tokens[j].kind) {
                Some(TokenKind::Punct(b'[')) => Some(i + 1),
                Some(TokenKind::Punct(b'!'))
                    if code.get(i + 2).map(|&j| tokens[j].kind) == Some(TokenKind::Punct(b'[')) =>
                {
                    Some(i + 2)
                }
                _ => None,
            }
        } else {
            None
        };
        if let Some(first_bracket) = open {
            let mut depth = 0i32;
            let mut j = first_bracket;
            while j < code.len() {
                match tokens[code[j]].kind {
                    TokenKind::Punct(b'[') => depth += 1,
                    TokenKind::Punct(b']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(code.len())).skip(i) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Byte ranges of items annotated `#[cfg(test)]` (attribute through the
/// matching close brace, or the trailing `;` for non-block items).
fn test_ranges(src: &str, tokens: &[Token], code: &[usize]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i + 5 < code.len() {
        let t = |k: usize| &tokens[code[k]];
        let is_cfg_test = t(i).kind == TokenKind::Punct(b'#')
            && t(i + 1).kind == TokenKind::Punct(b'[')
            && t(i + 2).text(src) == "cfg"
            && t(i + 3).kind == TokenKind::Punct(b'(')
            && t(i + 4).text(src) == "test"
            && t(i + 5).kind == TokenKind::Punct(b')');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start = t(i).start;
        // Scan forward to the item body: the first `{` not preceded by
        // a terminating `;` (a `;` first means a block-less item).
        let mut j = i + 6;
        let mut end = None;
        while j < code.len() {
            match tokens[code[j]].kind {
                TokenKind::Punct(b'{') => {
                    let mut depth = 0i32;
                    let mut k = j;
                    while k < code.len() {
                        match tokens[code[k]].kind {
                            TokenKind::Punct(b'{') => depth += 1,
                            TokenKind::Punct(b'}') => {
                                depth -= 1;
                                if depth == 0 {
                                    end = Some(tokens[code[k]].end);
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    break;
                }
                TokenKind::Punct(b';') => {
                    end = Some(tokens[code[j]].end);
                    break;
                }
                _ => j += 1,
            }
        }
        let end = end.unwrap_or(src.len());
        ranges.push((start, end));
        i = j + 1;
    }
    ranges
}

/// Classifies every 1-based source line for the SAFETY-comment
/// adjacency walk.
fn line_kinds(src: &str, tokens: &[Token], code: &[usize], attr: &[bool]) -> Vec<LineKind> {
    let n_lines = src.lines().count() + 2;
    let mut kinds = vec![LineKind::Blank; n_lines + 1];
    // Comments first (weakest), then attributes, then code (strongest).
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let text = t.text(src);
        let span = text.matches('\n').count();
        for l in t.line as usize..=(t.line as usize + span) {
            if let Some(slot) = kinds.get_mut(l) {
                match slot {
                    LineKind::Blank => *slot = LineKind::Comment(text.to_string()),
                    LineKind::Comment(existing) => {
                        existing.push('\n');
                        existing.push_str(text);
                    }
                    _ => {}
                }
            }
        }
    }
    for (pos, &ti) in code.iter().enumerate() {
        let t = &tokens[ti];
        let span = t.text(src).matches('\n').count();
        for l in t.line as usize..=(t.line as usize + span) {
            if let Some(slot) = kinds.get_mut(l) {
                if attr[pos] {
                    if !matches!(slot, LineKind::Code) {
                        *slot = LineKind::Attr;
                    }
                } else {
                    *slot = LineKind::Code;
                }
            }
        }
    }
    kinds
}

// ---------------------------------------------------------------------
// Rule: safety-comment
// ---------------------------------------------------------------------

/// Every `unsafe` block, `unsafe fn`, and `unsafe impl` must have a
/// comment containing `SAFETY:` immediately above it (attribute lines
/// and doc comments may sit in between; a blank or code line breaks
/// adjacency). A trailing comment on the `unsafe` line itself also
/// counts.
pub fn rule_safety_comment(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    for i in 0..ctx.code.len() {
        if !ctx.is_ident(i, "unsafe") {
            continue;
        }
        // Skip type positions: `let k: unsafe fn(…)`, fn-pointer params.
        if i > 0 {
            if let TokenKind::Punct(p) = ctx.ct(i - 1).kind {
                if matches!(p, b':' | b'(' | b',' | b'<' | b'=') {
                    continue;
                }
            }
        }
        // Only block/fn/impl/trait/extern forms are unsafe *sites*.
        let next_is_site = ctx
            .code
            .get(i + 1)
            .map(|_| {
                ctx.is_punct(i + 1, b'{')
                    || ctx.is_ident(i + 1, "fn")
                    || ctx.is_ident(i + 1, "impl")
                    || ctx.is_ident(i + 1, "trait")
                    || ctx.is_ident(i + 1, "extern")
            })
            .unwrap_or(false);
        if !next_is_site {
            continue;
        }
        let line = ctx.ct(i).line as usize;
        if has_adjacent_safety_comment(ctx, line) {
            continue;
        }
        let form = if ctx.is_punct(i + 1, b'{') {
            "unsafe block"
        } else {
            "unsafe declaration"
        };
        out.push(Diagnostic {
            rule: "safety-comment",
            file: ctx.path.to_string(),
            line: ctx.ct(i).line,
            message: format!("{form} without an adjacent `SAFETY:` comment"),
            hint: "add `// SAFETY: <why the preconditions hold>` directly above \
                   (attributes and doc lines may sit in between)"
                .to_string(),
        });
    }
}

fn has_adjacent_safety_comment(ctx: &FileCtx, site_line: usize) -> bool {
    // Same-line comment (e.g. `unsafe { // SAFETY: …`). Line kinds
    // record such mixed lines as Code, so scan the comment tokens.
    if ctx
        .tokens
        .iter()
        .filter(|t| t.is_comment())
        .any(|t| t.line as usize == site_line && t.text(ctx.src).contains("SAFETY:"))
    {
        return true;
    }
    let mut l = site_line.saturating_sub(1);
    while l >= 1 {
        match ctx.line_kinds.get(l) {
            Some(LineKind::Comment(text)) => {
                if text.contains("SAFETY:") {
                    return true;
                }
                l -= 1;
            }
            Some(LineKind::Attr) => l -= 1,
            _ => return false,
        }
    }
    false
}

// ---------------------------------------------------------------------
// Rule: target-feature-dispatch
// ---------------------------------------------------------------------

/// A `#[target_feature(enable = …)]` function found in the tree.
#[derive(Debug, Clone)]
pub struct KernelFn {
    /// Repo-relative file that defines it.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Features it enables.
    pub features: Vec<String>,
    /// Byte range of its body (for containment checks).
    pub body: (usize, usize),
    /// Line of the definition.
    pub line: u32,
}

/// Collects `#[target_feature]` functions from one file.
pub fn collect_kernels(ctx: &FileCtx) -> Vec<KernelFn> {
    let mut kernels = Vec::new();
    let mut i = 0;
    while i + 2 < ctx.code.len() {
        let is_tf_attr = ctx.is_punct(i, b'#')
            && ctx.is_punct(i + 1, b'[')
            && ctx.is_ident(i + 2, "target_feature");
        if !is_tf_attr {
            i += 1;
            continue;
        }
        // Find the feature string inside the attribute.
        let mut j = i + 3;
        let mut features = Vec::new();
        while j < ctx.code.len() && !ctx.is_punct(j, b']') {
            if ctx.ct(j).kind == TokenKind::Str {
                let raw = ctx.text(j).trim_matches('"');
                features.extend(raw.split(',').map(|f| f.trim().to_string()));
            }
            j += 1;
        }
        // Then skip to the `fn` and take its name and body span.
        while j < ctx.code.len() && !ctx.is_ident(j, "fn") {
            j += 1;
        }
        if j + 1 >= ctx.code.len() {
            break;
        }
        let name = ctx.text(j + 1).to_string();
        let line = ctx.ct(j + 1).line;
        let mut k = j + 2;
        while k < ctx.code.len() && !ctx.is_punct(k, b'{') {
            k += 1;
        }
        let body_start = ctx.ct(k.min(ctx.code.len() - 1)).start;
        let mut depth = 0i32;
        let mut body_end = ctx.src.len();
        while k < ctx.code.len() {
            match ctx.ct(k).kind {
                TokenKind::Punct(b'{') => depth += 1,
                TokenKind::Punct(b'}') => {
                    depth -= 1;
                    if depth == 0 {
                        body_end = ctx.ct(k).end;
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        kernels.push(KernelFn {
            file: ctx.path.to_string(),
            name,
            features,
            body: (body_start, body_end),
            line,
        });
        i = k + 1;
    }
    kernels
}

/// Features named by `is_x86_feature_detected!` invocations in a file.
fn detected_features(ctx: &FileCtx) -> Vec<String> {
    let mut feats = Vec::new();
    for i in 0..ctx.code.len() {
        if ctx.is_ident(i, "is_x86_feature_detected")
            && i + 1 < ctx.code.len()
            && ctx.is_punct(i + 1, b'!')
        {
            let mut j = i + 2;
            while j < ctx.code.len() && j < i + 6 {
                if ctx.ct(j).kind == TokenKind::Str {
                    feats.push(ctx.text(j).trim_matches('"').to_string());
                    break;
                }
                j += 1;
            }
        }
    }
    feats
}

/// Checks every reference to a known kernel in `ctx`: the reference
/// must sit inside another kernel enabling a superset of the callee's
/// features, or the file must runtime-detect every feature the callee
/// enables.
pub fn rule_target_feature_dispatch(
    ctx: &FileCtx,
    kernels: &[KernelFn],
    out: &mut Vec<Diagnostic>,
) {
    if kernels.is_empty() {
        return;
    }
    let detected = detected_features(ctx);
    for i in 0..ctx.code.len() {
        if ctx.ct(i).kind != TokenKind::Ident {
            continue;
        }
        let name = ctx.text(i);
        let Some(kernel) = kernels.iter().find(|k| k.name == name) else {
            continue;
        };
        // Skip the definition itself (`fn name`).
        if i > 0 && ctx.is_ident(i - 1, "fn") {
            continue;
        }
        let at = ctx.ct(i).start;
        // Same-file kernel-to-kernel call with a feature superset is a
        // compile-time-guaranteed context.
        let enclosing_ok = kernels.iter().any(|k| {
            k.file == ctx.path
                && at > k.body.0
                && at < k.body.1
                && kernel.features.iter().all(|f| k.features.contains(f))
        });
        if enclosing_ok {
            continue;
        }
        let missing: Vec<&String> = kernel
            .features
            .iter()
            .filter(|f| !detected.contains(f))
            .collect();
        if !missing.is_empty() {
            out.push(Diagnostic {
                rule: "target-feature-dispatch",
                file: ctx.path.to_string(),
                line: ctx.ct(i).line,
                message: format!(
                    "reference to `#[target_feature]` fn `{name}` in a file with no \
                     `is_x86_feature_detected!({:?})` guard",
                    missing
                ),
                hint: format!(
                    "dispatch through a runtime check: gate this call on \
                     `is_x86_feature_detected!(\"{}\")` (probed once, stored, and \
                     consulted before every call), or call it from a kernel enabling \
                     a superset of its features",
                    missing
                        .iter()
                        .map(|s| s.as_str())
                        .collect::<Vec<_>>()
                        .join("\", \"")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-panic-recovery-path
// ---------------------------------------------------------------------

/// Finds `unwrap()` / `expect(` / `panic!` in non-test code of a
/// fault-recovery file. Unlike the hot-path rule there is no allowlist
/// escape hatch: every failure a recovery path can see must flow into a
/// typed [`FabricError`]-style result.
pub fn rule_no_panic_recovery_path(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !RECOVERY_PATH_FILES.contains(&ctx.path) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.ct(i).kind != TokenKind::Ident || ctx.in_test(i) {
            continue;
        }
        let name = ctx.text(i);
        let flagged = match name {
            "unwrap" | "expect" => {
                i > 0
                    && ctx.is_punct(i - 1, b'.')
                    && i + 1 < ctx.code.len()
                    && ctx.is_punct(i + 1, b'(')
            }
            "panic" => i + 1 < ctx.code.len() && ctx.is_punct(i + 1, b'!'),
            _ => false,
        };
        if flagged {
            out.push(Diagnostic {
                rule: "no-panic-recovery-path",
                file: ctx.path.to_string(),
                line: ctx.ct(i).line,
                message: format!(
                    "`{name}` on a fault-recovery path — recovery code must never unwind"
                ),
                hint: "return the typed error (FabricError) so the retry/degradation \
                       ladder can handle it; there is no allowlist for recovery paths"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-time-rng-in-wire
// ---------------------------------------------------------------------

/// Flags wall-clock and RNG reads in wire-layout-determining code.
pub fn rule_no_time_rng_in_wire(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !WIRE_LAYOUT_FILES.contains(&ctx.path) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.ct(i).kind != TokenKind::Ident || ctx.in_test(i) {
            continue;
        }
        let name = ctx.text(i);
        let flagged = TIME_RNG_IDENTS.contains(&name)
            || (name == "rand" && i + 1 < ctx.code.len() && ctx.is_punct(i + 1, b':'));
        if flagged {
            out.push(Diagnostic {
                rule: "no-time-rng-in-wire",
                file: ctx.path.to_string(),
                line: ctx.ct(i).line,
                message: format!(
                    "`{name}` in wire-layout code — encoded bytes must be a pure \
                     function of the input block"
                ),
                hint: "move nondeterminism out of the codec/datapath; derive any \
                       needed variation from the input values or explicit config"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-eager-format-hot-path
// ---------------------------------------------------------------------

/// Flags eager string work (`format!`, `.to_string()`) and direct
/// `Instant` reads in non-test code of obs-instrumented hot-path files.
/// The observability contract is that recording an event costs a static
/// label pointer plus integers: any formatting belongs in the exporters,
/// and wall time enters the stack only through `Recorder::wall_ns` in
/// code that owns a recorder (never in codec/fabric/NIC internals).
pub fn rule_no_eager_format_hot_path(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !HOT_PATH_FILES.contains(&ctx.path) {
        return;
    }
    for i in 0..ctx.code.len() {
        if ctx.ct(i).kind != TokenKind::Ident || ctx.in_test(i) {
            continue;
        }
        let name = ctx.text(i);
        let flagged = match name {
            "format" => i + 1 < ctx.code.len() && ctx.is_punct(i + 1, b'!'),
            "to_string" => {
                i > 0
                    && ctx.is_punct(i - 1, b'.')
                    && i + 1 < ctx.code.len()
                    && ctx.is_punct(i + 1, b'(')
            }
            "Instant" => true,
            _ => false,
        };
        if flagged {
            out.push(Diagnostic {
                rule: "no-eager-format-hot-path",
                file: ctx.path.to_string(),
                line: ctx.ct(i).line,
                message: format!("eager `{name}` on an obs-instrumented hot path"),
                hint: "record a static label id plus integers into an obs::EventBuf and \
                       defer formatting to the exporters; take wall time from \
                       Recorder::wall_ns at the recorder-owning call site"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: no-transient-thread-hot-path
// ---------------------------------------------------------------------

/// Flags per-call thread creation (`thread::spawn`, `thread::scope`) in
/// non-test code of pooled hot-path files. The parallel codec's shard
/// fan-out runs on a persistent, parked worker pool precisely so the
/// steady-state exchange loop never pays thread spawn/teardown; a
/// transient scope reappearing on one of these paths silently reverts
/// that and the analyzer treats it as a perf regression, not style.
pub fn rule_no_transient_thread_hot_path(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    if !TRANSIENT_THREAD_FILES.contains(&ctx.path) {
        return;
    }
    for i in 0..ctx.code.len() {
        if !ctx.is_ident(i, "thread") || ctx.in_test(i) {
            continue;
        }
        let is_path =
            i + 3 < ctx.code.len() && ctx.is_punct(i + 1, b':') && ctx.is_punct(i + 2, b':');
        if !is_path {
            continue;
        }
        let callee = ctx.text(i + 3);
        if callee == "spawn" || callee == "scope" {
            out.push(Diagnostic {
                rule: "no-transient-thread-hot-path",
                file: ctx.path.to_string(),
                line: ctx.ct(i).line,
                message: format!(
                    "`thread::{callee}` creates transient threads on a pooled hot path"
                ),
                hint: "run shard work on the persistent pool \
                       (inceptionn_compress::pool::global().run_indexed) so steady-state \
                       exchanges never pay thread creation; one-time spawns belong in \
                       pool.rs, long-lived exchange threads in ring.rs"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Rule: shim-facade
// ---------------------------------------------------------------------

/// Flags non-test imports of vendored shims from crates outside the
/// declared facade.
pub fn rule_shim_facade(ctx: &FileCtx, out: &mut Vec<Diagnostic>) {
    let Some(crate_name) = ctx
        .path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
    else {
        return;
    };
    for i in 0..ctx.code.len() {
        if ctx.ct(i).kind != TokenKind::Ident || ctx.in_test(i) {
            continue;
        }
        let name = ctx.text(i);
        let Some((_, allowed)) = SHIM_FACADE.iter().find(|(shim, _)| *shim == name) else {
            continue;
        };
        // Only path uses (`rand::…`), which covers `use rand::…` too.
        let is_path_use = i + 1 < ctx.code.len()
            && ctx.is_punct(i + 1, b':')
            && i + 2 < ctx.code.len()
            && ctx.is_punct(i + 2, b':');
        // Not a path segment of something else (`foo::rand::` is not a
        // shim root).
        let rooted = i < 2 || !ctx.is_punct(i - 1, b':');
        if is_path_use && rooted && !allowed.contains(&crate_name) {
            out.push(Diagnostic {
                rule: "shim-facade",
                file: ctx.path.to_string(),
                line: ctx.ct(i).line,
                message: format!(
                    "crate `{crate_name}` imports vendored shim `{name}` outside the \
                     declared facade"
                ),
                hint: format!(
                    "route through an existing facade crate, or extend SHIM_FACADE in \
                     crates/analyzer/src/rules.rs with (`{name}`, `{crate_name}`) and \
                     justify it in DESIGN.md"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------
// Allowlist ratchet
// ---------------------------------------------------------------------

/// One allowlist entry: a (rule, file) budget that may only shrink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the budget applies to.
    pub rule: String,
    /// Repo-relative file.
    pub file: String,
    /// Number of grandfathered sites.
    pub max: usize,
    /// Why the sites are acceptable.
    pub justification: String,
}

/// Parses the allowlist format: `rule<ws>file<ws>count<ws>justification`
/// per line, `#` comments and blank lines ignored.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, char::is_whitespace);
        let (rule, file, count, justification) = (
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default(),
            parts.next().unwrap_or_default().trim(),
        );
        let max: usize = count
            .parse()
            .map_err(|_| format!("allowlist line {}: bad count `{count}`", lineno + 1))?;
        if justification.is_empty() {
            return Err(format!(
                "allowlist line {}: every entry needs a justification",
                lineno + 1
            ));
        }
        entries.push(AllowEntry {
            rule: rule.to_string(),
            file: file.to_string(),
            max,
            justification: justification.to_string(),
        });
    }
    Ok(entries)
}

/// Applies the shrink-only allowlist to raw diagnostics: a (rule, file)
/// budget silences exactly `max` findings. More findings than budget →
/// all of them surface. Fewer → a ratchet diagnostic demands the entry
/// shrink. A budget with zero findings → a stale-entry diagnostic.
pub fn apply_allowlist(raw: Vec<Diagnostic>, allow: &[AllowEntry]) -> Vec<Diagnostic> {
    let mut counts: BTreeMap<(String, String), Vec<Diagnostic>> = BTreeMap::new();
    let mut passthrough = Vec::new();
    for d in raw {
        if allow.iter().any(|a| a.rule == d.rule && a.file == d.file) {
            counts
                .entry((d.rule.to_string(), d.file.clone()))
                .or_default()
                .push(d);
        } else {
            passthrough.push(d);
        }
    }
    let mut out = passthrough;
    for a in allow {
        let found = counts
            .remove(&(a.rule.clone(), a.file.clone()))
            .unwrap_or_default();
        match found.len().cmp(&a.max) {
            std::cmp::Ordering::Greater => {
                out.extend(found.into_iter().map(|mut d| {
                    d.message = format!(
                        "{} (allowlist budget {} exceeded — the list may shrink, never grow)",
                        d.message, a.max
                    );
                    d
                }));
            }
            std::cmp::Ordering::Less if !found.is_empty() || a.max > 0 => {
                out.push(Diagnostic {
                    rule: "allowlist-ratchet",
                    file: a.file.clone(),
                    line: 0,
                    message: format!(
                        "allowlist budget for `{}` is {} but only {} sites remain",
                        a.rule,
                        a.max,
                        found.len()
                    ),
                    hint: format!(
                        "shrink the entry in crates/analyzer/allowlist.txt to {} \
                         (the ratchet only tightens)",
                        found.len()
                    ),
                });
            }
            _ => {}
        }
    }
    out
}

// ---------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------

/// Lints one in-memory file against every rule (kernel and call-graph
/// cross-file info restricted to this file). Unit-test entry point.
pub fn lint_source(path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(path, src);
    let kernels = collect_kernels(&ctx);
    let mut out = Vec::new();
    rule_safety_comment(&ctx, &mut out);
    rule_target_feature_dispatch(&ctx, &kernels, &mut out);
    rule_no_panic_recovery_path(&ctx, &mut out);
    rule_no_time_rng_in_wire(&ctx, &mut out);
    rule_no_eager_format_hot_path(&ctx, &mut out);
    rule_no_transient_thread_hot_path(&ctx, &mut out);
    rule_shim_facade(&ctx, &mut out);
    let graph = crate::callgraph::CallGraph::build(std::slice::from_ref(&ctx));
    crate::callgraph::rule_hot_reachability(&graph, &mut out);
    out
}

/// Recursively lists `.rs` files under `crates/*/src` of `repo_root`,
/// repo-relative with unix separators, sorted for deterministic output.
pub fn workspace_rust_files(repo_root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = repo_root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let src_dir = entry?.path().join("src");
        if src_dir.is_dir() {
            collect_rs(&src_dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads every workspace `.rs` file into `(repo-relative path, text)`
/// pairs, sorted. Shared by [`lint_tree`] and the `--callgraph` mode.
pub fn load_workspace_sources(repo_root: &Path) -> Result<Vec<(String, String)>, String> {
    let files = workspace_rust_files(repo_root).map_err(|e| format!("walking tree: {e}"))?;
    let mut sources = Vec::with_capacity(files.len());
    for f in &files {
        let rel = f
            .strip_prefix(repo_root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(f).map_err(|e| format!("reading {rel}: {e}"))?;
        sources.push((rel, text));
    }
    Ok(sources)
}

/// Lints the whole workspace tree rooted at `repo_root`, applying the
/// allowlist at `crates/analyzer/allowlist.txt` (missing file = empty
/// list). Returns surviving diagnostics, deterministically ordered.
pub fn lint_tree(repo_root: &Path) -> Result<Vec<Diagnostic>, String> {
    let sources = load_workspace_sources(repo_root)?;
    let ctxs: Vec<FileCtx> = sources
        .iter()
        .map(|(rel, text)| FileCtx::new(rel, text))
        .collect();
    // Kernel index is global: calls in one file may target another's
    // kernels (module-qualified), so dispatch checking sees them all.
    let kernels: Vec<KernelFn> = ctxs.iter().flat_map(collect_kernels).collect();
    let mut raw = Vec::new();
    for ctx in &ctxs {
        rule_safety_comment(ctx, &mut raw);
        rule_target_feature_dispatch(ctx, &kernels, &mut raw);
        rule_no_panic_recovery_path(ctx, &mut raw);
        rule_no_time_rng_in_wire(ctx, &mut raw);
        rule_no_eager_format_hot_path(ctx, &mut raw);
        rule_no_transient_thread_hot_path(ctx, &mut raw);
        rule_shim_facade(ctx, &mut raw);
    }
    // The interprocedural pass needs the whole tree at once: hot roots
    // in one crate taint callees in another.
    let graph = crate::callgraph::CallGraph::build(&ctxs);
    crate::callgraph::rule_hot_reachability(&graph, &mut raw);
    let allow_path = repo_root.join("crates/analyzer/allowlist.txt");
    let allow = if allow_path.exists() {
        let text =
            std::fs::read_to_string(&allow_path).map_err(|e| format!("reading allowlist: {e}"))?;
        parse_allowlist(&text)?
    } else {
        Vec::new()
    };
    let mut out = apply_allowlist(raw, &allow);
    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The rules each diagnostic fired, in order.
    fn fired(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    // -- safety-comment ------------------------------------------------

    #[test]
    fn bare_unsafe_block_is_flagged_with_line() {
        let src = "fn f() {\n    unsafe { g(); }\n}\n";
        let diags = lint_source("crates/demo/src/lib.rs", src);
        assert_eq!(fired(&diags), ["safety-comment"]);
        assert_eq!(diags[0].line, 2);
        assert!(diags[0].message.contains("unsafe block"));
    }

    #[test]
    fn safety_comment_above_or_trailing_satisfies_the_rule() {
        let above = "fn f() {\n    // SAFETY: g has no preconditions\n    unsafe { g(); }\n}\n";
        let trailing = "fn f() {\n    unsafe { /* SAFETY: fine */ g(); }\n}\n";
        assert!(lint_source("crates/demo/src/lib.rs", above).is_empty());
        assert!(lint_source("crates/demo/src/lib.rs", trailing).is_empty());
    }

    #[test]
    fn attributes_and_docs_may_sit_between_comment_and_site() {
        let src = "// SAFETY: caller checked the CPU\n/// Docs.\n#[inline]\npub unsafe fn k() {}\n";
        assert!(lint_source("crates/demo/src/lib.rs", src).is_empty());
        let blank_breaks = "// SAFETY: stale\n\npub unsafe fn k() {}\n";
        assert_eq!(
            fired(&lint_source("crates/demo/src/lib.rs", blank_breaks)),
            ["safety-comment"]
        );
    }

    #[test]
    fn safety_inside_string_literal_does_not_count() {
        let src = "fn f() {\n    let _s = \"// SAFETY: lies\";\n    unsafe { g(); }\n}\n";
        assert_eq!(
            fired(&lint_source("crates/demo/src/lib.rs", src)),
            ["safety-comment"]
        );
    }

    // -- target-feature-dispatch ---------------------------------------

    const KERNEL: &str = "// SAFETY: caller detects avx2\n\
                          #[target_feature(enable = \"avx2\")]\n\
                          unsafe fn k8(x: &[f32; 8]) {}\n";

    #[test]
    fn unguarded_kernel_reference_is_flagged() {
        let src = format!(
            "{KERNEL}fn call(x: &[f32; 8]) {{\n    // SAFETY: wrong — nothing was detected\n    unsafe {{ k8(x) }}\n}}\n"
        );
        let diags = lint_source("crates/demo/src/lib.rs", &src);
        assert_eq!(fired(&diags), ["target-feature-dispatch"]);
        assert!(diags[0].message.contains("k8"));
    }

    #[test]
    fn runtime_detection_guard_satisfies_dispatch() {
        let src = format!(
            "{KERNEL}fn call(x: &[f32; 8]) {{\n    if is_x86_feature_detected!(\"avx2\") {{\n        // SAFETY: detected above\n        unsafe {{ k8(x) }}\n    }}\n}}\n"
        );
        assert!(lint_source("crates/demo/src/lib.rs", &src).is_empty());
    }

    #[test]
    fn kernel_to_kernel_call_with_feature_superset_passes() {
        let src = "// SAFETY: caller detects avx2\n\
                   #[target_feature(enable = \"avx2\")]\n\
                   unsafe fn inner() {}\n\
                   // SAFETY: caller detects avx2+fma\n\
                   #[target_feature(enable = \"avx2,fma\")]\n\
                   unsafe fn outer() {\n    // SAFETY: outer enables a superset\n    unsafe { inner() }\n}\n";
        let subset_ok = lint_source("crates/demo/src/lib.rs", src);
        assert!(subset_ok.is_empty(), "{subset_ok:?}");
        // The reverse direction (narrow kernel calling a wider one) fails.
        let src = src.replace("avx2,fma", "sse2");
        assert_eq!(
            fired(&lint_source("crates/demo/src/lib.rs", &src)),
            ["target-feature-dispatch"]
        );
    }

    // -- no-panic-hot-path / no-alloc-hot-path (interprocedural) -------

    #[test]
    fn unwrap_in_a_hot_root_is_flagged_in_any_file() {
        // Hotness follows the call graph, not the file list: a root-named
        // fn is hot wherever it lives…
        let src = "pub fn decode_into(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            fired(&lint_source("crates/compress/src/frame.rs", src)),
            ["no-panic-hot-path"]
        );
        // …and the same body under a non-root name is unreachable, so clean.
        let src = "pub fn helper(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_source("crates/compress/src/frame.rs", src).is_empty());
    }

    #[test]
    fn panic_via_helper_reports_the_full_call_chain() {
        let src = "pub fn transfer_plain(n: usize) { stage(n) }\n\
                   fn stage(n: usize) { finish(n) }\n\
                   fn finish(n: usize) { if n == 0 { panic!(\"empty\"); } }\n";
        let diags = lint_source("crates/demo/src/lib.rs", src);
        assert_eq!(fired(&diags), ["no-panic-hot-path"]);
        assert!(
            diags[0]
                .message
                .contains("transfer_plain -> stage -> finish"),
            "chain missing from: {}",
            diags[0].message
        );
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn panics_in_test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn decode_into(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(lint_source("crates/compress/src/bitio.rs", src).is_empty());
    }

    #[test]
    fn expect_and_panic_macro_are_flagged() {
        let src = "pub fn encode_into(x: Option<u8>) -> u8 {\n    if x.is_none() { panic!(\"no\"); }\n    x.expect(\"checked\")\n}\n";
        assert_eq!(
            fired(&lint_source("crates/compress/src/bitio.rs", src)),
            ["no-panic-hot-path", "no-panic-hot-path"]
        );
    }

    #[test]
    fn expects_a_field_named_unwrap_is_not_flagged() {
        // Only `.unwrap(` call syntax counts, not arbitrary identifiers.
        let src = "pub fn transfer(unwrap: u8) -> u8 { unwrap }\n";
        assert!(lint_source("crates/compress/src/bitio.rs", src).is_empty());
    }

    #[test]
    fn allocation_reachable_from_a_hot_root_is_flagged_with_chain() {
        let src = "pub fn pipelined_ring_allreduce_over(n: usize) { stage(n) }\n\
                   fn stage(n: usize) { let _ = format!(\"{n}\"); }\n";
        let diags = lint_source("crates/demo/src/lib.rs", src);
        assert_eq!(fired(&diags), ["no-alloc-hot-path"]);
        assert!(
            diags[0]
                .message
                .contains("pipelined_ring_allreduce_over -> stage"),
            "chain missing from: {}",
            diags[0].message
        );
    }

    #[test]
    fn sized_preallocation_is_not_an_alloc_sink() {
        // `Vec::with_capacity`/`vec![]` are the sanctioned setup pattern.
        let src = "pub fn decode_into(n: usize) -> Vec<u8> { Vec::with_capacity(n) }\n";
        assert!(lint_source("crates/compress/src/bitio.rs", src).is_empty());
    }

    #[test]
    fn membership_transition_roots_are_hot() {
        // The membership-event applier runs at the top of every training
        // iteration; a panic seeded into it must fire the hot-path rule.
        let src = "pub fn apply_membership_event(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            fired(&lint_source("crates/distrib/src/trainer.rs", src)),
            ["no-panic-hot-path"]
        );
        // The per-delivery liveness probe is a hot root too.
        let src = "pub fn down_at(n: u64) -> u64 { n.checked_mul(2).expect(\"ovf\") }\n";
        assert_eq!(
            fired(&lint_source("crates/distrib/src/membership.rs", src)),
            ["no-panic-hot-path"]
        );
    }

    #[test]
    fn snapshot_transfer_path_may_not_allocate() {
        // `transfer_snapshot` is tainted by the `transfer_` prefix rule,
        // so an allocation seeded downstream of it fires with its chain.
        let src = "pub fn transfer_snapshot(n: usize) { frame(n) }\n\
                   fn frame(n: usize) { let _ = format!(\"{n}\"); }\n";
        let diags = lint_source("crates/distrib/src/trainer.rs", src);
        assert_eq!(fired(&diags), ["no-alloc-hot-path"]);
        assert!(
            diags[0].message.contains("transfer_snapshot -> frame"),
            "chain missing from: {}",
            diags[0].message
        );
    }

    // -- no-panic-recovery-path ----------------------------------------

    #[test]
    fn panics_in_recovery_files_are_flagged_without_allowlist() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(
            fired(&lint_source("crates/distrib/src/faults.rs", src)),
            ["no-panic-recovery-path"]
        );
        // Same code outside the recovery set only trips the hot-path rule
        // (or nothing at all).
        assert!(lint_source("crates/distrib/src/trainer.rs", src).is_empty());
    }

    #[test]
    fn recovery_rule_exempts_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f(x: Option<u8>) -> u8 { x.unwrap() }\n}\n";
        assert!(lint_source("crates/distrib/src/faults.rs", src).is_empty());
    }

    // -- no-time-rng-in-wire -------------------------------------------

    #[test]
    fn clocks_and_rng_are_flagged_in_wire_layout_files() {
        let src = "fn f() -> u64 {\n    let t = std::time::Instant::now();\n    0\n}\n";
        // packet.rs is both a wire-layout and a hot-path file, so an
        // `Instant` read trips the eager-format rule too.
        let mut rules = fired(&lint_source("crates/nicsim/src/packet.rs", src));
        rules.sort();
        assert_eq!(rules, ["no-eager-format-hot-path", "no-time-rng-in-wire"]);
        let src = "fn f() -> u64 { rand::random() }\n";
        assert_eq!(
            fired(&lint_source("crates/compress/src/inceptionn.rs", src)),
            ["no-time-rng-in-wire"]
        );
        // Same code in a non-wire file is fine.
        let src = "fn f() -> u64 {\n    let t = std::time::Instant::now();\n    0\n}\n";
        assert!(lint_source("crates/netsim/src/sim.rs", src).is_empty());
    }

    // -- no-eager-format-hot-path --------------------------------------

    #[test]
    fn eager_formatting_is_flagged_only_on_hot_path_files() {
        let src = "fn f(x: u8) -> String { format!(\"{x}\") }\n";
        assert_eq!(
            fired(&lint_source("crates/distrib/src/fabric.rs", src)),
            ["no-eager-format-hot-path"]
        );
        assert!(lint_source("crates/distrib/src/trainer.rs", src).is_empty());
        let src = "fn f(x: u8) -> String { x.to_string() }\n";
        assert_eq!(
            fired(&lint_source("crates/nicsim/src/engine.rs", src)),
            ["no-eager-format-hot-path"]
        );
    }

    #[test]
    fn instant_fires_on_hot_paths_even_outside_wire_layout_files() {
        // fabric.rs is a hot path but not a wire-layout file: only the
        // new rule covers it.
        let src = "fn f() { let _t = std::time::Instant::now(); }\n";
        assert_eq!(
            fired(&lint_source("crates/distrib/src/fabric.rs", src)),
            ["no-eager-format-hot-path"]
        );
        // bitio.rs is in both lists: both clock rules fire.
        let mut rules = fired(&lint_source("crates/compress/src/bitio.rs", src));
        rules.sort();
        assert_eq!(rules, ["no-eager-format-hot-path", "no-time-rng-in-wire"]);
    }

    #[test]
    fn formatting_in_test_modules_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = format!(\"{}\", 1.to_string()); }\n}\n";
        assert!(lint_source("crates/distrib/src/fabric.rs", src).is_empty());
    }

    #[test]
    fn ident_named_format_without_bang_is_not_flagged() {
        let src = "fn f(format: u8) -> u8 { format }\n";
        assert!(lint_source("crates/distrib/src/fabric.rs", src).is_empty());
    }

    // -- no-transient-thread-hot-path ----------------------------------

    #[test]
    fn transient_thread_creation_is_flagged_on_pooled_hot_paths() {
        let src = "fn f() { std::thread::scope(|s| { let _ = s; }); }\n";
        let diags = lint_source("crates/compress/src/parallel.rs", src);
        assert_eq!(fired(&diags), ["no-transient-thread-hot-path"]);
        assert!(diags[0].message.contains("thread::scope"));
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            fired(&lint_source("crates/distrib/src/pipeline.rs", src)),
            ["no-transient-thread-hot-path"]
        );
    }

    #[test]
    fn pool_and_threaded_ring_spawns_are_out_of_scope() {
        // pool.rs spawns once per process to build the persistent pool;
        // ring.rs's threaded exchange keeps one thread per worker alive
        // for the whole schedule. Neither is a per-call fan-out.
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        assert!(lint_source("crates/compress/src/pool.rs", src).is_empty());
        assert!(lint_source("crates/distrib/src/ring.rs", src).is_empty());
    }

    #[test]
    fn transient_thread_rule_exempts_tests_and_plain_idents() {
        let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::scope(|s| { let _ = s; }); }\n}\n";
        assert!(lint_source("crates/compress/src/parallel.rs", test_src).is_empty());
        // `thread` as an ordinary identifier (no `::spawn`/`::scope`
        // path) and other thread:: items stay legal.
        let src = "fn f(thread: u8) -> u8 { thread }\n";
        assert!(lint_source("crates/compress/src/parallel.rs", src).is_empty());
        let src = "fn f() { std::thread::yield_now(); }\n";
        assert!(lint_source("crates/compress/src/parallel.rs", src).is_empty());
    }

    // -- shim-facade ---------------------------------------------------

    #[test]
    fn shim_import_outside_facade_is_flagged() {
        let src = "use rand::Rng;\n";
        assert_eq!(
            fired(&lint_source("crates/distrib/src/ring.rs", src)),
            ["shim-facade"]
        );
        assert!(lint_source("crates/tensor/src/lib.rs", src).is_empty());
    }

    #[test]
    fn shim_use_in_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use rand::Rng;\n}\n";
        assert!(lint_source("crates/distrib/src/ring.rs", src).is_empty());
    }

    // -- allowlist ratchet ---------------------------------------------

    fn diag(rule: &'static str, file: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line: 1,
            message: "m".to_string(),
            hint: "h".to_string(),
        }
    }

    #[test]
    fn allowlist_parses_and_rejects_bad_lines() {
        let good = "# comment\nno-panic-hot-path crates/a/src/b.rs 2 join only re-raises\n";
        let entries = parse_allowlist(good).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].max, 2);
        assert_eq!(entries[0].justification, "join only re-raises");
        assert!(parse_allowlist("rule file nope justification").is_err());
        assert!(
            parse_allowlist("rule file 3").is_err(),
            "missing justification"
        );
    }

    #[test]
    fn budget_exactly_met_silences_findings() {
        let allow = parse_allowlist("r crates/a.rs 2 fine").unwrap();
        let raw = vec![diag("r", "crates/a.rs"), diag("r", "crates/a.rs")];
        assert!(apply_allowlist(raw, &allow).is_empty());
    }

    #[test]
    fn budget_exceeded_surfaces_every_finding() {
        let allow = parse_allowlist("r crates/a.rs 1 fine").unwrap();
        let raw = vec![diag("r", "crates/a.rs"), diag("r", "crates/a.rs")];
        let out = apply_allowlist(raw, &allow);
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("budget 1 exceeded"));
    }

    #[test]
    fn stale_budget_demands_shrinking() {
        let allow = parse_allowlist("r crates/a.rs 3 fine").unwrap();
        let raw = vec![diag("r", "crates/a.rs")];
        let out = apply_allowlist(raw, &allow);
        assert_eq!(fired(&out), ["allowlist-ratchet"]);
        assert!(out[0].hint.contains("shrink the entry"));
        // Unrelated findings pass straight through.
        let out = apply_allowlist(vec![diag("other", "crates/b.rs")], &allow);
        assert_eq!(out.len(), 2, "passthrough + stale ratchet");
    }
}
