//! A miniature deterministic concurrency model-checker (a "mini-loom").
//!
//! Real OS threads run the model, but a lockstep scheduler lets exactly
//! one *virtual* thread make progress at a time: every instrumented
//! operation ([`SimMutex::lock`], [`SimSender::send`], [`SimReceiver::recv`],
//! [`RaceCell`] reads/writes, [`Sim::spawn`], [`JoinHandle::join`]) is a
//! scheduling point where the checker picks which thread runs next. A
//! depth-first search over those decisions — bounded by a preemption
//! budget, loom/CHESS-style — re-executes the model once per distinct
//! schedule, so a model that is deterministic *given* a schedule is
//! explored exhaustively within the bound.
//!
//! The checker reports:
//! - **deadlock**: every live thread is blocked;
//! - **model panic**: an assertion inside the model failed on some
//!   schedule (this is how the racy fixture is caught);
//! - **nondeterministic output**: the model's result bytes differ
//!   between two schedules — the INCEPTIONN exactness claim is exactly
//!   "this never happens" for the codec and the ring.
//!
//! Bounds: `max_preemptions` caps forced context switches per schedule
//! (unforced switches — the running thread blocked or finished — are
//! free), `max_schedules` and `max_steps` are safety valves that turn
//! runaway exploration into an explicit [`Violation`] instead of a hang.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

thread_local! {
    /// Virtual-thread id of the current OS thread, set by the spawn
    /// wrapper before the model closure runs.
    static CURRENT_VTHREAD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Panic payload used to unwind parked threads after a violation; the
/// spawn wrapper recognizes and swallows it.
struct SimAbort;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(usize),
    Finished,
}

/// One scheduling decision: which candidates were runnable, which ran.
#[derive(Debug, Clone)]
struct Decision {
    chosen: usize,
    candidates: Vec<usize>,
}

/// A property violation found on some schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// All live threads blocked; the trace is the schedule that got there.
    Deadlock {
        /// Virtual-thread ids stuck at a blocking operation.
        blocked: Vec<usize>,
        /// The schedule (sequence of chosen thread ids) reproducing it.
        trace: Vec<usize>,
    },
    /// The model panicked (assertion failure, index error, …).
    ModelPanic {
        /// The panic payload, stringified.
        message: String,
        /// The schedule reproducing it.
        trace: Vec<usize>,
    },
    /// Two schedules produced different result bytes.
    NondeterministicOutput {
        /// Output of the first schedule explored.
        first: Vec<u8>,
        /// The differing output.
        differing: Vec<u8>,
        /// The schedule that produced `differing`.
        trace: Vec<usize>,
    },
    /// A single run exceeded `max_steps` scheduling points.
    StepLimit {
        /// The configured step bound.
        steps: usize,
    },
    /// Exploration exceeded `max_schedules` before exhausting the bound.
    ScheduleLimit {
        /// The configured schedule bound.
        schedules: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Deadlock { blocked, trace } => write!(
                f,
                "deadlock: threads {blocked:?} all blocked (schedule {trace:?})"
            ),
            Violation::ModelPanic { message, trace } => {
                write!(f, "model panicked: {message} (schedule {trace:?})")
            }
            Violation::NondeterministicOutput { trace, .. } => write!(
                f,
                "nondeterministic output: result bytes differ on schedule {trace:?}"
            ),
            Violation::StepLimit { steps } => {
                write!(f, "run exceeded {steps} scheduling points")
            }
            Violation::ScheduleLimit { schedules } => {
                write!(f, "exploration exceeded {schedules} schedules")
            }
        }
    }
}

/// Successful exploration summary.
#[derive(Debug, Clone)]
pub struct Report {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Scheduling points across all runs.
    pub total_steps: usize,
    /// The (schedule-independent) model output.
    pub output: Vec<u8>,
}

struct Inner {
    status: Vec<Status>,
    active: usize,
    /// Prescribed choices for this run (the DFS prefix).
    schedule: Vec<usize>,
    decisions: Vec<Decision>,
    preemptions: usize,
    max_preemptions: usize,
    steps: usize,
    max_steps: usize,
    violation: Option<Violation>,
    poisoned: bool,
    finished: usize,
    total: usize,
    next_resource: usize,
    output: Option<Vec<u8>>,
}

impl Inner {
    fn trace(&self) -> Vec<usize> {
        self.decisions.iter().map(|d| d.chosen).collect()
    }

    fn runnable(&self) -> Vec<usize> {
        (0..self.status.len())
            .filter(|&t| self.status[t] == Status::Runnable)
            .collect()
    }
}

/// The per-run simulation world. Models receive an `Arc<Sim>` and build
/// their primitives from it.
pub struct Sim {
    inner: Mutex<Inner>,
    cv: Condvar,
    os_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim").finish_non_exhaustive()
    }
}

impl Sim {
    fn new(schedule: Vec<usize>, max_preemptions: usize, max_steps: usize) -> Arc<Self> {
        Arc::new(Sim {
            inner: Mutex::new(Inner {
                status: Vec::new(),
                active: 0,
                schedule,
                decisions: Vec::new(),
                preemptions: 0,
                max_preemptions,
                steps: 0,
                max_steps,
                violation: None,
                poisoned: false,
                finished: 0,
                total: 0,
                next_resource: 0,
                output: None,
            }),
            cv: Condvar::new(),
            os_handles: Mutex::new(Vec::new()),
        })
    }

    fn me(&self) -> usize {
        CURRENT_VTHREAD.with(|c| c.get())
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn fresh_resource(&self) -> usize {
        let mut inner = self.lock_inner();
        inner.next_resource += 1;
        inner.next_resource
    }

    /// Picks the next thread to run. `me_runnable` says whether the
    /// calling thread may continue. Returns without waiting; the caller
    /// then waits for its turn (or aborts).
    fn choose(&self, inner: &mut Inner, me: usize, me_runnable: bool) {
        if inner.poisoned {
            // Unwind mode: hand the token to any runnable thread so the
            // teardown drains; no decisions are recorded.
            if let Some(&next) = inner.runnable().first() {
                inner.active = next;
                self.cv.notify_all();
            }
            return;
        }
        inner.steps += 1;
        if inner.steps > inner.max_steps {
            self.poison(
                inner,
                Violation::StepLimit {
                    steps: inner.max_steps,
                },
            );
            return;
        }
        let runnable = inner.runnable();
        if runnable.is_empty() {
            let blocked: Vec<usize> = (0..inner.status.len())
                .filter(|&t| matches!(inner.status[t], Status::Blocked(_)))
                .collect();
            if blocked.is_empty() {
                // Everyone finished; controller is woken by finish().
                return;
            }
            let trace = inner.trace();
            self.poison(inner, Violation::Deadlock { blocked, trace });
            return;
        }
        // Candidate order: current thread first (run-to-completion is
        // the DFS trunk), then the rest ascending. Once the preemption
        // budget is spent, a runnable current thread is the only choice.
        // Forced switches (the current thread blocked or finished) are
        // deterministic — CHESS-style, only *preemptions* branch the
        // DFS; this is what keeps exploration polynomial in the number
        // of scheduling points instead of exponential.
        let mut candidates = Vec::with_capacity(runnable.len());
        if me_runnable && runnable.contains(&me) {
            if inner.preemptions >= inner.max_preemptions {
                candidates.push(me);
            } else {
                candidates.push(me);
                candidates.extend(runnable.iter().copied().filter(|&t| t != me));
            }
        } else {
            candidates.push(runnable[0]);
        }
        let step_idx = inner.decisions.len();
        let chosen = match inner.schedule.get(step_idx) {
            Some(&prescribed) if candidates.contains(&prescribed) => prescribed,
            Some(_) => {
                // A replay divergence means the model is nondeterministic
                // at the structural level (different ops per schedule) —
                // surface it rather than exploring garbage.
                let trace = inner.trace();
                self.poison(
                    inner,
                    Violation::ModelPanic {
                        message: "schedule replay diverged: model structure is \
                                  schedule-dependent"
                            .to_string(),
                        trace,
                    },
                );
                return;
            }
            None => candidates[0],
        };
        if me_runnable && chosen != me {
            inner.preemptions += 1;
        }
        inner.decisions.push(Decision { chosen, candidates });
        inner.active = chosen;
        self.cv.notify_all();
    }

    fn poison(&self, inner: &mut Inner, v: Violation) {
        if inner.violation.is_none() {
            inner.violation = Some(v);
        }
        inner.poisoned = true;
        // Wake everything; parked threads see `poisoned` and unwind.
        for s in inner.status.iter_mut() {
            if matches!(s, Status::Blocked(_)) {
                *s = Status::Runnable;
            }
        }
        if let Some(&next) = inner.runnable().first() {
            inner.active = next;
        }
        self.cv.notify_all();
    }

    /// Parks the calling thread until it is scheduled again. Panics with
    /// [`SimAbort`] when the run has been poisoned.
    fn wait_for_turn(&self, me: usize) {
        let mut inner = self.lock_inner();
        loop {
            if inner.poisoned && inner.status[me] != Status::Finished {
                inner.status[me] = Status::Runnable;
                drop(inner);
                panic::panic_any(SimAbort);
            }
            if inner.active == me && inner.status[me] == Status::Runnable {
                return;
            }
            inner = match self.cv.wait(inner) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }

    /// A plain scheduling point: the current thread offers to yield.
    fn schedule_point(&self) {
        let me = self.me();
        {
            let mut inner = self.lock_inner();
            self.choose(&mut inner, me, true);
        }
        self.wait_for_turn(me);
    }

    /// Blocks the calling thread on `resource` and schedules another
    /// thread; returns when rescheduled (the caller re-checks its
    /// condition and may block again).
    fn block_on(&self, resource: usize) {
        let me = self.me();
        {
            let mut inner = self.lock_inner();
            inner.status[me] = Status::Blocked(resource);
            self.choose(&mut inner, me, false);
        }
        self.wait_for_turn(me);
    }

    /// Marks every thread blocked on `resource` runnable.
    fn wake(&self, resource: usize) {
        let mut inner = self.lock_inner();
        for s in inner.status.iter_mut() {
            if *s == Status::Blocked(resource) {
                *s = Status::Runnable;
            }
        }
    }

    /// Spawns a new virtual thread running `f`. A scheduling point.
    pub fn spawn<F>(self: &Arc<Self>, f: F) -> JoinHandle
    where
        F: FnOnce() + Send + 'static,
    {
        let tid = {
            let mut inner = self.lock_inner();
            inner.status.push(Status::Runnable);
            inner.total += 1;
            inner.status.len() - 1
        };
        let sim = Arc::clone(self);
        let os = std::thread::spawn(move || {
            CURRENT_VTHREAD.with(|c| c.set(tid));
            sim.wait_for_turn(tid);
            let result = panic::catch_unwind(AssertUnwindSafe(f));
            sim.finish(tid, result.err());
        });
        self.os_handles.lock().map(|mut v| v.push(os)).ok();
        if self.me() != usize::MAX {
            self.schedule_point();
        }
        JoinHandle {
            sim: Arc::clone(self),
            tid,
        }
    }

    /// Thread epilogue: record panics, mark finished, hand off the token.
    fn finish(&self, me: usize, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut inner = self.lock_inner();
        if let Some(payload) = panic_payload {
            if payload.downcast_ref::<SimAbort>().is_none() {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                let trace = inner.trace();
                self.poison(&mut inner, Violation::ModelPanic { message, trace });
            }
        }
        inner.status[me] = Status::Finished;
        inner.finished += 1;
        drop(inner);
        self.wake(JOIN_RESOURCE_BASE + me);
        let mut inner = self.lock_inner();
        if inner.finished == inner.total {
            self.cv.notify_all(); // controller watches finished == total
        } else {
            self.choose(&mut inner, me, false);
        }
    }
}

/// Resource ids `JOIN_RESOURCE_BASE + tid` mean "waiting for thread tid
/// to finish"; ordinary primitives allocate ids below this.
const JOIN_RESOURCE_BASE: usize = 1 << 32;

/// Handle to a spawned virtual thread.
#[derive(Debug)]
pub struct JoinHandle {
    sim: Arc<Sim>,
    tid: usize,
}

impl JoinHandle {
    /// Waits for the thread to finish. A scheduling point.
    pub fn join(self) {
        self.sim.schedule_point();
        loop {
            {
                let inner = self.sim.lock_inner();
                if inner.status[self.tid] == Status::Finished {
                    return;
                }
            }
            self.sim.block_on(JOIN_RESOURCE_BASE + self.tid);
        }
    }
}

// ---------------------------------------------------------------------
// SimMutex
// ---------------------------------------------------------------------

struct MutexCtl {
    owner: Option<usize>,
}

/// A model-level mutex: acquisition is a scheduling point, ownership is
/// tracked by the checker (so contention blocks the *virtual* thread),
/// and the data itself lives in an uncontended std mutex.
pub struct SimMutex<T> {
    sim: Arc<Sim>,
    resource: usize,
    ctl: Mutex<MutexCtl>,
    data: Mutex<T>,
}

impl<T: fmt::Debug> fmt::Debug for SimMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimMutex")
            .field("resource", &self.resource)
            .finish_non_exhaustive()
    }
}

impl<T> SimMutex<T> {
    /// Creates a mutex owned by the given simulation.
    pub fn new(sim: &Arc<Sim>, value: T) -> Self {
        SimMutex {
            sim: Arc::clone(sim),
            resource: sim.fresh_resource(),
            ctl: Mutex::new(MutexCtl { owner: None }),
            data: Mutex::new(value),
        }
    }

    /// Locks, exploring schedules around the acquisition.
    pub fn lock(&self) -> SimMutexGuard<'_, T> {
        let me = self.sim.me();
        self.sim.schedule_point();
        loop {
            {
                let mut ctl = match self.ctl.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if ctl.owner.is_none() {
                    ctl.owner = Some(me);
                    break;
                }
            }
            self.sim.block_on(self.resource);
        }
        let data = match self.data.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        SimMutexGuard {
            mutex: self,
            data: Some(data),
        }
    }
}

/// RAII guard; releasing wakes blocked contenders.
pub struct SimMutexGuard<'a, T> {
    mutex: &'a SimMutex<T>,
    data: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: fmt::Debug> fmt::Debug for SimMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimMutexGuard").finish_non_exhaustive()
    }
}

impl<T> std::ops::Deref for SimMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data.as_ref().expect("guard data present until drop")
    }
}

impl<T> std::ops::DerefMut for SimMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data.as_mut().expect("guard data present until drop")
    }
}

impl<T> Drop for SimMutexGuard<'_, T> {
    fn drop(&mut self) {
        self.data.take();
        if let Ok(mut ctl) = self.mutex.ctl.lock() {
            ctl.owner = None;
        }
        self.mutex.sim.wake(self.mutex.resource);
    }
}

// ---------------------------------------------------------------------
// SimCondvar
// ---------------------------------------------------------------------

/// A model-level condition variable paired with [`SimMutex`], modeling
/// `std::sync::Condvar`'s atomic release-and-wait: [`SimCondvar::wait`]
/// releases the guard and parks in one step with no scheduling point in
/// between, so a notification can never land between the release and
/// the park. [`SimCondvar::wait_racy`] deliberately opens that window —
/// it exists so the checker's lost-wakeup detection stays honest (see
/// `models::pool_lost_wakeup_fixture`).
pub struct SimCondvar {
    sim: Arc<Sim>,
    resource: usize,
}

impl fmt::Debug for SimCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimCondvar")
            .field("resource", &self.resource)
            .finish_non_exhaustive()
    }
}

impl SimCondvar {
    /// Creates a condvar owned by the given simulation.
    pub fn new(sim: &Arc<Sim>) -> Self {
        SimCondvar {
            sim: Arc::clone(sim),
            resource: sim.fresh_resource(),
        }
    }

    /// Releases `guard`, parks until notified, re-locks, and returns the
    /// new guard. Atomic in the model: dropping the guard wakes mutex
    /// contenders but transfers no control, and the park happens before
    /// the next scheduling point — exactly std's release-and-wait
    /// contract. Spurious wakeups exist (every notification wakes all
    /// waiters), so callers loop over their predicate as they would with
    /// std.
    pub fn wait<'a, T>(&self, guard: SimMutexGuard<'a, T>) -> SimMutexGuard<'a, T> {
        let mutex = guard.mutex;
        drop(guard);
        self.sim.block_on(self.resource);
        mutex.lock()
    }

    /// The broken variant: releases the guard, *yields*, and only then
    /// parks. A notification delivered in that window wakes nobody —
    /// the classic lost wakeup. Kept only as a seeded fixture target;
    /// production models must use [`SimCondvar::wait`].
    pub fn wait_racy<'a, T>(&self, guard: SimMutexGuard<'a, T>) -> SimMutexGuard<'a, T> {
        let mutex = guard.mutex;
        drop(guard);
        self.sim.schedule_point(); // <- the lost-wakeup window
        self.sim.block_on(self.resource);
        mutex.lock()
    }

    /// Wakes every thread parked in [`SimCondvar::wait`], then offers to
    /// yield so a woken waiter can run. Call while holding the paired
    /// mutex for std-equivalent semantics (the model does not enforce
    /// it — dropping the guard first is exactly the bug `wait_racy`
    /// fixtures catch).
    pub fn notify_all(&self) {
        self.sim.wake(self.resource);
        self.sim.schedule_point();
    }
}

// ---------------------------------------------------------------------
// Bounded channel (models std::sync::mpsc::sync_channel)
// ---------------------------------------------------------------------

struct ChanState<T> {
    queue: VecDeque<T>,
    capacity: usize,
    senders: usize,
}

struct Chan<T> {
    sim: Arc<Sim>,
    resource: usize,
    state: Mutex<ChanState<T>>,
}

/// Creates a bounded channel of the given capacity (capacity 1 mirrors
/// the ring's `sync_channel(1)` handshake).
pub fn sim_channel<T: Send>(sim: &Arc<Sim>, capacity: usize) -> (SimSender<T>, SimReceiver<T>) {
    let chan = Arc::new(Chan {
        sim: Arc::clone(sim),
        resource: sim.fresh_resource(),
        state: Mutex::new(ChanState {
            queue: VecDeque::new(),
            capacity: capacity.max(1),
            senders: 1,
        }),
    });
    (
        SimSender {
            chan: Arc::clone(&chan),
        },
        SimReceiver { chan },
    )
}

/// Sending half; blocks when the queue is at capacity.
pub struct SimSender<T: Send> {
    chan: Arc<Chan<T>>,
}

impl<T: Send> fmt::Debug for SimSender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimSender")
            .field("resource", &self.chan.resource)
            .finish()
    }
}

impl<T: Send> SimSender<T> {
    /// Blocking bounded send. A scheduling point.
    pub fn send(&self, value: T) {
        self.chan.sim.schedule_point();
        let mut value = Some(value);
        loop {
            {
                let mut st = match self.chan.state.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if st.queue.len() < st.capacity {
                    st.queue
                        .push_back(value.take().expect("send value consumed once"));
                    drop(st);
                    self.chan.sim.wake(self.chan.resource);
                    return;
                }
            }
            self.chan.sim.block_on(self.chan.resource);
        }
    }
}

impl<T: Send> Drop for SimSender<T> {
    fn drop(&mut self) {
        if let Ok(mut st) = self.chan.state.lock() {
            st.senders -= 1;
        }
        self.chan.sim.wake(self.chan.resource);
    }
}

/// Receiving half; blocks until a value arrives.
pub struct SimReceiver<T: Send> {
    chan: Arc<Chan<T>>,
}

impl<T: Send> fmt::Debug for SimReceiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimReceiver")
            .field("resource", &self.chan.resource)
            .finish()
    }
}

impl<T: Send> SimReceiver<T> {
    /// Blocking receive. A scheduling point. Panics (→ model violation)
    /// if every sender is gone and the queue is empty.
    pub fn recv(&self) -> T {
        self.chan.sim.schedule_point();
        loop {
            {
                let mut st = match self.chan.state.lock() {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.chan.sim.wake(self.chan.resource);
                    return v;
                }
                if st.senders == 0 {
                    drop(st);
                    panic!("recv on a channel whose senders all disconnected");
                }
            }
            self.chan.sim.block_on(self.chan.resource);
        }
    }
}

// ---------------------------------------------------------------------
// RaceCell — a deliberately non-atomic shared cell
// ---------------------------------------------------------------------

/// A shared cell whose `get` and `set` are *separate* scheduling points,
/// so read-modify-write sequences built from them are not atomic. This
/// is the instrument for racy fixtures: the checker must find the
/// interleaving where an update is lost.
pub struct RaceCell<T: Copy> {
    sim: Arc<Sim>,
    value: Mutex<T>,
}

impl<T: Copy + fmt::Debug> fmt::Debug for RaceCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RaceCell").finish_non_exhaustive()
    }
}

impl<T: Copy> RaceCell<T> {
    /// Creates a cell owned by the given simulation.
    pub fn new(sim: &Arc<Sim>, value: T) -> Self {
        RaceCell {
            sim: Arc::clone(sim),
            value: Mutex::new(value),
        }
    }

    /// Reads the value. A scheduling point.
    pub fn get(&self) -> T {
        self.sim.schedule_point();
        match self.value.lock() {
            Ok(g) => *g,
            Err(p) => *p.into_inner(),
        }
    }

    /// Writes the value. A scheduling point.
    pub fn set(&self, v: T) {
        self.sim.schedule_point();
        match self.value.lock() {
            Ok(mut g) => *g = v,
            Err(p) => *p.into_inner() = v,
        }
    }
}

// ---------------------------------------------------------------------
// Explorer — DFS over schedules
// ---------------------------------------------------------------------

/// Exploration bounds. `max_preemptions` is the CHESS-style context
/// bound; 2 already catches most real bugs and keeps ring-sized models
/// in the low thousands of schedules.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Forced context switches allowed per schedule.
    pub max_preemptions: usize,
    /// Safety valve: distinct schedules before giving up.
    pub max_schedules: usize,
    /// Safety valve: scheduling points per run.
    pub max_steps: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_preemptions: 2,
            max_schedules: 200_000,
            max_steps: 100_000,
        }
    }
}

impl Explorer {
    /// Explores every schedule of `model` within the bounds. The model
    /// runs once per schedule on fresh state; its returned bytes must be
    /// identical across schedules.
    pub fn explore<F>(&self, model: F) -> Result<Report, Violation>
    where
        F: Fn(&Arc<Sim>) -> Vec<u8> + Send + Sync + Clone + 'static,
    {
        let mut schedule: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        let mut total_steps = 0usize;
        let mut reference_output: Option<Vec<u8>> = None;
        loop {
            let (decisions, outcome, output, steps) = self.run_once(&schedule, model.clone());
            total_steps += steps;
            if let Some(v) = outcome {
                return Err(v);
            }
            schedules += 1;
            let output = output.unwrap_or_default();
            match &reference_output {
                None => reference_output = Some(output),
                Some(first) if *first != output => {
                    return Err(Violation::NondeterministicOutput {
                        first: first.clone(),
                        differing: output,
                        trace: decisions.iter().map(|d| d.chosen).collect(),
                    });
                }
                Some(_) => {}
            }
            if schedules >= self.max_schedules {
                return Err(Violation::ScheduleLimit { schedules });
            }
            // DFS backtrack: deepest decision with an untried candidate.
            let mut next_schedule = None;
            for i in (0..decisions.len()).rev() {
                let d = &decisions[i];
                let pos = d
                    .candidates
                    .iter()
                    .position(|&c| c == d.chosen)
                    .unwrap_or(d.candidates.len());
                if pos + 1 < d.candidates.len() {
                    let mut s: Vec<usize> = decisions[..i].iter().map(|d| d.chosen).collect();
                    s.push(d.candidates[pos + 1]);
                    next_schedule = Some(s);
                    break;
                }
            }
            match next_schedule {
                Some(s) => schedule = s,
                None => {
                    return Ok(Report {
                        schedules,
                        total_steps,
                        output: reference_output.unwrap_or_default(),
                    })
                }
            }
        }
    }

    fn run_once<F>(
        &self,
        schedule: &[usize],
        model: F,
    ) -> (Vec<Decision>, Option<Violation>, Option<Vec<u8>>, usize)
    where
        F: Fn(&Arc<Sim>) -> Vec<u8> + Send + 'static,
    {
        let sim = Sim::new(schedule.to_vec(), self.max_preemptions, self.max_steps);
        let root_sim = Arc::clone(&sim);
        sim.spawn(move || {
            let out = model(&root_sim);
            let mut inner = root_sim.lock_inner();
            inner.output = Some(out);
        });
        // Thread 0 starts immediately (`active` is 0 from construction);
        // wait for the run to drain. Touching `active` here would race
        // with the already-running model.
        {
            let mut inner = sim.lock_inner();
            while inner.finished < inner.total {
                inner = match sim.cv.wait(inner) {
                    Ok(g) => g,
                    Err(p) => p.into_inner(),
                };
            }
        }
        for h in sim
            .os_handles
            .lock()
            .map(|mut v| v.drain(..).collect::<Vec<_>>())
            .unwrap_or_default()
        {
            let _ = h.join();
        }
        let inner = sim.lock_inner();
        (
            inner.decisions.clone(),
            inner.violation.clone(),
            inner.output.clone(),
            inner.steps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_runs_once() {
        let report = Explorer::default()
            .explore(|_sim| vec![1, 2, 3])
            .expect("trivial model");
        assert_eq!(report.schedules, 1);
        assert_eq!(report.output, vec![1, 2, 3]);
    }

    #[test]
    fn two_independent_threads_explore_multiple_schedules() {
        let report = Explorer::default()
            .explore(|sim| {
                let log = Arc::new(SimMutex::new(sim, Vec::new()));
                let handles: Vec<JoinHandle> = (0u8..2)
                    .map(|i| {
                        let log = Arc::clone(&log);
                        sim.spawn(move || {
                            log.lock().push(i);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
                // Output must be schedule-independent: sort.
                let mut v = log.lock().clone();
                v.sort_unstable();
                v
            })
            .expect("independent threads are clean");
        assert!(report.schedules > 1, "should explore >1 interleaving");
        assert_eq!(report.output, vec![0, 1]);
    }

    #[test]
    fn order_dependent_output_is_reported() {
        let err = Explorer::default()
            .explore(|sim| {
                let log = Arc::new(SimMutex::new(sim, Vec::new()));
                let handles: Vec<JoinHandle> = (0u8..2)
                    .map(|i| {
                        let log = Arc::clone(&log);
                        sim.spawn(move || {
                            log.lock().push(i);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join();
                }
                let v = log.lock().clone(); // deliberately unsorted
                v
            })
            .expect_err("arrival order leaks into output");
        assert!(matches!(err, Violation::NondeterministicOutput { .. }));
    }

    #[test]
    fn ab_ba_deadlock_is_found() {
        let err = Explorer::default()
            .explore(|sim| {
                let a = Arc::new(SimMutex::new(sim, 0u32));
                let b = Arc::new(SimMutex::new(sim, 0u32));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t1 = sim.spawn(move || {
                    let _ga = a2.lock();
                    let _gb = b2.lock();
                });
                let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
                let t2 = sim.spawn(move || {
                    let _gb = b3.lock();
                    let _ga = a3.lock();
                });
                t1.join();
                t2.join();
                Vec::new()
            })
            .expect_err("AB-BA must deadlock on some schedule");
        assert!(matches!(err, Violation::Deadlock { .. }), "got {err}");
    }

    #[test]
    fn capacity_one_channel_ping_pong_is_clean() {
        let report = Explorer::default()
            .explore(|sim| {
                let (tx, rx) = sim_channel::<u8>(sim, 1);
                let producer = sim.spawn(move || {
                    for i in 0..3 {
                        tx.send(i);
                    }
                });
                let got: Vec<u8> = (0..3).map(|_| rx.recv()).collect();
                producer.join();
                got
            })
            .expect("bounded producer/consumer is deadlock-free");
        assert_eq!(report.output, vec![0, 1, 2]);
        assert!(report.schedules >= 1);
    }

    #[test]
    fn condvar_handshake_is_clean_on_every_schedule() {
        let report = Explorer::default()
            .explore(|sim| {
                let slot = Arc::new(SimMutex::new(sim, None::<u8>));
                let cv = Arc::new(SimCondvar::new(sim));
                let (s2, c2) = (Arc::clone(&slot), Arc::clone(&cv));
                let t = sim.spawn(move || {
                    let mut g = s2.lock();
                    while g.is_none() {
                        g = c2.wait(g);
                    }
                    assert_eq!(*g, Some(7), "woke to the published value");
                });
                {
                    let mut g = slot.lock();
                    *g = Some(7);
                }
                cv.notify_all();
                t.join();
                vec![1]
            })
            .expect("atomic release-and-wait never loses a wakeup");
        assert!(report.schedules > 1, "should explore >1 interleaving");
    }

    #[test]
    fn racy_wait_loses_a_wakeup_and_deadlocks() {
        let err = Explorer::default()
            .explore(|sim| {
                let slot = Arc::new(SimMutex::new(sim, None::<u8>));
                let cv = Arc::new(SimCondvar::new(sim));
                let (s2, c2) = (Arc::clone(&slot), Arc::clone(&cv));
                let t = sim.spawn(move || {
                    let mut g = s2.lock();
                    while g.is_none() {
                        g = c2.wait_racy(g); // release, yield, park
                    }
                });
                {
                    let mut g = slot.lock();
                    *g = Some(7);
                }
                cv.notify_all();
                t.join();
                Vec::new()
            })
            .expect_err("the notify can land in the release->park window");
        assert!(matches!(err, Violation::Deadlock { .. }), "got {err}");
    }

    #[test]
    fn model_assertion_failures_surface_with_a_trace() {
        let err = Explorer::default()
            .explore(|sim| {
                let cell = Arc::new(RaceCell::new(sim, 0u32));
                let c = Arc::clone(&cell);
                let t = sim.spawn(move || {
                    let v = c.get();
                    c.set(v + 1);
                });
                let v = cell.get();
                cell.set(v + 1);
                t.join();
                assert_eq!(cell.get(), 2, "lost update");
                Vec::new()
            })
            .expect_err("non-atomic increment must lose an update on some schedule");
        match err {
            Violation::ModelPanic { message, trace } => {
                assert!(message.contains("lost update"), "message: {message}");
                assert!(!trace.is_empty());
            }
            other => panic!("expected ModelPanic, got {other}"),
        }
    }
}
