//! Project-invariant linter + deterministic concurrency model-checker
//! for the INCEPTIONN workspace.
//!
//! Two subsystems, both self-contained (no external deps — this
//! environment has no crates.io, so clippy plugins, miri, and loom are
//! unavailable by construction):
//!
//! - [`lexer`] + [`rules`]: a string/comment-aware Rust tokenizer and a
//!   rule engine that walks every `crates/*/src/**.rs` enforcing the
//!   project's safety and determinism invariants (SAFETY comments on
//!   `unsafe`, guarded `#[target_feature]` dispatch, no panics on hot
//!   paths modulo a shrink-only allowlist, no clocks/RNG in wire-layout
//!   code, shim-facade hygiene).
//! - [`conc`] + [`models`]: a mini-loom that exhaustively explores
//!   bounded-preemption thread interleavings of the ParallelCodec shard
//!   protocol and the threaded ring handshake, asserting deadlock
//!   freedom and byte-identical output on every schedule — plus racy
//!   and deadlocking fixtures it must keep catching.
//!
//! `cargo run -p analyzer -- --check` runs both and exits nonzero on
//! any violation; `tests/analyzer_gate.rs` wires the same entry points
//! into tier-1 `cargo test`.

#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod conc;
pub mod lexer;
pub mod models;
pub mod rules;

use std::path::Path;

/// Outcome of the full `--check` pass: linter diagnostics plus any
/// concurrency-model violation, already formatted for printing.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Human-readable failure lines (empty = pass).
    pub failures: Vec<String>,
    /// Human-readable pass/summary lines.
    pub summary: Vec<String>,
}

impl CheckOutcome {
    /// True when nothing failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the invariant linter over the workspace tree at `repo_root`.
pub fn run_lint(repo_root: &Path) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    match rules::lint_tree(repo_root) {
        Ok(diags) if diags.is_empty() => {
            let n = rules::workspace_rust_files(repo_root)
                .map(|f| f.len())
                .unwrap_or(0);
            out.summary
                .push(format!("lint: OK ({n} files, 5 rules, 0 violations)"));
        }
        Ok(diags) => {
            for d in &diags {
                out.failures.push(d.to_string());
            }
            out.summary
                .push(format!("lint: FAILED ({} violations)", diags.len()));
        }
        Err(e) => {
            out.failures.push(format!("lint: error: {e}"));
        }
    }
    out
}

/// Runs the concurrency checker: the two production-protocol models
/// must be clean, the two seeded-bug fixtures must be caught. `smoke`
/// shrinks the model sizes for CI latency without changing the bounds.
pub fn run_conc(smoke: bool) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    let (shards, per_shard, ring_n) = if smoke { (2, 24, 3) } else { (3, 24, 3) };

    match models::parallel_encode_model(shards, per_shard) {
        Ok(r) => out.summary.push(format!(
            "conc: parallel encode OK ({} schedules, {} steps, byte-identical)",
            r.schedules, r.total_steps
        )),
        Err(v) => out.failures.push(format!("conc: parallel encode: {v}")),
    }
    match models::parallel_decode_model(shards, per_shard) {
        Ok(r) => out.summary.push(format!(
            "conc: parallel decode OK ({} schedules, {} steps, byte-identical)",
            r.schedules, r.total_steps
        )),
        Err(v) => out.failures.push(format!("conc: parallel decode: {v}")),
    }
    match models::ring_reduce_model(ring_n, 1) {
        Ok(r) => out.summary.push(format!(
            "conc: threaded ring OK ({} schedules, {} steps, all workers converge)",
            r.schedules, r.total_steps
        )),
        Err(v) => out.failures.push(format!("conc: threaded ring: {v}")),
    }
    match models::racy_counter_model() {
        Err(conc::Violation::ModelPanic { .. }) => out
            .summary
            .push("conc: racy fixture caught (lost update found)".to_string()),
        Err(v) => out
            .failures
            .push(format!("conc: racy fixture misreported: {v}")),
        Ok(_) => out
            .failures
            .push("conc: racy fixture NOT caught — checker is blind to races".to_string()),
    }
    match models::lock_inversion_model() {
        Err(conc::Violation::Deadlock { .. }) => out
            .summary
            .push("conc: deadlock fixture caught (AB-BA inversion found)".to_string()),
        Err(v) => out
            .failures
            .push(format!("conc: deadlock fixture misreported: {v}")),
        Ok(_) => out
            .failures
            .push("conc: deadlock fixture NOT caught — checker is blind to deadlocks".to_string()),
    }
    out
}
