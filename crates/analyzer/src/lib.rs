//! Project-invariant linter + deterministic concurrency model-checker
//! for the INCEPTIONN workspace.
//!
//! Two subsystems, both self-contained (no external deps — this
//! environment has no crates.io, so clippy plugins, miri, and loom are
//! unavailable by construction):
//!
//! - [`lexer`] + [`rules`] + [`callgraph`]: a string/comment-aware Rust
//!   tokenizer, a rule engine that walks every `crates/*/src/**.rs`
//!   enforcing the project's safety and determinism invariants (SAFETY
//!   comments on `unsafe`, guarded `#[target_feature]` dispatch, no
//!   clocks/RNG in wire-layout code, shim-facade hygiene), and an
//!   interprocedural pass: a function-level call graph over the whole
//!   workspace in which hot roots (encode/decode, `Fabric::transfer*`,
//!   the pipelined exchanges, the recovery ladders) taint everything
//!   reachable — panic and allocation sites in the reachable set fail
//!   with the root→sink call chain, modulo a shrink-only allowlist.
//! - [`conc`] + [`models`]: a mini-loom that exhaustively explores
//!   bounded-preemption thread interleavings of the ParallelCodec shard
//!   protocol, the threaded ring handshake, the compression pool's
//!   park/unpark handshake, the `FrameArena` checkout/recycle
//!   discipline, and the pipeline's bounded in-flight window, asserting
//!   deadlock freedom and byte-identical output on every schedule —
//!   plus racy, deadlocking, lost-wakeup, and use-after-recycle
//!   fixtures it must keep catching.
//!
//! `cargo run -p analyzer -- --check` runs both and exits nonzero on
//! any violation; `tests/analyzer_gate.rs` wires the same entry points
//! into tier-1 `cargo test`.

#![deny(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod callgraph;
pub mod conc;
pub mod lexer;
pub mod models;
pub mod rules;

use std::path::Path;

/// Outcome of the full `--check` pass: linter diagnostics plus any
/// concurrency-model violation, already formatted for printing.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Human-readable failure lines (empty = pass).
    pub failures: Vec<String>,
    /// Human-readable pass/summary lines.
    pub summary: Vec<String>,
}

impl CheckOutcome {
    /// True when nothing failed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs the invariant linter over the workspace tree at `repo_root`.
pub fn run_lint(repo_root: &Path) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    match rules::lint_tree(repo_root) {
        Ok(diags) if diags.is_empty() => {
            let n = rules::workspace_rust_files(repo_root)
                .map(|f| f.len())
                .unwrap_or(0);
            out.summary.push(format!(
                "lint: OK ({n} files, {} rules, 0 violations)",
                rules::RULE_COUNT
            ));
        }
        Ok(diags) => {
            for d in &diags {
                out.failures.push(d.to_string());
            }
            out.summary
                .push(format!("lint: FAILED ({} violations)", diags.len()));
        }
        Err(e) => {
            out.failures.push(format!("lint: error: {e}"));
        }
    }
    out
}

/// Runs the concurrency checker: the two production-protocol models
/// must be clean, the two seeded-bug fixtures must be caught. `smoke`
/// shrinks the model sizes for CI latency without changing the bounds.
pub fn run_conc(smoke: bool) -> CheckOutcome {
    let mut out = CheckOutcome::default();
    let (shards, per_shard, ring_n) = if smoke { (2, 24, 3) } else { (3, 24, 3) };

    match models::parallel_encode_model(shards, per_shard) {
        Ok(r) => out.summary.push(format!(
            "conc: parallel encode OK ({} schedules, {} steps, byte-identical)",
            r.schedules, r.total_steps
        )),
        Err(v) => out.failures.push(format!("conc: parallel encode: {v}")),
    }
    match models::parallel_decode_model(shards, per_shard) {
        Ok(r) => out.summary.push(format!(
            "conc: parallel decode OK ({} schedules, {} steps, byte-identical)",
            r.schedules, r.total_steps
        )),
        Err(v) => out.failures.push(format!("conc: parallel decode: {v}")),
    }
    match models::ring_reduce_model(ring_n, 1) {
        Ok(r) => out.summary.push(format!(
            "conc: threaded ring OK ({} schedules, {} steps, all workers converge)",
            r.schedules, r.total_steps
        )),
        Err(v) => out.failures.push(format!("conc: threaded ring: {v}")),
    }
    match models::pool_handshake_model(2, 3) {
        Ok(r) => out.summary.push(format!(
            "conc: pool handshake OK ({} schedules, no lost wakeup, deterministic placement)",
            r.schedules
        )),
        Err(v) => out.failures.push(format!("conc: pool handshake: {v}")),
    }
    match models::pool_panic_propagation_model() {
        Ok(r) => out.summary.push(format!(
            "conc: pool panic propagation OK ({} schedules, JobPanic surfaces identically)",
            r.schedules
        )),
        Err(v) => out
            .failures
            .push(format!("conc: pool panic propagation: {v}")),
    }
    match models::frame_arena_model(false) {
        Ok(r) => out.summary.push(format!(
            "conc: frame arena discipline OK ({} schedules, recycle-after-ack is safe)",
            r.schedules
        )),
        Err(v) => out.failures.push(format!("conc: frame arena: {v}")),
    }
    match models::pipeline_window_model(4, 2) {
        Ok(r) => out.summary.push(format!(
            "conc: pipeline window OK ({} schedules, in-flight stays within the window)",
            r.schedules
        )),
        Err(v) => out.failures.push(format!("conc: pipeline window: {v}")),
    }
    match models::racy_counter_model() {
        Err(conc::Violation::ModelPanic { .. }) => out
            .summary
            .push("conc: racy fixture caught (lost update found)".to_string()),
        Err(v) => out
            .failures
            .push(format!("conc: racy fixture misreported: {v}")),
        Ok(_) => out
            .failures
            .push("conc: racy fixture NOT caught — checker is blind to races".to_string()),
    }
    match models::lock_inversion_model() {
        Err(conc::Violation::Deadlock { .. }) => out
            .summary
            .push("conc: deadlock fixture caught (AB-BA inversion found)".to_string()),
        Err(v) => out
            .failures
            .push(format!("conc: deadlock fixture misreported: {v}")),
        Ok(_) => out
            .failures
            .push("conc: deadlock fixture NOT caught — checker is blind to deadlocks".to_string()),
    }
    match models::pool_lost_wakeup_fixture() {
        Err(conc::Violation::Deadlock { .. }) => out.summary.push(
            "conc: lost-wakeup fixture caught (notify lands in the release->park window)"
                .to_string(),
        ),
        Err(v) => out
            .failures
            .push(format!("conc: lost-wakeup fixture misreported: {v}")),
        Ok(_) => out.failures.push(
            "conc: lost-wakeup fixture NOT caught — checker is blind to lost wakeups".to_string(),
        ),
    }
    match models::frame_arena_model(true) {
        Err(conc::Violation::ModelPanic { message, .. })
            if message.contains("use-after-recycle") =>
        {
            out.summary.push(
                "conc: use-after-recycle fixture caught (early recycle corrupts a chunk)"
                    .to_string(),
            )
        }
        Err(v) => out
            .failures
            .push(format!("conc: use-after-recycle fixture misreported: {v}")),
        Ok(_) => out.failures.push(
            "conc: use-after-recycle fixture NOT caught — checker is blind to arena reuse"
                .to_string(),
        ),
    }
    out
}

/// Builds the workspace call graph and renders the hot-reachable
/// subgraph as DOT (with a per-crate node/edge summary in leading
/// comment lines). `cargo run -p analyzer -- --callgraph` prints it;
/// pipe through `dot -Tsvg` to render.
pub fn run_callgraph(repo_root: &Path) -> Result<String, String> {
    let sources = rules::load_workspace_sources(repo_root)?;
    let ctxs: Vec<rules::FileCtx> = sources
        .iter()
        .map(|(path, text)| rules::FileCtx::new(path, text))
        .collect();
    let graph = callgraph::CallGraph::build(&ctxs);
    Ok(callgraph::hot_subgraph_dot(&graph))
}
