//! Linear-algebra kernels.

use crate::Tensor;

/// Matrix multiplication `a (m×k) × b (k×n) → (m×n)`.
///
/// A cache-friendly i-k-j loop with the inner j-loop over contiguous
/// rows of `b`; deterministic accumulation order.
///
/// # Panics
///
/// Panics unless both operands are rank 2 and `a.cols == b.rows`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(
        k, k2,
        "matmul inner dimensions differ: {}x{} * {}x{}",
        m, k, k2, n
    );
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `a^T × b` without materializing the transpose.
///
/// `a` is `k×m`, `b` is `k×n`, the result is `m×n`.
///
/// # Panics
///
/// Panics unless both operands are rank 2 with matching outer (`k`)
/// dimensions.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_tn lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul_tn rhs must be a matrix");
    let (k, m) = (a.dims()[0], a.dims()[1]);
    let (k2, n) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_tn outer dimensions differ");
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &aval) in arow.iter().enumerate() {
            if aval == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bval) in orow.iter_mut().zip(brow.iter()) {
                *o += aval * bval;
            }
        }
    }
    Tensor::from_vec(out, &[m, n])
}

/// `a × b^T` without materializing the transpose.
///
/// `a` is `m×k`, `b` is `n×k`, the result is `m×n`.
///
/// Blocked four output columns wide: one pass over a row of `a` feeds
/// four independent dot products against consecutive rows of `b`,
/// quartering the re-reads of the `a` row and breaking the single
/// accumulator dependency chain. Each output still sums in ascending
/// `k` order, so results are bit-identical to the naive loop.
///
/// # Panics
///
/// Panics unless both operands are rank 2 with matching inner (`k`)
/// dimensions.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape().rank(), 2, "matmul_nt lhs must be a matrix");
    assert_eq!(b.shape().rank(), 2, "matmul_nt rhs must be a matrix");
    let (m, k) = (a.dims()[0], a.dims()[1]);
    let (n, k2) = (b.dims()[0], b.dims()[1]);
    assert_eq!(k, k2, "matmul_nt inner dimensions differ");
    let av = a.as_slice();
    let bv = b.as_slice();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        let mut j = 0;
        while j + 4 <= n {
            let b0 = &bv[j * k..(j + 1) * k];
            let b1 = &bv[(j + 1) * k..(j + 2) * k];
            let b2 = &bv[(j + 2) * k..(j + 3) * k];
            let b3 = &bv[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for ((((&x, &y0), &y1), &y2), &y3) in arow.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                s0 += x * y0;
                s1 += x * y1;
                s2 += x * y2;
                s3 += x * y3;
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += 4;
        }
        for (j, o) in orow.iter_mut().enumerate().skip(j) {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &Tensor, b: &Tensor) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_small_known_answer() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32 * 0.3).collect(), &[4, 3]);
        let b = Tensor::from_vec((0..8).map(|v| v as f32 - 3.0).collect(), &[4, 2]);
        approx_eq(&matmul_tn(&a, &b), &matmul(&a.transpose(), &b));
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_vec((0..12).map(|v| v as f32 * 0.3).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..8).map(|v| v as f32 - 3.0).collect(), &[2, 4]);
        approx_eq(&matmul_nt(&a, &b), &matmul(&a, &b.transpose()));
    }

    #[test]
    fn matmul_nt_blocked_and_remainder_columns_match_transpose() {
        // n = 6 exercises one full 4-wide block plus a 2-column tail.
        let a = Tensor::from_vec((0..35).map(|v| (v as f32) * 0.17 - 2.0).collect(), &[5, 7]);
        let b = Tensor::from_vec((0..42).map(|v| (v as f32) * 0.11 - 1.5).collect(), &[6, 7]);
        approx_eq(&matmul_nt(&a, &b), &matmul(&a, &b.transpose()));
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatch() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn matmul_with_zero_dim() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 4]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[0, 4]);
        assert!(c.is_empty());
    }

    #[test]
    fn matmul_is_associative_on_small_inputs() {
        let a = Tensor::from_vec((0..4).map(|v| v as f32).collect(), &[2, 2]);
        let b = Tensor::from_vec((0..4).map(|v| (v as f32) * 0.5).collect(), &[2, 2]);
        let c = Tensor::from_vec((0..4).map(|v| (v as f32) - 1.0).collect(), &[2, 2]);
        approx_eq(&matmul(&matmul(&a, &b), &c), &matmul(&a, &matmul(&b, &c)));
    }
}
