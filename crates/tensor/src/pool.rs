//! 2-D max pooling.

use crate::Tensor;

/// Geometry of a max-pooling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Square window side length.
    pub window: usize,
    /// Stride in both dimensions.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pooling spec.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(window > 0, "pool window must be positive");
        assert!(stride > 0, "pool stride must be positive");
        PoolSpec { window, stride }
    }

    /// Output spatial size for an `h`×`w` input.
    ///
    /// # Panics
    ///
    /// Panics if the input is smaller than the window.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.window && w >= self.window,
            "input {h}x{w} smaller than pool window {}",
            self.window
        );
        (
            (h - self.window) / self.stride + 1,
            (w - self.window) / self.stride + 1,
        )
    }
}

/// Forward max pooling over an NCHW batch.
///
/// Returns the pooled tensor together with the flat argmax index of each
/// window (needed by the backward pass).
///
/// # Panics
///
/// Panics if `input` is not rank 4 or smaller than the window.
pub fn max_pool2d(input: &Tensor, spec: &PoolSpec) -> (Tensor, Vec<usize>) {
    assert_eq!(input.shape().rank(), 4, "max_pool2d input must be NCHW");
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_hw(h, w);
    let data = input.as_slice();
    let mut out = vec![0.0f32; n * c * oh * ow];
    let mut arg = vec![0usize; n * c * oh * ow];
    for img in 0..n {
        for ch in 0..c {
            let base = (img * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..spec.window {
                        for kx in 0..spec.window {
                            let iy = oy * spec.stride + ky;
                            let ix = ox * spec.stride + kx;
                            let idx = base + iy * w + ix;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = ((img * c + ch) * oh + oy) * ow + ox;
                    out[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
    }
    (Tensor::from_vec(out, &[n, c, oh, ow]), arg)
}

/// Backward max pooling: routes each output gradient to the input
/// element that won the corresponding window.
///
/// `argmax` must come from the matching [`max_pool2d`] call;
/// `input_shape` is the original NCHW shape.
///
/// # Panics
///
/// Panics if `grad_out.len() != argmax.len()`.
pub fn max_pool2d_backward(grad_out: &Tensor, argmax: &[usize], input_shape: &[usize]) -> Tensor {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "gradient/argmax length mismatch"
    );
    let mut out = Tensor::zeros(input_shape);
    let buf = out.as_mut_slice();
    for (&g, &idx) in grad_out.as_slice().iter().zip(argmax.iter()) {
        buf[idx] += g;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_known_answer() {
        // 1x1x4x4 input, 2x2 window, stride 2.
        let input = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
            &[1, 1, 4, 4],
        );
        let (out, arg) = max_pool2d(&input, &PoolSpec::new(2, 2));
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn pool_backward_routes_to_argmax() {
        let input = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let (out, arg) = max_pool2d(&input, &PoolSpec::new(2, 2));
        assert_eq!(out.as_slice(), &[4.0]);
        let g = max_pool2d_backward(
            &Tensor::from_vec(vec![2.5], &[1, 1, 1, 1]),
            &arg,
            &[1, 1, 2, 2],
        );
        assert_eq!(g.as_slice(), &[0.0, 0.0, 0.0, 2.5]);
    }

    #[test]
    fn overlapping_windows_accumulate_gradient() {
        // 3x3 input with global max in the centre; 2x2 window stride 1 →
        // all four windows pick the centre, so its gradient accumulates.
        let input = Tensor::from_vec(
            vec![0.0, 0.0, 0.0, 0.0, 9.0, 0.0, 0.0, 0.0, 0.0],
            &[1, 1, 3, 3],
        );
        let (out, arg) = max_pool2d(&input, &PoolSpec::new(2, 1));
        assert_eq!(out.as_slice(), &[9.0; 4]);
        let g = max_pool2d_backward(&Tensor::ones(&[1, 1, 2, 2]), &arg, &[1, 1, 3, 3]);
        assert_eq!(g.at(&[0, 0, 1, 1]), 4.0);
        assert_eq!(g.sum(), 4.0);
    }

    #[test]
    fn pool_geometry() {
        assert_eq!(PoolSpec::new(3, 2).output_hw(13, 13), (6, 6));
        assert_eq!(PoolSpec::new(2, 2).output_hw(28, 28), (14, 14));
    }
}
