//! 2-D convolution via im2col lowering.

use crate::ops::{matmul, matmul_nt, matmul_tn};
use crate::Tensor;

/// Geometry of a 2-D convolution.
///
/// Input layout is NCHW; kernels are `[out_ch, in_ch, kh, kw]`.
///
/// # Examples
///
/// ```
/// use inceptionn_tensor::ConvSpec;
///
/// let spec = ConvSpec::new(3, 16, 5, 1, 2);
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSpec {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Square kernel side length.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding added on all four sides.
    pub padding: usize,
}

impl ConvSpec {
    /// Creates a convolution spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        assert!(kernel > 0, "kernel size must be positive");
        assert!(stride > 0, "stride must be positive");
        ConvSpec {
            in_channels,
            out_channels,
            kernel,
            stride,
            padding,
        }
    }

    /// Output spatial size for an `h`×`w` input.
    ///
    /// # Panics
    ///
    /// Panics if the padded input is smaller than the kernel.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        assert!(
            ph >= self.kernel && pw >= self.kernel,
            "input {h}x{w} (pad {}) smaller than kernel {}",
            self.padding,
            self.kernel
        );
        (
            (ph - self.kernel) / self.stride + 1,
            (pw - self.kernel) / self.stride + 1,
        )
    }

    /// Number of weight parameters (`out·in·k·k`).
    pub fn weight_len(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel * self.kernel
    }
}

/// Lowers an NCHW input batch into the im2col matrix.
///
/// The result has one row per kernel patch entry (`in_ch·k·k`) and one
/// column per output pixel across the whole batch (`n·oh·ow`).
///
/// # Panics
///
/// Panics if `input` is not rank 4 or its channel count disagrees with
/// `spec`.
pub fn im2col(input: &Tensor, spec: &ConvSpec) -> Tensor {
    assert_eq!(input.shape().rank(), 4, "im2col input must be NCHW");
    let dims = input.dims();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, spec.in_channels, "channel mismatch");
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let rows = c * k * k;
    let cols = n * oh * ow;
    let mut out = vec![0.0f32; rows * cols];
    let data = input.as_slice();
    for img in 0..n {
        for ch in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ch * k + ky) * k + kx;
                    for oy in 0..oh {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        for ox in 0..ow {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            let col = (img * oh + oy) * ow + ox;
                            let v = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w
                            {
                                data[((img * c + ch) * h + iy as usize) * w + ix as usize]
                            } else {
                                0.0
                            };
                            out[row * cols + col] = v;
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[rows, cols])
}

/// Scatters an im2col matrix back into an NCHW tensor (the adjoint of
/// [`im2col`]), accumulating overlapping patches.
///
/// # Panics
///
/// Panics if `cols`'s shape is inconsistent with `spec` and the target
/// geometry.
pub fn col2im(cols: &Tensor, spec: &ConvSpec, n: usize, h: usize, w: usize) -> Tensor {
    let (oh, ow) = spec.output_hw(h, w);
    let k = spec.kernel;
    let c = spec.in_channels;
    assert_eq!(
        cols.dims(),
        &[c * k * k, n * oh * ow],
        "col2im shape mismatch"
    );
    let mut out = vec![0.0f32; n * c * h * w];
    let data = cols.as_slice();
    let ncols = n * oh * ow;
    for img in 0..n {
        for ch in 0..c {
            for ky in 0..k {
                for kx in 0..k {
                    let row = (ch * k + ky) * k + kx;
                    for oy in 0..oh {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        for ox in 0..ow {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix as usize >= w {
                                continue;
                            }
                            let col = (img * oh + oy) * ow + ox;
                            out[((img * c + ch) * h + iy as usize) * w + ix as usize] +=
                                data[row * ncols + col];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(out, &[n, c, h, w])
}

/// Forward 2-D convolution.
///
/// `input` is NCHW, `weight` is `[out_ch, in_ch·k·k]` (pre-flattened),
/// `bias` is `[out_ch]`. Returns `[n, out_ch, oh, ow]`.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
    let dims = input.dims();
    let (n, _c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(
        weight.dims(),
        &[
            spec.out_channels,
            spec.in_channels * spec.kernel * spec.kernel
        ],
        "weight shape mismatch"
    );
    assert_eq!(bias.dims(), &[spec.out_channels], "bias shape mismatch");
    let cols = im2col(input, spec);
    // [out_ch, rows] x [rows, n*oh*ow] = [out_ch, n*oh*ow]
    let prod = matmul(weight, &cols);
    // Rearrange to [n, out_ch, oh, ow] and add bias.
    let ncols = n * oh * ow;
    let pv = prod.as_slice();
    let bv = bias.as_slice();
    let mut out = vec![0.0f32; n * spec.out_channels * oh * ow];
    for oc in 0..spec.out_channels {
        for img in 0..n {
            for p in 0..oh * ow {
                out[((img * spec.out_channels + oc) * oh * ow) + p] =
                    pv[oc * ncols + img * oh * ow + p] + bv[oc];
            }
        }
    }
    Tensor::from_vec(out, &[n, spec.out_channels, oh, ow])
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient w.r.t. the input, NCHW.
    pub input: Tensor,
    /// Gradient w.r.t. the flattened weight matrix.
    pub weight: Tensor,
    /// Gradient w.r.t. the bias vector.
    pub bias: Tensor,
}

/// Backward pass of [`conv2d`].
///
/// `grad_out` is `[n, out_ch, oh, ow]`; `input` and `weight` are the
/// forward operands.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward(
    input: &Tensor,
    weight: &Tensor,
    grad_out: &Tensor,
    spec: &ConvSpec,
) -> Conv2dGrads {
    let dims = input.dims();
    let (n, _c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let (oh, ow) = spec.output_hw(h, w);
    assert_eq!(grad_out.dims(), &[n, spec.out_channels, oh, ow]);
    // Rearrange grad_out from [n, oc, oh*ow] into [oc, n*oh*ow].
    let gv = grad_out.as_slice();
    let ncols = n * oh * ow;
    let mut g = vec![0.0f32; spec.out_channels * ncols];
    let mut gbias = vec![0.0f32; spec.out_channels];
    for img in 0..n {
        for oc in 0..spec.out_channels {
            for p in 0..oh * ow {
                let v = gv[((img * spec.out_channels + oc) * oh * ow) + p];
                g[oc * ncols + img * oh * ow + p] = v;
                gbias[oc] += v;
            }
        }
    }
    let gmat = Tensor::from_vec(g, &[spec.out_channels, ncols]);
    let cols = im2col(input, spec);
    // dW = gmat (oc×cols) × cols^T (cols×rows) -> (oc×rows)
    let gw = matmul_nt(&gmat, &cols);
    // dCols = W^T (rows×oc) × gmat (oc×cols)
    let gcols = matmul_tn(weight, &gmat);
    let ginput = col2im(&gcols, spec, n, h, w);
    Conv2dGrads {
        input: ginput,
        weight: gw,
        bias: Tensor::from_vec(gbias, &[spec.out_channels]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_ref(input: &Tensor, weight: &Tensor, bias: &Tensor, spec: &ConvSpec) -> Tensor {
        // Direct (naive) convolution used as the oracle.
        let dims = input.dims();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let (oh, ow) = spec.output_hw(h, w);
        let k = spec.kernel;
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for img in 0..n {
            for oc in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.as_slice()[oc];
                        for ch in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy =
                                        (oy * spec.stride + ky) as isize - spec.padding as isize;
                                    let ix =
                                        (ox * spec.stride + kx) as isize - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                        continue;
                                    }
                                    let wv =
                                        weight.as_slice()[oc * c * k * k + (ch * k + ky) * k + kx];
                                    acc += wv * input.at(&[img, ch, iy as usize, ix as usize]);
                                }
                            }
                        }
                        out.set(&[img, oc, oy, ox], acc);
                    }
                }
            }
        }
        out
    }

    fn rngf(seed: u64, n: usize) -> Vec<f32> {
        // Small deterministic LCG, avoids pulling rand into the oracle.
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn conv2d_matches_naive_reference() {
        for &(stride, padding) in &[(1usize, 0usize), (1, 1), (2, 1), (2, 2)] {
            let spec = ConvSpec::new(2, 3, 3, stride, padding);
            let input = Tensor::from_vec(rngf(1, 2 * 2 * 6 * 6), &[2, 2, 6, 6]);
            let weight = Tensor::from_vec(rngf(2, spec.weight_len()), &[3, 2 * 3 * 3]);
            let bias = Tensor::from_vec(rngf(3, 3), &[3]);
            let fast = conv2d(&input, &weight, &bias, &spec);
            let slow = conv_ref(&input, &weight, &bias, &spec);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.as_slice().iter().zip(slow.as_slice()) {
                assert!(
                    (a - b).abs() < 1e-4,
                    "{a} vs {b} (stride {stride} pad {padding})"
                );
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is exactly what backprop needs.
        let spec = ConvSpec::new(2, 1, 3, 2, 1);
        let (n, h, w) = (1usize, 5usize, 5usize);
        let x = Tensor::from_vec(rngf(7, n * 2 * h * w), &[n, 2, h, w]);
        let cols = im2col(&x, &spec);
        let y = Tensor::from_vec(rngf(8, cols.len()), cols.dims());
        let lhs: f64 = cols
            .as_slice()
            .iter()
            .zip(y.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let back = col2im(&y, &spec, n, h, w);
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(back.as_slice())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv2d_backward_matches_finite_differences() {
        let spec = ConvSpec::new(1, 2, 3, 1, 1);
        let input = Tensor::from_vec(rngf(11, 4 * 4), &[1, 1, 4, 4]);
        let weight = Tensor::from_vec(rngf(12, spec.weight_len()), &[2, 9]);
        let bias = Tensor::from_vec(rngf(13, 2), &[2]);
        // Loss = sum of outputs; grad_out = ones.
        let out = conv2d(&input, &weight, &bias, &spec);
        let gout = Tensor::ones(out.dims());
        let grads = conv2d_backward(&input, &weight, &gout, &spec);
        let eps = 1e-3f32;
        // Check a scattering of weight coordinates.
        for idx in [0usize, 3, 8, 12, 17] {
            let mut wp = weight.clone();
            wp.as_mut_slice()[idx] += eps;
            let op = conv2d(&input, &wp, &bias, &spec);
            let mut wm = weight.clone();
            wm.as_mut_slice()[idx] -= eps;
            let om = conv2d(&input, &wm, &bias, &spec);
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = grads.weight.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "weight[{idx}]: fd {fd} vs an {an}");
        }
        // Check a scattering of input coordinates.
        for idx in [0usize, 5, 10, 15] {
            let mut ip = input.clone();
            ip.as_mut_slice()[idx] += eps;
            let op = conv2d(&ip, &weight, &bias, &spec);
            let mut im = input.clone();
            im.as_mut_slice()[idx] -= eps;
            let om = conv2d(&im, &weight, &bias, &spec);
            let fd = (op.sum() - om.sum()) / (2.0 * eps);
            let an = grads.input.as_slice()[idx];
            assert!((fd - an).abs() < 2e-2, "input[{idx}]: fd {fd} vs an {an}");
        }
        // Bias gradient of a sum-loss is the output pixel count per channel.
        let pixels = (out.len() / 2) as f32;
        for &g in grads.bias.as_slice() {
            assert!((g - pixels).abs() < 1e-3);
        }
    }

    #[test]
    fn output_geometry() {
        let spec = ConvSpec::new(3, 8, 5, 1, 2);
        assert_eq!(spec.output_hw(28, 28), (28, 28));
        let spec = ConvSpec::new(3, 8, 3, 2, 1);
        assert_eq!(spec.output_hw(28, 28), (14, 14));
        assert_eq!(spec.weight_len(), 8 * 3 * 3 * 3);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn output_geometry_rejects_tiny_input() {
        ConvSpec::new(1, 1, 7, 1, 0).output_hw(4, 4);
    }
}
