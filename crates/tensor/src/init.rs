//! Weight initialization schemes.

use rand::distributions::Distribution;
use rand::Rng;

use crate::Tensor;

/// Xavier/Glorot uniform initialization: `U(-a, a)` with
/// `a = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let dist = rand::distributions::Uniform::new_inclusive(-a, a);
    let n: usize = shape.iter().product();
    Tensor::from_vec((0..n).map(|_| dist.sample(rng)).collect(), shape)
}

/// He/Kaiming normal initialization: `N(0, sqrt(2 / fan_in))`, the
/// standard choice ahead of ReLU activations.
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn he_normal<R: Rng + ?Sized>(rng: &mut R, shape: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0 / fan_in as f64).sqrt() as f32;
    let n: usize = shape.iter().product();
    // Box-Muller from two uniforms keeps us off rand_distr.
    let mut vals = Vec::with_capacity(n);
    while vals.len() < n {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        vals.push((r * theta.cos()) as f32 * std);
        if vals.len() < n {
            vals.push((r * theta.sin()) as f32 * std);
        }
    }
    Tensor::from_vec(vals, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = xavier_uniform(&mut rng, &[100, 50], 100, 50);
        let a = (6.0f32 / 150.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= a));
        // Should not be degenerate.
        assert!(t.as_slice().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn he_normal_has_expected_scale() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = he_normal(&mut rng, &[200, 100], 100);
        let n = t.len() as f64;
        let mean: f64 = t.as_slice().iter().map(|&v| v as f64).sum::<f64>() / n;
        let var: f64 = t
            .as_slice()
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n;
        let want = 2.0 / 100.0;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - want).abs() < want * 0.2, "var {var} want {want}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = he_normal(&mut StdRng::seed_from_u64(42), &[10], 10);
        let b = he_normal(&mut StdRng::seed_from_u64(42), &[10], 10);
        assert_eq!(a, b);
    }
}
