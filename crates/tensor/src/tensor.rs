//! The owned dense tensor type.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

use crate::shape::{broadcast_shapes, Shape};

/// An owned, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single numeric container used throughout the
/// reproduction: activations, weights, and gradients are all `Tensor`s.
/// Cloning copies the buffer; all arithmetic allocates its result (the
/// `_assign` variants mutate in place and are used on hot paths).
///
/// # Examples
///
/// ```
/// use inceptionn_tensor::Tensor;
///
/// let x = Tensor::zeros(&[2, 3]);
/// let y = Tensor::full(&[2, 3], 1.5);
/// let z = &x + &y;
/// assert_eq!(z.as_slice(), &[1.5; 6]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements
    /// implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let shape = Shape::new(shape);
        assert_eq!(
            data.len(),
            shape.num_elements(),
            "buffer of {} elements does not fill shape {}",
            data.len(),
            shape
        );
        Tensor { shape, data }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor::full(shape, 0.0)
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let shape = Shape::new(shape);
        let data = vec![value; shape.num_elements()];
        Tensor { shape, data }
    }

    /// Creates the `n`×`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the flat row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the flat row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Extracts the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.flat_index(index)]
    }

    /// Writes the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let flat = self.shape.flat_index(index);
        self.data[flat] = value;
    }

    /// Returns a tensor with the same buffer reinterpreted under a new
    /// shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let new_shape = Shape::new(shape);
        assert_eq!(
            self.shape.num_elements(),
            new_shape.num_elements(),
            "cannot reshape {} into {}",
            self.shape,
            new_shape
        );
        self.shape = new_shape;
        self
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Self {
        assert_eq!(self.shape.rank(), 2, "transpose requires a matrix");
        let (rows, cols) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Tensor::from_vec(out, &[cols, rows])
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip_map requires identical shapes ({} vs {})",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    ///
    /// Returns 0 for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Largest element, or `f32::NEG_INFINITY` when empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the largest element in the flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of an empty tensor");
        let mut best = 0usize;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// The L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt() as f32
    }

    /// `self += alpha * other`, elementwise over identical shapes.
    ///
    /// This is the fused update used by SGD and gradient aggregation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy requires identical shapes ({} vs {})",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `alpha` in place.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Elementwise broadcasted binary operation.
    ///
    /// # Panics
    ///
    /// Panics if the shapes cannot broadcast.
    pub fn broadcast_op(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        if self.shape == other.shape {
            return self.zip_map(other, f);
        }
        let out_shape =
            broadcast_shapes(&self.shape, &other.shape).unwrap_or_else(|e| panic!("{e}"));
        let rank = out_shape.rank();
        let out_dims = out_shape.dims().to_vec();
        let n = out_shape.num_elements();
        let mut out = Vec::with_capacity(n);
        let a_dims = self.shape.dims();
        let b_dims = other.shape.dims();
        let a_strides = self.shape.strides();
        let b_strides = other.shape.strides();
        let mut idx = vec![0usize; rank];
        for _ in 0..n {
            let mut ai = 0usize;
            let mut bi = 0usize;
            for (axis, &coord) in idx.iter().enumerate() {
                // Align trailing axes; broadcast (size-1) axes contribute 0.
                let a_axis = (axis + a_dims.len()).checked_sub(rank);
                if let Some(a_axis) = a_axis {
                    if a_dims[a_axis] != 1 {
                        ai += coord * a_strides[a_axis];
                    }
                }
                let b_axis = (axis + b_dims.len()).checked_sub(rank);
                if let Some(b_axis) = b_axis {
                    if b_dims[b_axis] != 1 {
                        bi += coord * b_strides[b_axis];
                    }
                }
            }
            out.push(f(self.data[ai], other.data[bi]));
            // Row-major increment.
            for axis in (0..rank).rev() {
                idx[axis] += 1;
                if idx[axis] < out_dims[axis] {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Tensor::from_vec(out, &out_dims)
    }

    /// Matrix multiplication `self (m×k) * other (k×n)`.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with matching inner
    /// dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        crate::ops::matmul(self, other)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<f32> = self.data.iter().take(8).copied().collect();
        let ellipsis = if self.data.len() > 8 { ", …" } else { "" };
        write!(f, "Tensor{} {:?}{}", self.shape, preview, ellipsis)
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

macro_rules! binop_impl {
    ($trait:ident, $method:ident, $f:expr) => {
        impl $trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.broadcast_op(rhs, $f)
            }
        }
        impl $trait<Tensor> for Tensor {
            type Output = Tensor;
            fn $method(self, rhs: Tensor) -> Tensor {
                (&self).broadcast_op(&rhs, $f)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|v| $f(v, rhs))
            }
        }
    };
}

binop_impl!(Add, add, |a, b| a + b);
binop_impl!(Sub, sub, |a, b| a - b);
binop_impl!(Mul, mul, |a, b| a * b);
binop_impl!(Div, div, |a, b| a / b);

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|v| -v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fill")]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(vec![1.0], &[2]);
    }

    #[test]
    fn eye_is_identity_under_matmul() {
        let a = Tensor::from_vec((0..9).map(|v| v as f32).collect(), &[3, 3]);
        assert_eq!(a.matmul(&Tensor::eye(3)).as_slice(), a.as_slice());
        assert_eq!(Tensor::eye(3).matmul(&a).as_slice(), a.as_slice());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn arithmetic_and_broadcast() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let row = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let sum = &a + &row;
        assert_eq!(sum.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
        let col = Tensor::from_vec(vec![100.0, 200.0], &[2, 1]);
        let sum = &a + &col;
        assert_eq!(sum.as_slice(), &[101.0, 102.0, 203.0, 204.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.max(), 4.0);
        assert_eq!(a.argmax(), 3);
        assert!((a.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let b = a.clone().reshape(&[3, 2]);
        assert_eq!(b.dims(), &[3, 2]);
        assert_eq!(b.as_slice(), a.as_slice());
    }

    #[test]
    fn debug_is_never_empty() {
        let s = format!("{:?}", Tensor::zeros(&[0]));
        assert!(!s.is_empty());
        assert!(s.contains("Tensor"));
    }

    #[test]
    fn set_and_at_round_trip() {
        let mut t = Tensor::zeros(&[2, 2]);
        t.set(&[1, 0], 7.0);
        assert_eq!(t.at(&[1, 0]), 7.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }
}
