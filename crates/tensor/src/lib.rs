//! Dense `f32` tensor substrate for the INCEPTIONN reproduction.
//!
//! This crate provides the minimal-but-complete numerical foundation that
//! the [`inceptionn-dnn`] training substrate is built on: an owned,
//! contiguous, row-major [`Tensor`] type plus the linear-algebra and
//! convolution kernels DNN training needs (GEMM, im2col convolution,
//! max-pooling, elementwise maps and reductions).
//!
//! The design goal is *fidelity and determinism*, not peak FLOPs: every
//! experiment in the paper reproduction must be reproducible bit-for-bit
//! under a fixed seed, so all kernels are straightforward, allocation-
//! explicit, single-threaded loops (data-parallel training parallelism
//! lives a level up, in `inceptionn-distrib`, exactly as in the paper).
//!
//! # Examples
//!
//! ```
//! use inceptionn_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), a.as_slice());
//! ```
//!
//! [`inceptionn-dnn`]: https://example.com/inceptionn-rs

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

mod conv;
mod init;
mod ops;
mod pool;
mod shape;
mod tensor;

pub use conv::{col2im, conv2d, conv2d_backward, im2col, Conv2dGrads, ConvSpec};
pub use init::{he_normal, xavier_uniform};
pub use ops::{matmul, matmul_nt, matmul_tn};
pub use pool::{max_pool2d, max_pool2d_backward, PoolSpec};
pub use shape::{broadcast_shapes, Shape, ShapeError};
pub use tensor::Tensor;
