//! Shape bookkeeping for dense row-major tensors.

use std::fmt;

/// The dimensions of a [`crate::Tensor`], stored outermost-first.
///
/// A `Shape` is a thin validated wrapper around a `Vec<usize>`. A scalar
/// is represented by the empty shape `[]` (one element); zero-sized
/// dimensions are permitted and give a zero-element tensor.
///
/// # Examples
///
/// ```
/// use inceptionn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.num_elements(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimensions, outermost first.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// The dimensions, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (0 for a scalar).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of all dimensions; 1 for a scalar).
    pub fn num_elements(&self) -> usize {
        self.dims.iter().product()
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    ///
    /// ```
    /// use inceptionn_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.dims.len()];
        let mut acc = 1usize;
        for (stride, &dim) in strides.iter_mut().zip(self.dims.iter()).rev() {
            *stride = acc;
            acc *= dim;
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat row-major offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut flat = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} (size {d})");
            flat = flat * d + i;
        }
        flat
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

/// Error returned when two shapes cannot be combined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    left: Shape,
    right: Shape,
    op: &'static str,
}

impl ShapeError {
    pub(crate) fn new(left: &Shape, right: &Shape, op: &'static str) -> Self {
        ShapeError {
            left: left.clone(),
            right: right.clone(),
            op,
        }
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "incompatible shapes {} and {} for {}",
            self.left, self.right, self.op
        )
    }
}

impl std::error::Error for ShapeError {}

/// Computes the shape two operands broadcast to under NumPy-style rules.
///
/// Dimensions are aligned from the innermost axis; a size-1 dimension
/// broadcasts against any size.
///
/// # Errors
///
/// Returns [`ShapeError`] if any aligned pair of dimensions differs and
/// neither is 1.
///
/// # Examples
///
/// ```
/// use inceptionn_tensor::{broadcast_shapes, Shape};
///
/// let out = broadcast_shapes(&Shape::new(&[4, 1]), &Shape::new(&[3])).unwrap();
/// assert_eq!(out.dims(), &[4, 3]);
/// ```
pub fn broadcast_shapes(a: &Shape, b: &Shape) -> Result<Shape, ShapeError> {
    let rank = a.rank().max(b.rank());
    let mut dims = vec![0usize; rank];
    for i in 0..rank {
        let da = if i < a.rank() {
            a.dim(a.rank() - 1 - i)
        } else {
            1
        };
        let db = if i < b.rank() {
            b.dim(b.rank() - 1 - i)
        } else {
            1
        };
        let out = if da == db || db == 1 {
            da
        } else if da == 1 {
            db
        } else {
            return Err(ShapeError::new(a, b, "broadcast"));
        };
        dims[rank - 1 - i] = out;
    }
    Ok(Shape::from(dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert_eq!(Shape::new(&[2, 3]).strides(), vec![3, 1]);
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.num_elements(), 1);
        assert_eq!(s.rank(), 0);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn zero_dim_gives_zero_elements() {
        assert_eq!(Shape::new(&[3, 0, 2]).num_elements(), 0);
    }

    #[test]
    fn flat_index_round_trips() {
        let s = Shape::new(&[2, 3, 4]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2 {
            for j in 0..3 {
                for k in 0..4 {
                    let flat = s.flat_index(&[i, j, k]);
                    assert!(flat < 24);
                    assert!(seen.insert(flat), "duplicate flat index");
                }
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_checks_bounds() {
        Shape::new(&[2, 2]).flat_index(&[0, 2]);
    }

    #[test]
    fn broadcast_matches_numpy_rules() {
        let cases = [
            (vec![4, 1], vec![3], vec![4, 3]),
            (vec![1], vec![5, 5], vec![5, 5]),
            (vec![2, 3], vec![2, 3], vec![2, 3]),
            (vec![], vec![7], vec![7]),
        ];
        for (a, b, want) in cases {
            let got = broadcast_shapes(&Shape::from(a), &Shape::from(b)).unwrap();
            assert_eq!(got.dims(), want.as_slice());
        }
    }

    #[test]
    fn broadcast_rejects_mismatch() {
        let err = broadcast_shapes(&Shape::new(&[2, 3]), &Shape::new(&[4])).unwrap_err();
        assert!(err.to_string().contains("incompatible"));
    }
}
