//! Algebraic property tests over the tensor kernels: the identities the
//! backward passes silently rely on.

use inceptionn_tensor::{conv2d, matmul, matmul_nt, matmul_tn, ConvSpec, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]))
}

fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
    assert_eq!(a.dims(), b.dims());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() <= tol, "{x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(
        a in tensor_strategy(3, 4),
        b in tensor_strategy(3, 4),
        c in tensor_strategy(4, 2),
    ) {
        let lhs = matmul(&(&a + &b), &c);
        let rhs = &matmul(&a, &c) + &matmul(&b, &c);
        assert_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn transpose_reverses_products(
        a in tensor_strategy(3, 5),
        b in tensor_strategy(5, 2),
    ) {
        let lhs = matmul(&a, &b).transpose();
        let rhs = matmul(&b.transpose(), &a.transpose());
        assert_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn fused_transpose_kernels_agree(
        a in tensor_strategy(4, 3),
        b in tensor_strategy(4, 5),
    ) {
        // matmul_tn(a, b) == a^T b ; matmul_nt(x, y) == x y^T.
        assert_close(&matmul_tn(&a, &b), &matmul(&a.transpose(), &b), 1e-3);
        let x = a.transpose(); // 3x4
        assert_close(&matmul_nt(&x, &b.clone().transpose()), &matmul(&x, &b), 1e-3);
    }

    #[test]
    fn scalar_multiplication_commutes_with_matmul(
        a in tensor_strategy(2, 3),
        b in tensor_strategy(3, 2),
        s in -3.0f32..3.0,
    ) {
        let lhs = matmul(&(&a * s), &b);
        let rhs = &matmul(&a, &b) * s;
        assert_close(&lhs, &rhs, 2e-3);
    }

    #[test]
    fn convolution_is_linear_in_the_input(
        x in proptest::collection::vec(-1.0f32..1.0, 2 * 36),
        y in proptest::collection::vec(-1.0f32..1.0, 2 * 36),
        w in proptest::collection::vec(-1.0f32..1.0, 3 * 2 * 9),
    ) {
        let spec = ConvSpec::new(2, 3, 3, 1, 1);
        let xt = Tensor::from_vec(x, &[1, 2, 6, 6]);
        let yt = Tensor::from_vec(y, &[1, 2, 6, 6]);
        let wt = Tensor::from_vec(w, &[3, 18]);
        let bias = Tensor::zeros(&[3]);
        let lhs = conv2d(&(&xt + &yt), &wt, &bias, &spec);
        let rhs = &conv2d(&xt, &wt, &bias, &spec) + &conv2d(&yt, &wt, &bias, &spec);
        assert_close(&lhs, &rhs, 5e-3);
    }

    #[test]
    fn norm_satisfies_triangle_inequality(
        a in tensor_strategy(4, 4),
        b in tensor_strategy(4, 4),
    ) {
        let sum = &a + &b;
        prop_assert!(sum.norm() <= a.norm() + b.norm() + 1e-4);
    }

    #[test]
    fn sum_is_invariant_under_reshape(v in proptest::collection::vec(-5.0f32..5.0, 24)) {
        let a = Tensor::from_vec(v, &[2, 3, 4]);
        let b = a.clone().reshape(&[6, 4]);
        prop_assert!((a.sum() - b.sum()).abs() < 1e-4);
    }
}
