//! Golden-vector verification of the compression engine — the
//! hardware-bringup style test: hand-computed wire bytes for known
//! inputs, pinning the exact on-wire format (tag packing order,
//! LSB-first bit packing, payload forms) against regressions.

use inceptionn_compress::inceptionn::Tag;
use inceptionn_compress::{ErrorBound, InceptionnCodec};
use inceptionn_nicsim::engine::{CompressionEngine, DecompressionEngine};

/// One full burst with every tag class exercised, eb = 2^-10.
///
/// | lane | value   | tag  | payload |
/// |------|---------|------|---------|
/// | 0    | 0.0     | 00   | —       |
/// | 1    | 0.5     | 01   | 0x40    |
/// | 2    | −0.5    | 01   | 0xC0    |
/// | 3    | 1.0     | 11   | 0x3F800000 |
/// | 4    | 0.25    | 01   | 0x20    |
/// | 5    | 2^-11   | 00   | —       |
/// | 6    | 0.75    | 01   | 0x60    |
/// | 7    | −1.5    | 11   | 0xBFC00000 |
///
/// Tag vector (lane 0 in the 2 LSBs): 0xD1D4.
const INPUT: [f32; 8] = [0.0, 0.5, -0.5, 1.0, 0.25, 0.00048828125, 0.75, -1.5];

const GOLDEN: [u8; 14] = [
    0xD4, 0xD1, // 16-bit tag vector, LSB-first
    0x40, // lane 1: +0.5 in the 8-bit form
    0xC0, // lane 2: −0.5
    0x00, 0x00, 0x80, 0x3F, // lane 3: raw bits of 1.0f32
    0x20, // lane 4: +0.25
    0x60, // lane 6: +0.75
    0x00, 0x00, 0xC0, 0xBF, // lane 7: raw bits of −1.5f32
];

#[test]
fn engine_emits_the_golden_bytes() {
    let engine = CompressionEngine::new(ErrorBound::pow2(10));
    let out = engine.process(&INPUT);
    assert_eq!(out.bytes, GOLDEN, "wire format drifted");
    assert_eq!(out.input_bursts, 1);
}

#[test]
fn software_codec_emits_the_golden_bytes() {
    let codec = InceptionnCodec::new(ErrorBound::pow2(10));
    let stream = codec.compress(&INPUT);
    assert_eq!(stream.bytes, GOLDEN);
    assert_eq!(stream.bit_len, 112);
}

#[test]
fn golden_bytes_decode_to_expected_values() {
    let engine = DecompressionEngine::new(ErrorBound::pow2(10));
    let (_, values) = engine.process(&GOLDEN, 8).unwrap();
    let expect = [0.0f32, 0.5, -0.5, 1.0, 0.25, 0.0, 0.75, -1.5];
    assert_eq!(values, expect);
}

#[test]
fn per_value_tags_match_the_table() {
    let codec = InceptionnCodec::new(ErrorBound::pow2(10));
    let want = [
        Tag::Zero,
        Tag::Bits8,
        Tag::Bits8,
        Tag::Full,
        Tag::Bits8,
        Tag::Zero,
        Tag::Bits8,
        Tag::Full,
    ];
    for (v, w) in INPUT.iter().zip(want) {
        assert_eq!(codec.compress_value(*v).tag, w, "value {v}");
    }
}

#[test]
fn dense_mantissa_needs_sixteen_bits() {
    // 0.3337 has set bits beyond the 7-bit fixed-point prefix; at 2^-10
    // only the 16-bit form meets the bound. Fixed field:
    // P = trunc(0.3337f32 * 2^32) = 0x556D5D00; top 15 bits = 0x2AB6;
    // payload = sign 0 << 15 | 0x2AB6.
    let codec = InceptionnCodec::new(ErrorBound::pow2(10));
    let cv = codec.compress_value(0.3337);
    assert_eq!(cv.tag, Tag::Bits16);
    assert_eq!(cv.payload, 0x2AB6);
    let back = codec.decompress_value(cv);
    assert!((back - 0.3337).abs() <= 2f32.powi(-10));
    // And the sign bit lands at bit 15.
    let cv_neg = codec.compress_value(-0.3337);
    assert_eq!(cv_neg.payload, 0x8000 | 0x2AB6);
}
