//! The full TX datapath of Fig. 8: packet DMA → compression engine →
//! virtual FIFO → 10 G Ethernet MAC.
//!
//! [`TxDatapath`] pushes a packet trace through a three-stage queueing
//! model and reports per-packet latency, FIFO occupancy, and MAC
//! utilization. Its purpose is the paper's Sec. VII-C claim: the
//! accelerators are provisioned (256 bit/cycle at 100 MHz = 25.6 Gb/s)
//! so they *never* throttle the 10 Gb/s port — which the tests verify
//! under saturating traffic.

use serde::{Deserialize, Serialize};

use crate::engine::CompressionEngine;
use crate::packet::{Packet, HEADER_BYTES};

/// Stage bandwidths and costs of the TX path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatapathConfig {
    /// Host→NIC DMA bandwidth, bits/s (PCIe Gen3 x8 class).
    pub dma_bps: u64,
    /// MAC line rate, bits/s.
    pub mac_bps: u64,
    /// Fixed per-packet DMA descriptor cost, ns.
    pub dma_fixed_ns: u64,
}

impl Default for DatapathConfig {
    fn default() -> Self {
        DatapathConfig {
            dma_bps: 64_000_000_000,
            mac_bps: 10_000_000_000,
            dma_fixed_ns: 300,
        }
    }
}

/// Per-packet record from a trace run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// When the packet entered the DMA stage, ns.
    pub arrival_ns: u64,
    /// When the packet left the engine stage (or DMA, when bypassed), ns.
    pub engine_done_ns: u64,
    /// When the MAC started serializing the packet, ns.
    pub mac_start_ns: u64,
    /// When the last bit left the MAC, ns.
    pub departure_ns: u64,
    /// Payload bytes on the wire (post-compression).
    pub wire_payload: u64,
    /// Whether the packet went through the engine.
    pub compressed: bool,
}

impl PacketRecord {
    /// NIC traversal latency, ns.
    pub fn latency_ns(&self) -> u64 {
        self.departure_ns - self.arrival_ns
    }

    /// Time spent waiting in the engine→MAC FIFO, ns.
    pub fn fifo_stall_ns(&self) -> u64 {
        self.mac_start_ns - self.engine_done_ns
    }
}

/// Aggregate report of one trace run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatapathReport {
    /// Per-packet records in trace order.
    pub packets: Vec<PacketRecord>,
    /// Peak number of packets resident in the virtual FIFO.
    pub peak_fifo_packets: usize,
    /// Fraction of the run during which the MAC was transmitting.
    pub mac_utilization: f64,
    /// Total run time, ns.
    pub makespan_ns: u64,
}

impl DatapathReport {
    /// Mean per-packet latency, ns (0 for an empty trace).
    pub fn mean_latency_ns(&self) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        self.packets
            .iter()
            .map(|p| p.latency_ns() as f64)
            .sum::<f64>()
            / self.packets.len() as f64
    }

    /// Achieved payload goodput over the run, bits/s (pre-compression
    /// application bytes delivered per wall-clock).
    pub fn goodput_bps(&self, original_payload_bytes: u64) -> f64 {
        if self.makespan_ns == 0 {
            return 0.0;
        }
        original_payload_bytes as f64 * 8.0 * 1e9 / self.makespan_ns as f64
    }

    /// Replays the report into an obs buffer: one virtual-time span per
    /// packet, a FIFO-stall counter per queued packet, and the peak FIFO
    /// occupancy. Timestamps are the trace's own virtual nanoseconds.
    pub fn record_into(&self, buf: &mut obs::EventBuf) {
        if !buf.is_on() {
            return;
        }
        for (i, p) in self.packets.iter().enumerate() {
            let key = i as u32;
            buf.push(obs::Event::complete(
                obs::labels::DP_PACKET,
                obs::Domain::Net,
                0,
                key,
                p.arrival_ns,
                p.latency_ns(),
            ));
            let stall = p.fifo_stall_ns();
            if stall > 0 {
                buf.push(obs::Event::count(
                    obs::labels::DP_STALL_NS,
                    obs::Domain::Net,
                    0,
                    key,
                    p.engine_done_ns,
                    stall,
                ));
            }
        }
        buf.push(obs::Event::count(
            obs::labels::DP_FIFO_PEAK,
            obs::Domain::Net,
            0,
            0,
            self.makespan_ns,
            self.peak_fifo_packets as u64,
        ));
    }
}

/// The TX datapath model.
#[derive(Debug, Clone)]
pub struct TxDatapath {
    cfg: DatapathConfig,
    engine: CompressionEngine,
}

impl TxDatapath {
    /// Creates the datapath with the given engine.
    pub fn new(cfg: DatapathConfig, engine: CompressionEngine) -> Self {
        TxDatapath { cfg, engine }
    }

    /// Pushes a trace of `(arrival_ns, packet)` pairs (sorted by
    /// arrival) through the path.
    ///
    /// # Panics
    ///
    /// Panics if arrivals are not non-decreasing.
    pub fn process_trace(&self, trace: &[(u64, Packet)]) -> DatapathReport {
        let mut dma_free = 0u64;
        let mut engine_free = 0u64;
        let mut mac_free = 0u64;
        let mut mac_busy_ns = 0u64;
        let mut records = Vec::with_capacity(trace.len());
        // FIFO residency intervals (engine-out .. mac-start).
        let mut fifo_intervals: Vec<(u64, u64)> = Vec::with_capacity(trace.len());
        let mut last_arrival = 0u64;
        for (arrival, pkt) in trace {
            assert!(*arrival >= last_arrival, "trace must be sorted by arrival");
            last_arrival = *arrival;
            // Stage 1: DMA.
            let in_bytes = (pkt.payload.len() + HEADER_BYTES) as u64;
            let dma_time = self.cfg.dma_fixed_ns + in_bytes * 8 * 1_000_000_000 / self.cfg.dma_bps;
            let dma_done = (*arrival).max(dma_free) + dma_time;
            dma_free = dma_done;
            // Stage 2: compression engine (bypass for regular traffic).
            let compressible =
                pkt.is_compressible() && pkt.payload.len() % 4 == 0 && !pkt.payload.is_empty();
            let (engine_done, wire_payload) = if compressible {
                let out = self.engine.process_bytes(&pkt.payload);
                let done = dma_done.max(engine_free) + out.latency_ns();
                engine_free = done;
                (done, out.bytes.len() as u64)
            } else {
                (dma_done, pkt.payload.len() as u64)
            };
            // Stage 3: virtual FIFO then MAC.
            let mac_start = engine_done.max(mac_free);
            let wire_bits = (wire_payload + HEADER_BYTES as u64) * 8;
            let mac_time = wire_bits * 1_000_000_000 / self.cfg.mac_bps;
            let departure = mac_start + mac_time;
            mac_free = departure;
            mac_busy_ns += mac_time;
            fifo_intervals.push((engine_done, mac_start));
            records.push(PacketRecord {
                arrival_ns: *arrival,
                engine_done_ns: engine_done,
                mac_start_ns: mac_start,
                departure_ns: departure,
                wire_payload,
                compressed: compressible,
            });
        }
        let makespan = records.last().map(|r| r.departure_ns).unwrap_or(0);
        // Peak FIFO occupancy by sweeping residency intervals.
        let mut events: Vec<(u64, i32)> = Vec::with_capacity(fifo_intervals.len() * 2);
        for &(enter, exit) in &fifo_intervals {
            if exit > enter {
                events.push((enter, 1));
                events.push((exit, -1));
            }
        }
        events.sort_unstable();
        let mut occupancy = 0i32;
        let mut peak = 0i32;
        for (_, delta) in events {
            occupancy += delta;
            peak = peak.max(occupancy);
        }
        DatapathReport {
            peak_fifo_packets: peak.max(0) as usize,
            mac_utilization: if makespan == 0 {
                0.0
            } else {
                mac_busy_ns as f64 / makespan as f64
            },
            makespan_ns: makespan,
            packets: records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inceptionn_compress::ErrorBound;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gradient_packet(n_values: usize, seed: u64) -> Packet {
        let mut rng = StdRng::seed_from_u64(seed);
        let payload: Vec<u8> = (0..n_values)
            .flat_map(|_| {
                let u: f32 = rng.gen_range(-1.0f32..1.0);
                (u * u * u * 0.05).to_le_bytes()
            })
            .collect();
        Packet::gradient(payload.into())
    }

    fn datapath() -> TxDatapath {
        TxDatapath::new(
            DatapathConfig::default(),
            CompressionEngine::new(ErrorBound::pow2(10)),
        )
    }

    #[test]
    fn saturating_gradient_trace_keeps_mac_fed() {
        // Back-to-back MTU gradient packets: the engine (25.6 Gb/s) must
        // not starve the 10 Gb/s MAC; with ~5x compression the MAC is
        // *underfed by design* (less wire data), so check goodput instead:
        // application bytes drain faster than line rate.
        let dp = datapath();
        let trace: Vec<(u64, Packet)> = (0..200)
            .map(|i| (i * 1_200, gradient_packet(362, i)))
            .collect();
        let original: u64 = trace.iter().map(|(_, p)| p.payload.len() as u64).sum();
        let report = dp.process_trace(&trace);
        let goodput = report.goodput_bps(original);
        assert!(
            goodput > 9_000_000_000.0,
            "goodput {:.2} Gb/s under line rate",
            goodput / 1e9
        );
    }

    #[test]
    fn uncompressed_trace_is_mac_bound() {
        let dp = datapath();
        // Regular (bypass) MTU packets arriving faster than line rate.
        let trace: Vec<(u64, Packet)> = (0..100)
            .map(|i| (i * 500, Packet::regular(0, vec![0u8; 1448].into())))
            .collect();
        let report = dp.process_trace(&trace);
        assert!(report.mac_utilization > 0.95, "{}", report.mac_utilization);
        // Queueing builds up in the FIFO since arrivals outpace the MAC.
        assert!(report.peak_fifo_packets > 5, "{}", report.peak_fifo_packets);
    }

    #[test]
    fn latency_is_microsecond_scale_when_unloaded() {
        let dp = datapath();
        let report = dp.process_trace(&[(0, gradient_packet(362, 9))]);
        let lat = report.packets[0].latency_ns();
        // DMA (~500ns) + engine (~500ns) + MAC serialization (<1.3us).
        assert!((500..4_000).contains(&lat), "latency {lat} ns");
    }

    #[test]
    fn compression_shrinks_wire_payload() {
        let dp = datapath();
        let report = dp.process_trace(&[(0, gradient_packet(362, 3))]);
        let rec = &report.packets[0];
        assert!(rec.compressed);
        assert!(rec.wire_payload < 362 * 4 / 2, "wire {}", rec.wire_payload);
    }

    #[test]
    fn mixed_traffic_orders_fifo_correctly() {
        let dp = datapath();
        let trace = vec![
            (0u64, gradient_packet(362, 1)),
            (100, Packet::regular(0x10, vec![7u8; 200].into())),
            (200, gradient_packet(362, 2)),
        ];
        let report = dp.process_trace(&trace);
        assert_eq!(report.packets.len(), 3);
        assert!(!report.packets[1].compressed);
        // Departures are strictly ordered (single MAC).
        assert!(report.packets[0].departure_ns < report.packets[1].departure_ns);
        assert!(report.packets[1].departure_ns < report.packets[2].departure_ns);
    }

    #[test]
    fn report_replays_into_obs_with_consistent_stalls() {
        let dp = datapath();
        let trace: Vec<(u64, Packet)> = (0..50)
            .map(|i| (i * 500, Packet::regular(0, vec![0u8; 1448].into())))
            .collect();
        let report = dp.process_trace(&trace);
        let mut buf = obs::EventBuf::local();
        report.record_into(&mut buf);
        let summary = obs::export::Summary::of(buf.events());
        assert_eq!(summary.dp_packets, 50);
        assert_eq!(summary.dp_fifo_peak, report.peak_fifo_packets as u64);
        let want_stall: u64 = report.packets.iter().map(|p| p.fifo_stall_ns()).sum();
        assert!(want_stall > 0, "saturating trace must queue");
        assert_eq!(summary.dp_stall_ns, want_stall);
        // A disabled buffer records nothing.
        let mut off = obs::EventBuf::disabled();
        report.record_into(&mut off);
        assert!(off.events().is_empty());
    }

    #[test]
    fn empty_trace_is_trivial() {
        let report = datapath().process_trace(&[]);
        assert_eq!(report.makespan_ns, 0);
        assert_eq!(report.mean_latency_ns(), 0.0);
        assert_eq!(report.peak_fifo_packets, 0);
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn rejects_unsorted_trace() {
        datapath().process_trace(&[(100, gradient_packet(8, 1)), (50, gradient_packet(8, 2))]);
    }
}
