//! Splitting gradient streams into MTU-sized ToS-tagged packets.
//!
//! The NIC engines operate per packet (Sec. VI-A): a multi-megabyte
//! gradient transfer reaches them as thousands of independent
//! ~1448-byte TCP segments, each compressed on its own. This module is
//! the software side of that contract: [`packetize`] cuts a gradient
//! slice into gradient packets sized so every payload is whole `f32`s,
//! and [`reassemble`] restores the stream on the receive side. The
//! tests pin the end-to-end property the system relies on: per-packet
//! compression composes to exactly the same values as compressing the
//! whole stream.

use bytes::Bytes;
use inceptionn_compress::DecodeError;

use crate::engine::NS_PER_CYCLE;
use crate::nic::NicPipeline;
use crate::packet::Packet;

/// `f32` lanes per MTU payload (1448 B / 4).
pub const VALUES_PER_PACKET: usize = 362;

/// ToS value for plain (never-compressed) traffic emitted by
/// [`encode_payload`] when the sender asks for a lossless transfer.
pub const TOS_PLAIN: u8 = 0;

/// What the TX NIC did to one application payload: the sizes that hit
/// the wire and the cycles/latency the datapath spent producing them.
///
/// Transport layers (see `inceptionn-distrib`'s `NicFabric`) use this to
/// account wire volume and engine time per transfer, and feed
/// `packet_wire_bytes` to `inceptionn-netsim`'s per-message latency
/// charge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PayloadTrace {
    /// Application payload bytes entering the TX NIC.
    pub payload_bytes_in: u64,
    /// Post-compression payload bytes of each packet, in order.
    pub packet_wire_bytes: Vec<u64>,
    /// TX NIC traversal latency, nanoseconds (base cost + engine).
    pub nic_latency_ns: u64,
    /// Compression-engine cycles spent on this payload.
    pub engine_cycles: u64,
}

impl PayloadTrace {
    /// Number of packets the payload was cut into.
    pub fn packets(&self) -> u64 {
        self.packet_wire_bytes.len() as u64
    }

    /// Total post-compression payload bytes on the wire.
    pub fn wire_payload_bytes(&self) -> u64 {
        self.packet_wire_bytes.iter().sum()
    }

    /// Achieved payload compression ratio (1.0 for an empty payload).
    pub fn wire_ratio(&self) -> f64 {
        let out = self.wire_payload_bytes();
        if out == 0 {
            1.0
        } else {
            self.payload_bytes_in as f64 / out as f64
        }
    }
}

/// Pushes one application payload through the TX NIC packet by packet:
/// the reusable per-payload datapath entry point.
///
/// `compressible` selects the ToS tag: gradient packets
/// ([`TOS_COMPRESSED`](crate::TOS_COMPRESSED)) traverse the compression
/// engine; plain packets ([`TOS_PLAIN`]) bypass it and carry the raw
/// little-endian `f32` bytes. Returns the on-wire packets plus a
/// [`PayloadTrace`] of what the datapath did.
pub fn encode_payload(
    tx: &mut NicPipeline,
    values: &[f32],
    compressible: bool,
) -> (Vec<Packet>, PayloadTrace) {
    let mut wire = Vec::with_capacity(values.len().div_ceil(VALUES_PER_PACKET));
    let trace = encode_payload_into(tx, values, compressible, &mut wire);
    (wire, trace)
}

/// [`encode_payload`] writing **into** a caller-owned packet vector
/// (cleared first), so exchange loops can recycle the allocation across
/// legs instead of materializing a fresh `Vec` per transfer.
pub fn encode_payload_into(
    tx: &mut NicPipeline,
    values: &[f32],
    compressible: bool,
    wire: &mut Vec<Packet>,
) -> PayloadTrace {
    let base = tx.config().base_latency_ns;
    let mut trace = PayloadTrace {
        payload_bytes_in: (values.len() * 4) as u64,
        packet_wire_bytes: Vec::with_capacity(values.len().div_ceil(VALUES_PER_PACKET)),
        ..PayloadTrace::default()
    };
    wire.clear();
    wire.reserve(values.len().div_ceil(VALUES_PER_PACKET));
    for chunk in values.chunks(VALUES_PER_PACKET) {
        let payload: Vec<u8> = chunk.iter().flat_map(|v| v.to_le_bytes()).collect();
        let pkt = if compressible {
            Packet::gradient(Bytes::from(payload))
        } else {
            Packet::regular(TOS_PLAIN, Bytes::from(payload))
        };
        let (out, ns) = tx.transmit(pkt);
        trace.packet_wire_bytes.push(out.payload.len() as u64);
        trace.nic_latency_ns += ns;
        // `transmit` reports base cost plus engine time; recover cycles.
        trace.engine_cycles += ns.saturating_sub(base) / NS_PER_CYCLE;
        wire.push(out);
    }
    trace
}

/// Receives on-wire packets produced by [`encode_payload`] through the
/// RX NIC and reassembles the value stream. Returns the values, the RX
/// NIC traversal latency in nanoseconds, and the decompression-engine
/// cycles spent.
///
/// # Errors
///
/// Returns [`DecodeError`] if a compressed payload is truncated or
/// corrupt (cannot happen when both NICs share a bound).
pub fn decode_payload(
    rx: &mut NicPipeline,
    wire: &[Packet],
) -> Result<(Vec<f32>, u64, u64), DecodeError> {
    let mut values = Vec::new();
    let (total_ns, cycles) = decode_payload_into(rx, wire, &mut values)?;
    Ok((values, total_ns, cycles))
}

/// [`decode_payload`] reassembling **into** a caller-owned value buffer
/// (cleared first), so receive loops can recycle the allocation across
/// legs. Returns the RX NIC traversal latency in nanoseconds and the
/// decompression-engine cycles spent.
///
/// # Errors
///
/// Exactly those of [`decode_payload`].
///
/// # Panics
///
/// Panics if a decompressed payload is not whole `f32`s (like
/// [`reassemble`]).
pub fn decode_payload_into(
    rx: &mut NicPipeline,
    wire: &[Packet],
    values: &mut Vec<f32>,
) -> Result<(u64, u64), DecodeError> {
    let base = rx.config().base_latency_ns;
    values.clear();
    let mut total_ns = 0u64;
    let mut cycles = 0u64;
    for pkt in wire {
        let (out, ns) = rx.receive(pkt.clone())?;
        total_ns += ns;
        cycles += ns.saturating_sub(base) / NS_PER_CYCLE;
        assert!(
            out.payload.len() % 4 == 0,
            "gradient payload must be whole f32s"
        );
        values.extend(
            out.payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
    }
    Ok((total_ns, cycles))
}

/// Cuts a gradient slice into ToS-tagged MTU packets (the last packet
/// may be short).
pub fn packetize(values: &[f32]) -> Vec<Packet> {
    values
        .chunks(VALUES_PER_PACKET)
        .map(|chunk| {
            let payload: Vec<u8> = chunk.iter().flat_map(|v| v.to_le_bytes()).collect();
            Packet::gradient(Bytes::from(payload))
        })
        .collect()
}

/// Restores the gradient stream from received (already-decompressed)
/// gradient packets.
///
/// # Panics
///
/// Panics if any payload is not whole `f32`s.
pub fn reassemble(packets: &[Packet]) -> Vec<f32> {
    let mut out = Vec::new();
    for p in packets {
        assert!(
            p.payload.len() % 4 == 0,
            "gradient payload must be whole f32s"
        );
        out.extend(
            p.payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
    }
    out
}

/// Convenience: pushes a gradient slice through a TX NIC and an RX NIC
/// packet by packet, returning the values the receiver reassembles and
/// the summed NIC latency in nanoseconds.
///
/// # Errors
///
/// Returns [`DecodeError`] if any wire packet fails to decode (cannot
/// happen for NICs configured with the same bound).
pub fn transfer_gradients(
    tx: &mut NicPipeline,
    rx: &mut NicPipeline,
    values: &[f32],
) -> Result<(Vec<f32>, u64), DecodeError> {
    let (wire, trace) = encode_payload(tx, values, true);
    let (restored, rx_ns, _) = decode_payload(rx, &wire)?;
    Ok((restored, trace.nic_latency_ns + rx_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::NicConfig;
    use inceptionn_compress::{ErrorBound, InceptionnCodec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gradients(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f32 = rng.gen_range(-1.0f32..1.0);
                u * u * u * 0.1
            })
            .collect()
    }

    #[test]
    fn packetize_reassemble_is_lossless() {
        for n in [0usize, 1, 361, 362, 363, 3000] {
            let vals = gradients(n, n as u64);
            let packets = packetize(&vals);
            assert_eq!(packets.len(), n.div_ceil(VALUES_PER_PACKET));
            assert_eq!(reassemble(&packets), vals);
        }
    }

    #[test]
    fn per_packet_compression_equals_whole_stream_quantization() {
        // The property the distributed algorithm relies on: cutting the
        // stream at packet boundaries does not change what the receiver
        // sees, because the codec is per-value (groups of 8 divide 362?
        // no — 362 = 45*8 + 2, so packet boundaries do NOT align with
        // burst groups, which is exactly what this test must survive).
        let bound = ErrorBound::pow2(10);
        let mut tx = NicPipeline::new(NicConfig {
            bound,
            base_latency_ns: 0,
        });
        let mut rx = NicPipeline::new(*tx.config());
        let vals = gradients(2000, 5);
        let (received, ns) = transfer_gradients(&mut tx, &mut rx, &vals).unwrap();
        let want = InceptionnCodec::new(bound).quantize(&vals);
        assert_eq!(received, want);
        assert!(ns > 0);
    }

    #[test]
    fn nic_stats_accumulate_across_the_transfer() {
        let mut tx = NicPipeline::new(NicConfig::default());
        let mut rx = NicPipeline::new(NicConfig::default());
        let vals = gradients(3620, 7);
        transfer_gradients(&mut tx, &mut rx, &vals).unwrap();
        assert_eq!(tx.stats().compressed_packets, 10);
        assert_eq!(tx.stats().tx_payload_in, 3620 * 4);
        assert!(tx.stats().tx_ratio() > 2.0);
    }

    #[test]
    fn empty_stream_transfers_trivially() {
        let mut tx = NicPipeline::new(NicConfig::default());
        let mut rx = NicPipeline::new(NicConfig::default());
        let (out, ns) = transfer_gradients(&mut tx, &mut rx, &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(ns, 0);
    }

    #[test]
    fn encode_payload_traces_wire_sizes_and_cycles() {
        let mut tx = NicPipeline::new(NicConfig::default());
        let mut rx = NicPipeline::new(NicConfig::default());
        let vals = gradients(1000, 11);
        let (wire, trace) = encode_payload(&mut tx, &vals, true);
        assert_eq!(trace.packets(), 3);
        assert_eq!(trace.payload_bytes_in, 4000);
        assert_eq!(
            trace.wire_payload_bytes(),
            wire.iter().map(|p| p.payload.len() as u64).sum::<u64>()
        );
        assert!(trace.wire_ratio() > 1.0, "ratio {}", trace.wire_ratio());
        assert!(trace.engine_cycles > 0);
        assert!(trace.nic_latency_ns > 3 * tx.config().base_latency_ns);

        let (restored, rx_ns, rx_cycles) = decode_payload(&mut rx, &wire).unwrap();
        assert_eq!(
            restored,
            InceptionnCodec::new(tx.config().bound).quantize(&vals)
        );
        assert!(rx_ns > 0 && rx_cycles > 0);
    }

    #[test]
    fn plain_payload_bypasses_engines_bit_exactly() {
        let mut tx = NicPipeline::new(NicConfig::default());
        let mut rx = NicPipeline::new(NicConfig::default());
        let vals = gradients(725, 13);
        let (wire, trace) = encode_payload(&mut tx, &vals, false);
        assert!(wire.iter().all(|p| !p.is_compressible()));
        assert_eq!(trace.wire_payload_bytes(), trace.payload_bytes_in);
        assert_eq!(trace.engine_cycles, 0);
        let (restored, _, rx_cycles) = decode_payload(&mut rx, &wire).unwrap();
        assert_eq!(restored, vals, "bypass path must be lossless");
        assert_eq!(rx_cycles, 0);
        assert_eq!(tx.stats().compressed_packets, 0);
    }
}
