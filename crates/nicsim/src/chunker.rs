//! Splitting gradient streams into MTU-sized ToS-tagged packets.
//!
//! The NIC engines operate per packet (Sec. VI-A): a multi-megabyte
//! gradient transfer reaches them as thousands of independent
//! ~1448-byte TCP segments, each compressed on its own. This module is
//! the software side of that contract: [`packetize`] cuts a gradient
//! slice into gradient packets sized so every payload is whole `f32`s,
//! and [`reassemble`] restores the stream on the receive side. The
//! tests pin the end-to-end property the system relies on: per-packet
//! compression composes to exactly the same values as compressing the
//! whole stream.

use bytes::Bytes;
use inceptionn_compress::DecodeError;

use crate::nic::NicPipeline;
use crate::packet::Packet;

/// `f32` lanes per MTU payload (1448 B / 4).
pub const VALUES_PER_PACKET: usize = 362;

/// Cuts a gradient slice into ToS-tagged MTU packets (the last packet
/// may be short).
pub fn packetize(values: &[f32]) -> Vec<Packet> {
    values
        .chunks(VALUES_PER_PACKET)
        .map(|chunk| {
            let payload: Vec<u8> = chunk.iter().flat_map(|v| v.to_le_bytes()).collect();
            Packet::gradient(Bytes::from(payload))
        })
        .collect()
}

/// Restores the gradient stream from received (already-decompressed)
/// gradient packets.
///
/// # Panics
///
/// Panics if any payload is not whole `f32`s.
pub fn reassemble(packets: &[Packet]) -> Vec<f32> {
    let mut out = Vec::new();
    for p in packets {
        assert!(
            p.payload.len() % 4 == 0,
            "gradient payload must be whole f32s"
        );
        out.extend(
            p.payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
    }
    out
}

/// Convenience: pushes a gradient slice through a TX NIC and an RX NIC
/// packet by packet, returning the values the receiver reassembles and
/// the summed NIC latency in nanoseconds.
///
/// # Errors
///
/// Returns [`DecodeError`] if any wire packet fails to decode (cannot
/// happen for NICs configured with the same bound).
pub fn transfer_gradients(
    tx: &mut NicPipeline,
    rx: &mut NicPipeline,
    values: &[f32],
) -> Result<(Vec<f32>, u64), DecodeError> {
    let mut received = Vec::with_capacity(values.len().div_ceil(VALUES_PER_PACKET));
    let mut total_ns = 0u64;
    for pkt in packetize(values) {
        let (wire, tx_ns) = tx.transmit(pkt);
        let (restored, rx_ns) = rx.receive(wire)?;
        total_ns += tx_ns + rx_ns;
        received.push(restored);
    }
    Ok((reassemble(&received), total_ns))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::NicConfig;
    use inceptionn_compress::{ErrorBound, InceptionnCodec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gradients(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f32 = rng.gen_range(-1.0f32..1.0);
                u * u * u * 0.1
            })
            .collect()
    }

    #[test]
    fn packetize_reassemble_is_lossless() {
        for n in [0usize, 1, 361, 362, 363, 3000] {
            let vals = gradients(n, n as u64);
            let packets = packetize(&vals);
            assert_eq!(packets.len(), n.div_ceil(VALUES_PER_PACKET));
            assert_eq!(reassemble(&packets), vals);
        }
    }

    #[test]
    fn per_packet_compression_equals_whole_stream_quantization() {
        // The property the distributed algorithm relies on: cutting the
        // stream at packet boundaries does not change what the receiver
        // sees, because the codec is per-value (groups of 8 divide 362?
        // no — 362 = 45*8 + 2, so packet boundaries do NOT align with
        // burst groups, which is exactly what this test must survive).
        let bound = ErrorBound::pow2(10);
        let mut tx = NicPipeline::new(NicConfig {
            bound,
            base_latency_ns: 0,
        });
        let mut rx = NicPipeline::new(*tx.config());
        let vals = gradients(2000, 5);
        let (received, ns) = transfer_gradients(&mut tx, &mut rx, &vals).unwrap();
        let want = InceptionnCodec::new(bound).quantize(&vals);
        assert_eq!(received, want);
        assert!(ns > 0);
    }

    #[test]
    fn nic_stats_accumulate_across_the_transfer() {
        let mut tx = NicPipeline::new(NicConfig::default());
        let mut rx = NicPipeline::new(NicConfig::default());
        let vals = gradients(3620, 7);
        transfer_gradients(&mut tx, &mut rx, &vals).unwrap();
        assert_eq!(tx.stats().compressed_packets, 10);
        assert_eq!(tx.stats().tx_payload_in, 3620 * 4);
        assert!(tx.stats().tx_ratio() > 2.0);
    }

    #[test]
    fn empty_stream_transfers_trivially() {
        let mut tx = NicPipeline::new(NicConfig::default());
        let mut rx = NicPipeline::new(NicConfig::default());
        let (out, ns) = transfer_gradients(&mut tx, &mut rx, &[]).unwrap();
        assert!(out.is_empty());
        assert_eq!(ns, 0);
    }
}
