//! Switch-resident in-network aggregation: the reduce unit a switch
//! port runs when gradient packets are folded in flight.
//!
//! NetReduce (PAPERS.md) observes that the gather leg of a
//! worker-aggregator exchange disappears entirely once the switch sums
//! gradient packets as they arrive: no contribution ever descends to an
//! aggregation host. This module models that reduce unit at packet
//! granularity, composing with the INCEPTIONN wire codec through the
//! reduction-friendly hooks of `inceptionn_compress::reduction`:
//!
//! * **plain path** — `TOS_PLAIN` packets carry raw little-endian `f32`
//!   lanes; the unit adds them straight into the running sum;
//! * **compressed path** — `TOS_COMPRESSED` packets are walked value by
//!   value with the streaming fold
//!   ([`fold_compressed_payload_into`]) — constant space, no
//!   materialized vector, each decoded value added in stream order.
//!
//! Both paths are plain `f32` adds in worker arrival order, so the
//! switch sum is bit-identical to the host-side gather fold over the
//! same (round-tripped) values — the property the trainer's
//! switch-reduce strategy relies on.

use inceptionn_compress::reduction::fold_compressed_payload_into;
use inceptionn_compress::{DecodeError, ErrorBound, InceptionnCodec};

use crate::flat::FlatPayload;
use crate::packet::Packet;

/// Reduce-unit cycles charged per 8-lane group of folded values: one
/// decode+add per lane per cycle, mirroring the NIC engines' burst
/// width.
const LANES_PER_CYCLE: u64 = 8;

/// The per-port gradient reduce unit of an aggregation-capable switch.
///
/// Holds one running sum sized to the gradient vector; workers'
/// contributions are folded in the order they are offered (the
/// collective layer presents them in worker-id order, which pins the
/// floating-point fold order and hence bit-identity with the host
/// path).
///
/// # Examples
///
/// ```
/// use inceptionn_nicsim::switchagg::SwitchReducer;
/// use inceptionn_nicsim::{encode_payload, NicConfig, NicPipeline};
///
/// let mut tx = NicPipeline::new(NicConfig::default());
/// let grad = vec![0.5f32; 100];
/// let (wire, _) = encode_payload(&mut tx, &grad, false);
/// let mut unit = SwitchReducer::plain(100);
/// unit.fold_contribution(&wire).unwrap();
/// unit.fold_contribution(&wire).unwrap();
/// assert_eq!(unit.sum()[0], 1.0);
/// assert_eq!(unit.contributions(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SwitchReducer {
    acc: Vec<f32>,
    codec: Option<InceptionnCodec>,
    contributions: u32,
    cycles: u64,
}

impl SwitchReducer {
    /// A reduce unit for uncompressed gradient traffic of `values`
    /// lanes.
    pub fn plain(values: usize) -> Self {
        SwitchReducer {
            acc: vec![0.0; values],
            codec: None,
            contributions: 0,
            cycles: 0,
        }
    }

    /// A reduce unit that also decodes INCEPTIONN-compressed packets
    /// under `bound` (plain packets are still accepted — a mixed
    /// contribution stream folds fine).
    pub fn with_codec(values: usize, bound: ErrorBound) -> Self {
        SwitchReducer {
            acc: vec![0.0; values],
            codec: Some(InceptionnCodec::new(bound)),
            contributions: 0,
            cycles: 0,
        }
    }

    /// Folds one worker's full contribution — the packet sequence of
    /// one gradient transfer, in order — into the running sum.
    ///
    /// # Errors
    ///
    /// Fails with the codec's [`DecodeError`] on a corrupt or truncated
    /// compressed payload; the accumulator is left with the partial
    /// fold, matching what real reduce hardware would have committed —
    /// callers recover by restarting the exchange, not the packet.
    ///
    /// # Panics
    ///
    /// Panics if the contribution does not cover exactly the unit's
    /// lane count, if a compressed packet arrives on a plain-only unit,
    /// or if a plain payload is not whole `f32`s — all collective-layer
    /// bugs, not wire faults.
    pub fn fold_contribution(&mut self, packets: &[Packet]) -> Result<(), DecodeError> {
        let mut at = 0usize;
        for pkt in packets {
            at += self.fold_packet(at, pkt)?;
        }
        assert_eq!(
            at,
            self.acc.len(),
            "contribution covered {at} of {} lanes",
            self.acc.len()
        );
        self.contributions += 1;
        Ok(())
    }

    /// Folds one worker's contribution in flat wire form — the exact
    /// same per-segment fold as [`fold_contribution`](Self::fold_contribution)
    /// over equivalent packets (segments arrive in wire order, values in
    /// stream order), so the sum stays bit-identical between
    /// representations and no per-contribution buffers are allocated.
    ///
    /// # Errors
    ///
    /// Fails with [`DecodeError`] on a corrupt or truncated compressed
    /// segment, leaving the partial fold committed (see
    /// [`fold_contribution`](Self::fold_contribution)).
    ///
    /// # Panics
    ///
    /// Panics on lane-count mismatch, a compressed segment on a
    /// plain-only unit, or a ragged plain segment — collective-layer
    /// bugs, not wire faults.
    pub fn fold_flat_contribution(&mut self, payload: &FlatPayload) -> Result<(), DecodeError> {
        let mut at = 0usize;
        for (seg, bytes) in payload.iter() {
            let values = seg.value_count as usize;
            assert!(
                at + values <= self.acc.len(),
                "contribution overruns the sum"
            );
            if seg.compressed {
                let codec = self
                    .codec
                    .as_ref()
                    .expect("compressed segment reached a plain-only reduce unit");
                fold_compressed_payload_into(codec, &mut self.acc[at..at + values], bytes, values)?;
            } else {
                assert!(
                    bytes.len() == values * 4,
                    "plain gradient segment must be whole f32s"
                );
                for (lane, chunk) in bytes.chunks_exact(4).enumerate() {
                    self.acc[at + lane] +=
                        f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
            }
            self.cycles += (values as u64).div_ceil(LANES_PER_CYCLE);
            at += values;
        }
        assert_eq!(
            at,
            self.acc.len(),
            "contribution covered {at} of {} lanes",
            self.acc.len()
        );
        self.contributions += 1;
        Ok(())
    }

    /// Folds one packet's values into the sum starting at lane `at`;
    /// returns how many lanes it covered.
    fn fold_packet(&mut self, at: usize, pkt: &Packet) -> Result<usize, DecodeError> {
        if pkt.is_compressible() {
            let values = pkt
                .value_count
                .expect("compressed gradient packet carries its value count");
            let codec = self
                .codec
                .as_ref()
                .expect("compressed packet reached a plain-only reduce unit");
            assert!(
                at + values <= self.acc.len(),
                "contribution overruns the sum"
            );
            fold_compressed_payload_into(
                codec,
                &mut self.acc[at..at + values],
                &pkt.payload,
                values,
            )?;
            self.cycles += (values as u64).div_ceil(LANES_PER_CYCLE);
            Ok(values)
        } else {
            assert!(
                pkt.payload.len().is_multiple_of(4),
                "plain gradient payload must be whole f32s"
            );
            let values = pkt.payload.len() / 4;
            assert!(
                at + values <= self.acc.len(),
                "contribution overruns the sum"
            );
            for (lane, chunk) in pkt.payload.chunks_exact(4).enumerate() {
                self.acc[at + lane] += f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            }
            self.cycles += (values as u64).div_ceil(LANES_PER_CYCLE);
            Ok(values)
        }
    }

    /// The running sum.
    pub fn sum(&self) -> &[f32] {
        &self.acc
    }

    /// Consumes the unit, returning the folded sum.
    pub fn into_sum(self) -> Vec<f32> {
        self.acc
    }

    /// How many full contributions have been folded.
    pub fn contributions(&self) -> u32 {
        self.contributions
    }

    /// Reduce-unit cycles spent folding so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the sum and counters for the next iteration, keeping the
    /// codec configuration.
    pub fn reset(&mut self) {
        self.acc.fill(0.0);
        self.contributions = 0;
        self.cycles = 0;
    }
}

/// Reduce-unit cycles for folding one sparsified contribution: the
/// unit streams the frame's `(index, value)` pairs through one indexed
/// accumulate port per cycle (random-access lanes don't batch the way
/// dense lanes do).
pub fn sparse_fold_cycles(pairs: u64) -> u64 {
    pairs.max(1)
}

/// The switch reduce unit for homomorphic sketch traffic: folds
/// compressed frames **without decompressing them to `f32`**.
///
/// Where [`SwitchReducer`] decodes every contribution into dense
/// gradient lanes before adding, this unit exploits the sketch codec's
/// additive structure (`inceptionn_compress::sketch`): frames fold
/// into a fixed-point `i64` accumulator by exact integer addition, and
/// the dense gradient only materializes once, at
/// [`finish_into`](Self::finish_into). Because integer addition is
/// associative and commutative and the finish step is the codec's own
/// grid conversion, the result is bit-identical to merging the same
/// frames host-side with `SketchFrame::add_compressed` and decoding —
/// on any transport, in any fold order. (The collective layer still
/// folds in worker order, matching the dense unit's convention.)
#[derive(Debug, Clone)]
pub struct SketchSwitchUnit {
    q: Vec<i64>,
    frac_bits: u8,
    contributions: u32,
    cycles: u64,
}

impl SketchSwitchUnit {
    /// A reduce unit for `values` gradient lanes at the codec's grid
    /// precision.
    pub fn new(values: usize, frac_bits: u8) -> Self {
        SketchSwitchUnit {
            q: vec![0i64; values],
            frac_bits,
            contributions: 0,
            cycles: 0,
        }
    }

    /// Gradient lane count.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the unit has zero lanes.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// The grid precision contributions must arrive at.
    pub fn frac_bits(&self) -> u8 {
        self.frac_bits
    }

    /// Folds one worker's sketch frame natively: exact `i64` adds in
    /// the compressed domain, 64-bit cells streamed eight lanes per
    /// cycle like the dense unit's `f32` lanes.
    ///
    /// # Errors
    ///
    /// Fails with [`DecodeError`] on a malformed frame, a lane-count
    /// mismatch, or a grid-precision mismatch; the accumulator keeps
    /// whatever the partial fold committed (callers restart the
    /// exchange, as with [`SwitchReducer`]).
    pub fn fold_frame(&mut self, bytes: &[u8]) -> Result<(), DecodeError> {
        let meta = inceptionn_compress::sketch::fold_frame_into_q(bytes, &mut self.q)?;
        if meta.frac_bits != self.frac_bits {
            return Err(DecodeError {
                at_value: 0,
                bit_offset: 0,
                tag: None,
            });
        }
        let payload_words =
            ((bytes.len() - inceptionn_compress::sketch::FRAME_HEADER_BYTES) as u64).div_ceil(8);
        self.cycles += payload_words.div_ceil(LANES_PER_CYCLE).max(1);
        self.contributions += 1;
        Ok(())
    }

    /// Folds an uncompressed contribution by re-quantizing it to the
    /// grid — the in-process loopback path, where "the wire" already
    /// round-tripped values onto grid points so the re-quantization is
    /// exact and the fold stays bit-identical with
    /// [`fold_frame`](Self::fold_frame).
    ///
    /// # Panics
    ///
    /// Panics on a lane-count mismatch (a collective-layer bug, not a
    /// wire fault).
    pub fn fold_values(&mut self, values: &[f32]) {
        assert_eq!(
            values.len(),
            self.q.len(),
            "contribution covered {} of {} lanes",
            values.len(),
            self.q.len()
        );
        for (a, &v) in self.q.iter_mut().zip(values) {
            *a = a.wrapping_add(inceptionn_compress::sketch::quantize_value(
                v,
                self.frac_bits,
            ));
        }
        self.cycles += (values.len() as u64).div_ceil(LANES_PER_CYCLE);
        self.contributions += 1;
    }

    /// Converts the accumulated grid counts to the dense gradient sum —
    /// the one decompression in the whole exchange.
    ///
    /// # Panics
    ///
    /// Panics on a lane-count mismatch.
    pub fn finish_into(&self, out: &mut [f32]) {
        assert_eq!(out.len(), self.q.len(), "finish buffer lane mismatch");
        inceptionn_compress::sketch::finish_q(&self.q, self.frac_bits, out);
    }

    /// How many contributions have been folded.
    pub fn contributions(&self) -> u32 {
        self.contributions
    }

    /// Reduce-unit cycles spent folding so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Resets the accumulator and counters for the next chunk,
    /// keeping the grid precision.
    pub fn reset(&mut self) {
        self.q.fill(0);
        self.contributions = 0;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::encode_payload;
    use crate::nic::{NicConfig, NicPipeline};
    use inceptionn_compress::SketchCodec;

    fn grad(seed: u32, len: usize) -> Vec<f32> {
        // Small deterministic values spanning the codec's interesting
        // tag range.
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 2048;
                (x as f32 - 1024.0) / 8192.0
            })
            .collect()
    }

    fn pipeline() -> NicPipeline {
        NicPipeline::new(NicConfig::default())
    }

    #[test]
    fn plain_fold_matches_host_sum_bit_for_bit() {
        let grads: Vec<Vec<f32>> = (0..4).map(|w| grad(w, 1000)).collect();
        let mut unit = SwitchReducer::plain(1000);
        for g in &grads {
            let (wire, _) = encode_payload(&mut pipeline(), g, false);
            unit.fold_contribution(&wire).unwrap();
        }
        let mut host = vec![0.0f32; 1000];
        for g in &grads {
            for (a, &v) in host.iter_mut().zip(g) {
                *a += v;
            }
        }
        assert_eq!(unit.sum(), &host[..]);
        assert_eq!(unit.contributions(), 4);
        assert!(unit.cycles() >= 4 * 1000 / 8);
    }

    #[test]
    fn compressed_fold_matches_host_fold_over_roundtripped_values() {
        let bound = inceptionn_compress::ErrorBound::pow2(10);
        let grads: Vec<Vec<f32>> = (0..3).map(|w| grad(w + 9, 725)).collect();
        let mut unit = SwitchReducer::with_codec(725, bound);
        for g in &grads {
            let (wire, _) = encode_payload(&mut pipeline(), g, true);
            unit.fold_contribution(&wire).unwrap();
        }
        // Host side: decode every contribution (the lossy round trip)
        // and add in the same worker order.
        let mut host = vec![0.0f32; 725];
        for g in &grads {
            let (wire, _) = encode_payload(&mut pipeline(), g, true);
            let (vals, _, _) = crate::chunker::decode_payload(&mut pipeline(), &wire).unwrap();
            for (a, v) in host.iter_mut().zip(vals) {
                *a += v;
            }
        }
        assert_eq!(unit.sum(), &host[..]);
    }

    #[test]
    fn flat_fold_is_bit_identical_with_the_packet_fold() {
        let bound = inceptionn_compress::ErrorBound::pow2(10);
        let grads: Vec<Vec<f32>> = (0..3).map(|w| grad(w + 21, 900)).collect();
        let mut pkt_unit = SwitchReducer::with_codec(900, bound);
        let mut flat_unit = SwitchReducer::with_codec(900, bound);
        let mut flat = crate::flat::FlatPayload::new();
        for g in &grads {
            let (wire, _) = encode_payload(&mut pipeline(), g, true);
            pkt_unit.fold_contribution(&wire).unwrap();
            crate::flat::encode_payload_flat(&mut pipeline(), g, true, &mut flat);
            flat_unit.fold_flat_contribution(&flat).unwrap();
        }
        assert_eq!(flat_unit.sum(), pkt_unit.sum());
        assert_eq!(flat_unit.contributions(), pkt_unit.contributions());
        assert_eq!(flat_unit.cycles(), pkt_unit.cycles());
    }

    #[test]
    fn reset_clears_state_for_the_next_iteration() {
        let mut unit = SwitchReducer::plain(10);
        let (wire, _) = encode_payload(&mut pipeline(), &grad(1, 10), false);
        unit.fold_contribution(&wire).unwrap();
        unit.reset();
        assert!(unit.sum().iter().all(|&v| v == 0.0));
        assert_eq!(unit.contributions(), 0);
        assert_eq!(unit.cycles(), 0);
    }

    #[test]
    fn corrupt_compressed_payload_is_an_error() {
        let bound = inceptionn_compress::ErrorBound::pow2(10);
        let (wire, _) = encode_payload(&mut pipeline(), &grad(2, 500), true);
        let mut unit = SwitchReducer::with_codec(500, bound);
        let truncated: Vec<Packet> = wire.iter().map(|p| p.truncated(3)).collect();
        assert!(unit.fold_contribution(&truncated).is_err());
    }

    #[test]
    #[should_panic(expected = "covered")]
    fn short_contribution_is_a_collective_bug() {
        let mut unit = SwitchReducer::plain(100);
        let (wire, _) = encode_payload(&mut pipeline(), &grad(3, 50), false);
        unit.fold_contribution(&wire).unwrap();
    }

    #[test]
    #[should_panic(expected = "plain-only reduce unit")]
    fn compressed_packet_needs_a_codec() {
        let mut unit = SwitchReducer::plain(500);
        let (wire, _) = encode_payload(&mut pipeline(), &grad(4, 500), true);
        let _ = unit.fold_contribution(&wire);
    }

    #[test]
    fn sketch_unit_fold_is_bit_identical_with_host_merge() {
        let codec = SketchCodec::new(12, 77);
        let grads: Vec<Vec<f32>> = (0..4).map(|w| grad(w + 31, 640)).collect();
        // Switch path: native compressed-domain folds.
        let mut unit = SketchSwitchUnit::new(640, codec.frac_bits());
        for g in &grads {
            unit.fold_frame(codec.encode(g).as_bytes()).unwrap();
        }
        let mut switch = vec![0.0f32; 640];
        unit.finish_into(&mut switch);
        // Host path: merge the same frames compressed, decode once.
        let mut merged = codec.encode(&grads[0]);
        for g in &grads[1..] {
            merged.add_compressed(&codec.encode(g)).unwrap();
        }
        let mut host = vec![0.0f32; 640];
        merged.decode_into(&mut host).unwrap();
        let switch_bits: Vec<u32> = switch.iter().map(|v| v.to_bits()).collect();
        let host_bits: Vec<u32> = host.iter().map(|v| v.to_bits()).collect();
        assert_eq!(switch_bits, host_bits);
        assert_eq!(unit.contributions(), 4);
        assert!(unit.cycles() > 0);
    }

    #[test]
    fn sketch_unit_value_fold_matches_frame_fold_on_grid_inputs() {
        let codec = SketchCodec::new(12, 5);
        // Loopback values are already grid round-tripped.
        let grads: Vec<Vec<f32>> = (0..3).map(|w| codec.quantize(&grad(w, 256))).collect();
        let mut by_frame = SketchSwitchUnit::new(256, codec.frac_bits());
        let mut by_value = SketchSwitchUnit::new(256, codec.frac_bits());
        for g in &grads {
            by_frame.fold_frame(codec.encode(g).as_bytes()).unwrap();
            by_value.fold_values(g);
        }
        let mut a = vec![0.0f32; 256];
        let mut b = vec![0.0f32; 256];
        by_frame.finish_into(&mut a);
        by_value.finish_into(&mut b);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn sketch_unit_rejects_mismatched_frames_and_resets_clean() {
        let codec = SketchCodec::new(12, 5);
        let other = SketchCodec::new(8, 5);
        let mut unit = SketchSwitchUnit::new(64, codec.frac_bits());
        assert!(unit
            .fold_frame(other.encode(&vec![0.5f32; 64]).as_bytes())
            .is_err());
        assert!(unit
            .fold_frame(codec.encode(&[0.5f32; 32]).as_bytes())
            .is_err());
        unit.fold_frame(codec.encode(&vec![0.5f32; 64]).as_bytes())
            .unwrap();
        unit.reset();
        assert_eq!(unit.contributions(), 0);
        assert_eq!(unit.cycles(), 0);
        let mut out = vec![1.0f32; 64];
        unit.finish_into(&mut out);
        assert!(out.iter().all(|&v| v == 0.0));
    }
}
