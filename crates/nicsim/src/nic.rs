//! The NIC TX/RX pipeline wrapping the engines (Fig. 8).

use bytes::Bytes;
use inceptionn_compress::{DecodeError, ErrorBound};
use serde::{Deserialize, Serialize};

use crate::engine::{CompressionEngine, DecompressionEngine, NS_PER_CYCLE};
use crate::flat::FlatSeg;
use crate::packet::Packet;

/// Static NIC parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NicConfig {
    /// Error bound programmed into the engines.
    pub bound: ErrorBound,
    /// Fixed DMA + MAC traversal cost per packet, nanoseconds (either
    /// direction, engines excluded).
    pub base_latency_ns: u64,
}

impl Default for NicConfig {
    fn default() -> Self {
        NicConfig {
            bound: ErrorBound::default(),
            base_latency_ns: 1_000,
        }
    }
}

/// Running statistics of a pipeline instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NicStats {
    /// Packets that went through the compression engine.
    pub compressed_packets: u64,
    /// Packets that bypassed the engines.
    pub bypassed_packets: u64,
    /// Payload bytes in (TX side, pre-compression).
    pub tx_payload_in: u64,
    /// Payload bytes out (TX side, post-compression).
    pub tx_payload_out: u64,
    /// 256-bit bursts consumed by the compression engine (TX side).
    pub tx_bursts: u64,
    /// 256-bit bursts produced by the decompression engine (RX side).
    pub rx_bursts: u64,
}

impl NicStats {
    /// Average TX payload compression ratio so far (1.0 when idle).
    pub fn tx_ratio(&self) -> f64 {
        if self.tx_payload_out == 0 {
            1.0
        } else {
            self.tx_payload_in as f64 / self.tx_payload_out as f64
        }
    }
}

/// A NIC with INCEPTIONN engines on both paths.
///
/// # Examples
///
/// ```
/// use inceptionn_nicsim::{NicConfig, NicPipeline, Packet};
///
/// let mut nic = NicPipeline::new(NicConfig::default());
/// let grads: Vec<u8> = (0..64).flat_map(|i| (i as f32 * 1e-3).to_le_bytes()).collect();
/// let (wire_pkt, _tx_ns) = nic.transmit(Packet::gradient(grads.into()));
/// let (restored, _rx_ns) = nic.receive(wire_pkt).unwrap();
/// assert_eq!(restored.payload.len(), 64 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct NicPipeline {
    cfg: NicConfig,
    compressor: CompressionEngine,
    decompressor: DecompressionEngine,
    stats: NicStats,
}

impl NicPipeline {
    /// Creates a pipeline with both engines programmed to `cfg.bound`.
    pub fn new(cfg: NicConfig) -> Self {
        NicPipeline {
            cfg,
            compressor: CompressionEngine::new(cfg.bound),
            decompressor: DecompressionEngine::new(cfg.bound),
            stats: NicStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &NicConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &NicStats {
        &self.stats
    }

    /// TX path: classify by ToS, compress gradient payloads, pass
    /// everything else through. Returns the on-wire packet and the NIC
    /// traversal latency in nanoseconds.
    ///
    /// A gradient packet whose payload is not whole `f32`s is treated as
    /// regular traffic (the software API never produces one).
    pub fn transmit(&mut self, packet: Packet) -> (Packet, u64) {
        if !packet.is_compressible()
            || !packet.payload.len().is_multiple_of(4)
            || packet.payload.is_empty()
        {
            self.stats.bypassed_packets += 1;
            return (packet, self.cfg.base_latency_ns);
        }
        let out = self.compressor.process_bytes(&packet.payload);
        self.stats.compressed_packets += 1;
        self.stats.tx_payload_in += packet.payload.len() as u64;
        self.stats.tx_payload_out += out.bytes.len() as u64;
        self.stats.tx_bursts += out.input_bursts;
        let latency = self.cfg.base_latency_ns + out.latency_ns();
        (
            Packet {
                tos: packet.tos,
                value_count: Some(packet.payload.len() / 4),
                payload: Bytes::from(out.bytes),
            },
            latency,
        )
    }

    /// TX path, flat wire representation: pushes one
    /// [`VALUES_PER_PACKET`](crate::chunker::VALUES_PER_PACKET)-sized
    /// value chunk through the engine, appending its wire bytes to a
    /// caller-owned buffer. Stats and latency are accounted exactly as
    /// [`transmit`](Self::transmit) accounts one packet, and the
    /// appended bytes are bit-identical to that packet's payload — the
    /// flat path changes the memory discipline, not the wire contents.
    ///
    /// An empty or non-compressible chunk bypasses the engine and lands
    /// as raw little-endian `f32` bytes, mirroring the packet bypass.
    pub fn transmit_chunk(
        &mut self,
        chunk: &[f32],
        compressible: bool,
        bytes: &mut Vec<u8>,
    ) -> (FlatSeg, u64) {
        if !compressible || chunk.is_empty() {
            bytes.reserve(chunk.len() * 4);
            for v in chunk {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            self.stats.bypassed_packets += 1;
            return (
                FlatSeg {
                    wire_bytes: (chunk.len() * 4) as u32,
                    value_count: chunk.len() as u32,
                    compressed: false,
                },
                self.cfg.base_latency_ns,
            );
        }
        let (metrics, wire_len) = self.compressor.process_append(chunk, bytes);
        self.stats.compressed_packets += 1;
        self.stats.tx_payload_in += (chunk.len() * 4) as u64;
        self.stats.tx_payload_out += wire_len as u64;
        self.stats.tx_bursts += metrics.input_bursts;
        (
            FlatSeg {
                wire_bytes: wire_len as u32,
                value_count: chunk.len() as u32,
                compressed: true,
            },
            self.cfg.base_latency_ns + metrics.latency_ns(),
        )
    }

    /// RX path, flat wire representation: decodes one segment's wire
    /// bytes straight into `out` (whose length must equal the segment's
    /// value count). Stats and latency mirror [`receive`](Self::receive)
    /// packet for packet. Returns the traversal latency in nanoseconds.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when a compressed segment is truncated or
    /// corrupt.
    pub fn receive_chunk(
        &mut self,
        seg: FlatSeg,
        payload: &[u8],
        out: &mut [f32],
    ) -> Result<u64, DecodeError> {
        debug_assert_eq!(out.len(), seg.value_count as usize);
        if !seg.compressed {
            self.stats.bypassed_packets += 1;
            if payload.len() != out.len() * 4 {
                return Err(DecodeError {
                    at_value: 0,
                    bit_offset: 0,
                    tag: None,
                });
            }
            for (v, raw) in out.iter_mut().zip(payload.chunks_exact(4)) {
                *v = f32::from_le_bytes([raw[0], raw[1], raw[2], raw[3]]);
            }
            return Ok(self.cfg.base_latency_ns);
        }
        let metrics = self.decompressor.process_into(payload, out)?;
        self.stats.rx_bursts += metrics.output_bursts;
        Ok(self.cfg.base_latency_ns + metrics.cycles * NS_PER_CYCLE)
    }

    /// RX path: classify by ToS, decompress gradient payloads back to
    /// `f32` streams, pass everything else through.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] when a compressed payload is truncated or
    /// corrupt.
    pub fn receive(&mut self, packet: Packet) -> Result<(Packet, u64), DecodeError> {
        let Some(count) = packet.value_count else {
            self.stats.bypassed_packets += 1;
            return Ok((packet, self.cfg.base_latency_ns));
        };
        if !packet.is_compressible() {
            self.stats.bypassed_packets += 1;
            return Ok((packet, self.cfg.base_latency_ns));
        }
        let (out, _values) = self.decompressor.process(&packet.payload, count)?;
        self.stats.rx_bursts += out.output_bursts;
        let latency = self.cfg.base_latency_ns + out.cycles * NS_PER_CYCLE;
        Ok((
            Packet {
                tos: packet.tos,
                value_count: None,
                payload: Bytes::from(out.bytes),
            },
            latency,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inceptionn_compress::InceptionnCodec;

    fn f32_payload(vals: &[f32]) -> Bytes {
        vals.iter()
            .flat_map(|v| v.to_le_bytes())
            .collect::<Vec<u8>>()
            .into()
    }

    #[test]
    fn gradient_packet_round_trip_matches_codec_quantization() {
        let mut nic = NicPipeline::new(NicConfig::default());
        let vals: Vec<f32> = (0..300).map(|i| ((i as f32) * 0.01).sin() * 0.2).collect();
        let (wire, tx_ns) = nic.transmit(Packet::gradient(f32_payload(&vals)));
        assert!(wire.payload.len() < vals.len() * 4);
        assert!(tx_ns > 0);
        let (restored, rx_ns) = nic.receive(wire).unwrap();
        assert!(rx_ns > 0);
        let codec = InceptionnCodec::new(ErrorBound::default());
        assert_eq!(restored.payload, f32_payload(&codec.quantize(&vals)));
    }

    #[test]
    fn regular_traffic_bypasses_untouched() {
        let mut nic = NicPipeline::new(NicConfig::default());
        let pkt = Packet::regular(0x10, vec![9u8; 100].into());
        let (wire, ns) = nic.transmit(pkt.clone());
        assert_eq!(wire, pkt);
        assert_eq!(ns, nic.config().base_latency_ns);
        let (rx, _) = nic.receive(wire).unwrap();
        assert_eq!(rx, pkt);
        assert_eq!(nic.stats().bypassed_packets, 2);
        assert_eq!(nic.stats().compressed_packets, 0);
    }

    #[test]
    fn ragged_gradient_payload_falls_back_to_bypass() {
        let mut nic = NicPipeline::new(NicConfig::default());
        let pkt = Packet::gradient(vec![1u8, 2, 3].into());
        let (wire, _) = nic.transmit(pkt.clone());
        assert_eq!(wire, pkt);
    }

    #[test]
    fn stats_track_compression_ratio() {
        let mut nic = NicPipeline::new(NicConfig::default());
        // Values below the bound compress ~16x.
        let vals = vec![1e-5f32; 400];
        let (_, _) = nic.transmit(Packet::gradient(f32_payload(&vals)));
        assert_eq!(nic.stats().compressed_packets, 1);
        assert!(nic.stats().tx_ratio() > 10.0);
        // 400 values = 50 full 8-lane input bursts.
        assert_eq!(nic.stats().tx_bursts, 50);
    }

    #[test]
    fn stats_track_bursts_both_directions() {
        let mut nic = NicPipeline::new(NicConfig::default());
        let vals: Vec<f32> = (0..320).map(|i| ((i as f32) * 0.03).cos() * 0.1).collect();
        let (wire, _) = nic.transmit(Packet::gradient(f32_payload(&vals)));
        assert_eq!(nic.stats().tx_bursts, 320 / 8);
        nic.receive(wire).unwrap();
        // RX reproduces the full f32 stream: same burst count out.
        assert_eq!(nic.stats().rx_bursts, 320 / 8);
    }

    #[test]
    fn corrupt_wire_payload_errors() {
        let mut nic = NicPipeline::new(NicConfig::default());
        let vals = vec![0.5f32; 64];
        let (mut wire, _) = nic.transmit(Packet::gradient(f32_payload(&vals)));
        wire.payload = wire.payload.slice(0..2);
        assert!(nic.receive(wire).is_err());
    }

    #[test]
    fn engine_latency_scales_with_packet_size() {
        let mut nic = NicPipeline::new(NicConfig::default());
        let small = f32_payload(&[0.1f32; 8]);
        let large = f32_payload(&vec![0.1f32; 8 * 100]);
        let (_, t_small) = nic.transmit(Packet::gradient(small));
        let (_, t_large) = nic.transmit(Packet::gradient(large));
        assert!(t_large > t_small);
        // 100 bursts at 10 ns each, plus constant parts: under 3 us, far
        // below a 10 GbE MTU serialization quantum budget per packet.
        assert!(t_large < 3_000);
    }
}
