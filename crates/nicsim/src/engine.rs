//! The compression and decompression engines (Figs. 9 and 10).

use inceptionn_compress::burst::BurstCodec;
use inceptionn_compress::inceptionn::LANES_PER_BURST;
use inceptionn_compress::{DecodeError, ErrorBound};

/// Bits per AXI-stream burst: eight 32-bit lanes (derived from the
/// codec's shared lane constant so software and modeled hardware can
/// never disagree on the burst shape).
pub const BURST_BITS: u64 = (LANES_PER_BURST * 32) as u64;
/// Engine clock, Hz (the reference design's 100 MHz).
pub const CLOCK_HZ: u64 = 100_000_000;
/// Pipeline depth of either engine in cycles (extract → compress →
/// align → emit).
pub const PIPELINE_DEPTH: u64 = 4;

/// Nanoseconds per engine cycle.
pub const NS_PER_CYCLE: u64 = 1_000_000_000 / CLOCK_HZ;

/// Result of streaming one payload through an engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineOutput {
    /// The transformed payload bytes.
    pub bytes: Vec<u8>,
    /// Engine-occupancy cycles (pipelined: one burst per cycle plus the
    /// pipeline depth).
    pub cycles: u64,
    /// 256-bit bursts consumed on the input side.
    pub input_bursts: u64,
    /// 256-bit bursts produced on the output side (final partial burst
    /// counted).
    pub output_bursts: u64,
}

impl EngineOutput {
    /// The engine latency contribution in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.cycles * NS_PER_CYCLE
    }
}

/// Cycle and burst accounting of one engine pass, without the payload
/// bytes: what the buffer-reusing entry points return so steady-state
/// datapath traversals move no owned allocations at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineMetrics {
    /// Engine-occupancy cycles (pipelined: one burst per cycle plus the
    /// pipeline depth).
    pub cycles: u64,
    /// 256-bit bursts consumed on the input side.
    pub input_bursts: u64,
    /// 256-bit bursts produced on the output side (final partial burst
    /// counted).
    pub output_bursts: u64,
}

impl EngineMetrics {
    /// The engine latency contribution in nanoseconds.
    pub fn latency_ns(&self) -> u64 {
        self.cycles * NS_PER_CYCLE
    }
}

/// The 256-bit burst compressor: eight Compression Blocks plus the
/// alignment unit (Fig. 9).
///
/// Functionally bit-exact with
/// [`InceptionnCodec::compress`]; additionally accounts hardware cycles.
#[derive(Debug, Clone, Copy)]
pub struct CompressionEngine {
    codec: BurstCodec,
}

impl CompressionEngine {
    /// Creates an engine configured for the given error bound.
    pub fn new(bound: ErrorBound) -> Self {
        CompressionEngine {
            codec: BurstCodec::new(bound),
        }
    }

    /// The configured error bound.
    pub fn bound(&self) -> ErrorBound {
        self.codec.bound()
    }

    /// Streams a gradient payload through the engine.
    ///
    /// Each input burst carries eight lanes; every lane's Compression
    /// Block emits a `(2-bit tag, 0/8/16/32-bit vector)` pair, the tag
    /// vector (16 bits) and aligned payload bits (0–256) are
    /// concatenated, and the alignment unit accumulates the variable
    /// 16–272-bit group outputs into dense 256-bit bursts.
    ///
    /// The functional transform runs on the software burst fast path
    /// ([`BurstCodec`]), which packs exactly the bytes this engine used
    /// to produce value by value — the golden tests pin the equality —
    /// while the cycle model stays the closed form of the pipelined
    /// hardware: one input burst per cycle plus the pipeline depth.
    pub fn process(&self, values: &[f32]) -> EngineOutput {
        let stream = self.codec.compress(values);
        let input_bursts = values.len().div_ceil(LANES_PER_BURST) as u64;
        let output_bursts = (stream.bit_len as u64).div_ceil(BURST_BITS);
        EngineOutput {
            bytes: stream.bytes,
            cycles: input_bursts + PIPELINE_DEPTH,
            input_bursts,
            output_bursts,
        }
    }

    /// [`process`](Self::process) appending the wire bytes to a
    /// caller-owned buffer instead of materializing an [`EngineOutput`]:
    /// returns the accounting plus the appended byte length.
    /// Reserve-only growth, so the pass is allocation-free once `out`
    /// has warmed to capacity — the entry point of the flat zero-copy
    /// datapath.
    pub fn process_append(&self, values: &[f32], out: &mut Vec<u8>) -> (EngineMetrics, usize) {
        let before = out.len();
        let bit_len = self.codec.compress_append(values, out);
        let input_bursts = values.len().div_ceil(LANES_PER_BURST) as u64;
        let output_bursts = (bit_len as u64).div_ceil(BURST_BITS);
        (
            EngineMetrics {
                cycles: input_bursts + PIPELINE_DEPTH,
                input_bursts,
                output_bursts,
            },
            out.len() - before,
        )
    }

    /// Convenience: payload given as little-endian `f32` bytes, as it
    /// arrives from the packet DMA.
    ///
    /// # Panics
    ///
    /// Panics if `payload.len()` is not a multiple of 4 (the software
    /// API only tags whole-`f32` gradient payloads for compression).
    pub fn process_bytes(&self, payload: &[u8]) -> EngineOutput {
        assert!(
            payload.len().is_multiple_of(4),
            "compressible payload must be whole f32s ({} bytes)",
            payload.len()
        );
        let values: Vec<f32> = payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        self.process(&values)
    }

    /// Sustained input throughput in bits per second (one burst per
    /// cycle at [`CLOCK_HZ`]).
    pub fn line_throughput_bps() -> u64 {
        BURST_BITS * CLOCK_HZ
    }
}

/// The 256-bit burst decompressor: burst buffer, tag decoder, and eight
/// Decompression Blocks (Fig. 10).
#[derive(Debug, Clone, Copy)]
pub struct DecompressionEngine {
    codec: BurstCodec,
}

impl DecompressionEngine {
    /// Creates an engine configured for the given error bound.
    pub fn new(bound: ErrorBound) -> Self {
        DecompressionEngine {
            codec: BurstCodec::new(bound),
        }
    }

    /// Streams a compressed payload back into `count` gradient values.
    ///
    /// The hardware keeps up to two bursts (512 bits) buffered because a
    /// compressed 8-value group can straddle a burst boundary; the tag
    /// decoder reads the 16-bit tag vector, computes the eight payload
    /// widths, slices the group, and the eight DBs reconstruct one
    /// 256-bit output burst per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the payload is too short for `count`
    /// values.
    pub fn process(
        &self,
        payload: &[u8],
        count: usize,
    ) -> Result<(EngineOutput, Vec<f32>), DecodeError> {
        // Functional transform on the burst fast path (tag decoder +
        // eight DBs per group, word-level bit extraction); cycle model
        // is the closed form of the pipelined hardware: one output
        // burst per cycle plus the pipeline depth.
        let mut out = vec![0f32; count];
        self.codec.decompress_into(payload, count, &mut out)?;
        let output_bursts = count.div_ceil(LANES_PER_BURST) as u64;
        let input_bursts = (payload.len() as u64 * 8).div_ceil(BURST_BITS);
        Ok((
            EngineOutput {
                bytes: out.iter().flat_map(|v| v.to_le_bytes()).collect(),
                cycles: output_bursts + PIPELINE_DEPTH,
                input_bursts,
                output_bursts,
            },
            out,
        ))
    }

    /// [`process`](Self::process) decoding straight into a caller-owned
    /// slice (`out.len()` is the value count): no byte vector, no value
    /// vector — the allocation-free receive half of the flat datapath.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the payload is too short for
    /// `out.len()` values.
    pub fn process_into(
        &self,
        payload: &[u8],
        out: &mut [f32],
    ) -> Result<EngineMetrics, DecodeError> {
        let count = out.len();
        self.codec.decompress_into(payload, count, out)?;
        let output_bursts = count.div_ceil(LANES_PER_BURST) as u64;
        let input_bursts = (payload.len() as u64 * 8).div_ceil(BURST_BITS);
        Ok(EngineMetrics {
            cycles: output_bursts + PIPELINE_DEPTH,
            input_bursts,
            output_bursts,
        })
    }
}

/// Cycle model for the sparsifier engine's encode pass: the residual
/// update and threshold compare stream eight lanes per cycle (the same
/// 256-bit datapath as the truncation engine), but the selected
/// `(index, value)` pairs leave through a single emit port — priority
/// encoders don't batch — so each transmitted pair costs one extra
/// cycle, plus the shared pipeline depth.
pub fn sparse_encode_cycles(values: usize, pairs: usize) -> u64 {
    (values.div_ceil(LANES_PER_BURST) + pairs) as u64 + PIPELINE_DEPTH
}

/// Cycle model for the sparsifier engine's decode pass: zero-fill runs
/// eight lanes per cycle; each received pair is a single-port scatter
/// write, one per cycle, plus the pipeline depth.
pub fn sparse_decode_cycles(values: usize, pairs: usize) -> u64 {
    (values.div_ceil(LANES_PER_BURST) + pairs) as u64 + PIPELINE_DEPTH
}

/// Cycle model for the sketch engine's encode pass: fixed-point
/// quantization streams eight lanes per cycle with the hash banks
/// ([`inceptionn_compress::sketch::ROWS`] single-ported SRAMs, one per
/// row) updated in parallel, then the frame drains at one 256-bit
/// burst per cycle, plus the pipeline depth.
pub fn sketch_encode_cycles(values: usize, wire_bytes: usize) -> u64 {
    let lane_cycles = values.div_ceil(LANES_PER_BURST) as u64;
    let drain_cycles = (wire_bytes as u64 * 8).div_ceil(BURST_BITS);
    lane_cycles + drain_cycles + PIPELINE_DEPTH
}

/// Cycle model for the sketch engine's decode pass: the frame streams
/// in at one 256-bit burst per cycle, peeling/copy-out emits eight
/// lanes per cycle, plus the pipeline depth.
pub fn sketch_decode_cycles(values: usize, wire_bytes: usize) -> u64 {
    let lane_cycles = values.div_ceil(LANES_PER_BURST) as u64;
    let fill_cycles = (wire_bytes as u64 * 8).div_ceil(BURST_BITS);
    lane_cycles + fill_cycles + PIPELINE_DEPTH
}

#[cfg(test)]
mod tests {
    use super::*;
    use inceptionn_compress::InceptionnCodec;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn engines(e: u8) -> (CompressionEngine, DecompressionEngine, InceptionnCodec) {
        let b = ErrorBound::pow2(e);
        (
            CompressionEngine::new(b),
            DecompressionEngine::new(b),
            InceptionnCodec::new(b),
        )
    }

    fn gradient_stream(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let u: f32 = rng.gen_range(-1.0f32..1.0);
                u * u * u // peaked toward zero
            })
            .collect()
    }

    #[test]
    fn hardware_is_bit_exact_with_reference_codec() {
        let (ce, _, codec) = engines(10);
        for n in [0usize, 1, 7, 8, 9, 100, 1024] {
            let vals = gradient_stream(n, n as u64);
            let hw = ce.process(&vals);
            let sw = codec.compress(&vals);
            assert_eq!(hw.bytes, sw.bytes, "n={n}");
        }
    }

    #[test]
    fn round_trip_through_both_engines() {
        let (ce, de, codec) = engines(8);
        let vals = gradient_stream(1000, 3);
        let compressed = ce.process(&vals);
        let (out, restored) = de.process(&compressed.bytes, vals.len()).unwrap();
        assert_eq!(restored, codec.quantize(&vals));
        assert_eq!(out.bytes.len(), vals.len() * 4);
    }

    #[test]
    fn cycle_accounting_is_pipelined() {
        let (ce, _, _) = engines(10);
        // 80 values = 10 input bursts -> 10 + depth cycles.
        let vals = gradient_stream(80, 1);
        let out = ce.process(&vals);
        assert_eq!(out.input_bursts, 10);
        assert_eq!(out.cycles, 10 + PIPELINE_DEPTH);
        assert_eq!(out.latency_ns(), (10 + PIPELINE_DEPTH) * 10);
    }

    #[test]
    fn decompression_cycles_track_output_bursts() {
        let (ce, de, _) = engines(10);
        let vals = gradient_stream(64, 2);
        let c = ce.process(&vals);
        let (out, _) = de.process(&c.bytes, 64).unwrap();
        assert_eq!(out.output_bursts, 8);
        assert_eq!(out.cycles, 8 + PIPELINE_DEPTH);
    }

    #[test]
    fn engine_throughput_exceeds_ten_gbe() {
        // Sec. VII-C: the accelerators must not curtail NIC bandwidth.
        assert!(CompressionEngine::line_throughput_bps() > 10_000_000_000);
    }

    #[test]
    fn compressed_output_bursts_shrink() {
        let (ce, _, _) = engines(6);
        // Tiny gradients: nearly everything drops to the 2-bit form.
        let vals = vec![1e-4f32; 800];
        let out = ce.process(&vals);
        assert_eq!(out.input_bursts, 100);
        assert!(
            out.output_bursts <= 8,
            "2-bit values should pack ~16x: {} bursts",
            out.output_bursts
        );
    }

    #[test]
    fn truncated_payload_is_a_decode_error() {
        let (ce, de, _) = engines(10);
        let vals = gradient_stream(64, 9);
        let c = ce.process(&vals);
        let err = de.process(&c.bytes[..1], 64).unwrap_err();
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn process_bytes_accepts_le_f32_payload() {
        let (ce, _, codec) = engines(10);
        let vals = gradient_stream(256, 11);
        let bytes: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(ce.process_bytes(&bytes).bytes, codec.compress(&vals).bytes);
    }

    #[test]
    #[should_panic(expected = "whole f32s")]
    fn process_bytes_rejects_ragged_payload() {
        let (ce, _, _) = engines(10);
        ce.process_bytes(&[1, 2, 3]);
    }

    proptest! {
        #[test]
        fn prop_hw_sw_equivalence(vals in proptest::collection::vec(-1.2f32..1.2, 0..200), e in 5u8..14) {
            let (ce, de, codec) = engines(e);
            let hw = ce.process(&vals);
            let sw = codec.compress(&vals);
            prop_assert_eq!(&hw.bytes, &sw.bytes);
            let (_, restored) = de.process(&hw.bytes, vals.len()).unwrap();
            prop_assert_eq!(restored, codec.quantize(&vals));
        }
    }
}
