//! The flat wire representation: one contiguous byte buffer per
//! payload, plus per-MTU-segment descriptors.
//!
//! The packet path ([`crate::chunker`]) materializes one refcounted
//! byte buffer per MTU packet — faithful to a real NIC's descriptor
//! rings, but impossible to drive allocation-free, since every packet
//! clones its payload into a fresh `Bytes`. The flat path keeps the
//! exact same per-packet engine application (each
//! [`VALUES_PER_PACKET`]-value chunk is compressed independently, so
//! the wire bytes are bit-identical segment for segment) while landing
//! every segment back to back in one reusable `Vec<u8>`, described by a
//! [`FlatSeg`] table. Exchange loops that recycle the [`FlatPayload`]
//! run the whole TX→wire→RX traversal with **zero steady-state heap
//! allocations** — the property `tests/alloc_gate.rs` enforces.

use inceptionn_compress::DecodeError;

use crate::chunker::VALUES_PER_PACKET;
use crate::engine::NS_PER_CYCLE;
use crate::nic::NicPipeline;

/// One wire segment of a [`FlatPayload`]: the flat-path equivalent of
/// one MTU packet's header metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatSeg {
    /// Post-compression payload bytes this segment occupies on the wire.
    pub wire_bytes: u32,
    /// `f32` values the segment decodes to.
    pub value_count: u32,
    /// Whether the segment traversed the compression engine
    /// (uncompressed segments carry raw little-endian `f32` bytes).
    pub compressed: bool,
}

/// One application payload as a contiguous wire image: every segment's
/// post-engine bytes laid back to back in `bytes`, described in order
/// by `segs`. Both vectors are reused across legs via
/// [`clear`](Self::clear), which keeps their capacity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatPayload {
    /// The concatenated wire bytes of all segments.
    pub bytes: Vec<u8>,
    /// Per-segment descriptors, in wire order.
    pub segs: Vec<FlatSeg>,
}

impl FlatPayload {
    /// An empty payload with no capacity.
    pub fn new() -> Self {
        FlatPayload::default()
    }

    /// Empties the payload, keeping both allocations for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.segs.clear();
    }

    /// Total `f32` values across all segments.
    pub fn value_count(&self) -> usize {
        self.segs.iter().map(|s| s.value_count as usize).sum()
    }

    /// Total wire bytes (equals `bytes.len()` for a well-formed
    /// payload).
    pub fn wire_bytes(&self) -> u64 {
        self.segs.iter().map(|s| s.wire_bytes as u64).sum()
    }

    /// Whether the first segment is compressed (the frame-level marker,
    /// mirroring how a packet frame reads its first packet's ToS).
    pub fn is_compressed(&self) -> bool {
        self.segs.first().is_some_and(|s| s.compressed)
    }

    /// Iterates segments with their byte ranges, in wire order.
    ///
    /// # Panics
    ///
    /// Panics if the descriptor table overruns `bytes` (a construction
    /// bug, not a wire fault — wire faults keep both sides consistent).
    pub fn iter(&self) -> impl Iterator<Item = (FlatSeg, &[u8])> {
        let mut off = 0usize;
        self.segs.iter().map(move |&s| {
            let start = off;
            off += s.wire_bytes as usize;
            (s, &self.bytes[start..off])
        })
    }

    /// Byte offset of segment `i` within `bytes`.
    fn seg_offset(&self, i: usize) -> usize {
        self.segs[..i].iter().map(|s| s.wire_bytes as usize).sum()
    }

    /// Fault-model helper: flips one bit of the wire image in place
    /// (callers clone first; the CRC riding next to the payload goes
    /// stale, which is what lets the receiver catch it).
    pub fn flip_bit(&mut self, bit: usize) {
        if !self.bytes.is_empty() {
            let bit = bit % (self.bytes.len() * 8);
            self.bytes[bit / 8] ^= 1 << (bit % 8);
        }
    }

    /// Fault-model helper: swaps segments `i` and `i+1` (wrapping) —
    /// both the descriptors and their byte ranges — modeling packets
    /// arriving out of order.
    pub fn swap_adjacent_segs(&mut self, i: usize) {
        if self.segs.len() < 2 {
            return;
        }
        let i = i % self.segs.len();
        let j = (i + 1) % self.segs.len();
        let (a, b) = (i.min(j), i.max(j));
        let start = self.seg_offset(a);
        let mid = start + self.segs[a].wire_bytes as usize;
        let end = mid + self.segs[b].wire_bytes as usize;
        // Rotate [start..end) left by seg a's length: b's bytes move to
        // the front, a's to the back.
        self.bytes[start..end].rotate_left(mid - start);
        self.segs.swap(a, b);
    }

    /// Fault-model helper: truncates segment `i`'s wire bytes to `keep`
    /// bytes, shifting later segments down and fixing the descriptor —
    /// stream damage that predates framing, so a rebuilt frame carries
    /// a *fresh* CRC and only the decode step can notice.
    pub fn truncate_seg(&mut self, i: usize, keep: usize) {
        if i >= self.segs.len() {
            return;
        }
        let start = self.seg_offset(i);
        let len = self.segs[i].wire_bytes as usize;
        let keep = keep.min(len);
        self.bytes.drain(start + keep..start + len);
        self.segs[i].wire_bytes = keep as u32;
    }
}

/// What the TX NIC did to one flat payload: the [`crate::PayloadTrace`]
/// accounting without its per-packet size vector (those sizes live in
/// the payload's own segment table), so the trace is `Copy` and the
/// encode path moves no allocations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlatTrace {
    /// Application payload bytes entering the TX NIC.
    pub payload_bytes_in: u64,
    /// Post-compression payload bytes across all segments.
    pub wire_payload_bytes: u64,
    /// Segments (MTU packets) the payload was cut into.
    pub packets: u64,
    /// TX NIC traversal latency, nanoseconds (base cost + engine).
    pub nic_latency_ns: u64,
    /// Compression-engine cycles spent on this payload.
    pub engine_cycles: u64,
}

/// Pushes one application payload through the TX NIC segment by segment
/// into a caller-owned [`FlatPayload`] (cleared first, capacity kept).
///
/// Stats, cycles, and wire bytes are accounted exactly as the packet
/// path's [`encode_payload_into`](crate::chunker::encode_payload_into):
/// each [`VALUES_PER_PACKET`] chunk traverses the engine independently,
/// so the wire image is bit-identical segment for segment.
pub fn encode_payload_flat(
    tx: &mut NicPipeline,
    values: &[f32],
    compressible: bool,
    out: &mut FlatPayload,
) -> FlatTrace {
    let base = tx.config().base_latency_ns;
    out.clear();
    out.segs.reserve(values.len().div_ceil(VALUES_PER_PACKET));
    let mut trace = FlatTrace {
        payload_bytes_in: (values.len() * 4) as u64,
        ..FlatTrace::default()
    };
    for chunk in values.chunks(VALUES_PER_PACKET) {
        let (seg, ns) = tx.transmit_chunk(chunk, compressible, &mut out.bytes);
        out.segs.push(seg);
        trace.wire_payload_bytes += seg.wire_bytes as u64;
        trace.packets += 1;
        trace.nic_latency_ns += ns;
        // `transmit_chunk` reports base cost plus engine time; recover
        // cycles exactly like the packet path does.
        trace.engine_cycles += ns.saturating_sub(base) / NS_PER_CYCLE;
    }
    trace
}

/// Receives a flat payload through the RX NIC, reassembling the value
/// stream **into** a caller-owned buffer (cleared first, capacity
/// kept). Returns the RX NIC traversal latency in nanoseconds and the
/// decompression-engine cycles spent — the flat twin of
/// [`decode_payload_into`](crate::chunker::decode_payload_into).
///
/// # Errors
///
/// Returns [`DecodeError`] if a compressed segment is truncated or
/// corrupt; `values` then holds a partial reassembly.
pub fn decode_payload_flat(
    rx: &mut NicPipeline,
    payload: &FlatPayload,
    values: &mut Vec<f32>,
) -> Result<(u64, u64), DecodeError> {
    let base = rx.config().base_latency_ns;
    values.clear();
    values.resize(payload.value_count(), 0.0);
    let mut total_ns = 0u64;
    let mut cycles = 0u64;
    let mut at = 0usize;
    for (seg, bytes) in payload.iter() {
        let n = seg.value_count as usize;
        let ns = rx.receive_chunk(seg, bytes, &mut values[at..at + n])?;
        at += n;
        total_ns += ns;
        cycles += ns.saturating_sub(base) / NS_PER_CYCLE;
    }
    Ok((total_ns, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunker::{decode_payload, encode_payload};
    use crate::nic::NicConfig;
    use inceptionn_compress::{ErrorBound, InceptionnCodec};

    fn grad(seed: u32, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 2048;
                (x as f32 - 1024.0) / 8192.0
            })
            .collect()
    }

    fn pipeline() -> NicPipeline {
        NicPipeline::new(NicConfig::default())
    }

    #[test]
    fn flat_wire_bytes_match_the_packet_path_segment_for_segment() {
        for n in [0usize, 1, 361, 362, 363, 1000, 3620] {
            let vals = grad(n as u32, n);
            let (wire, ptrace) = encode_payload(&mut pipeline(), &vals, true);
            let mut flat = FlatPayload::new();
            let ftrace = encode_payload_flat(&mut pipeline(), &vals, true, &mut flat);
            assert_eq!(flat.segs.len(), wire.len(), "n={n}");
            for ((seg, bytes), pkt) in flat.iter().zip(&wire) {
                assert_eq!(bytes, &pkt.payload[..], "n={n}");
                assert_eq!(seg.value_count as usize, pkt.value_count.unwrap());
                assert!(seg.compressed);
            }
            assert_eq!(ftrace.wire_payload_bytes, ptrace.wire_payload_bytes());
            assert_eq!(ftrace.packets, ptrace.packets());
            assert_eq!(ftrace.engine_cycles, ptrace.engine_cycles);
            assert_eq!(ftrace.nic_latency_ns, ptrace.nic_latency_ns);
        }
    }

    #[test]
    fn flat_round_trip_matches_packet_decode_and_quantization() {
        let bound = ErrorBound::pow2(10);
        let cfg = NicConfig {
            bound,
            ..NicConfig::default()
        };
        let vals = grad(7, 2000);
        let mut flat = FlatPayload::new();
        encode_payload_flat(&mut NicPipeline::new(cfg), &vals, true, &mut flat);
        let mut rx = NicPipeline::new(cfg);
        let mut out = Vec::new();
        let (ns, cycles) = decode_payload_flat(&mut rx, &flat, &mut out).unwrap();
        assert_eq!(out, InceptionnCodec::new(bound).quantize(&vals));
        assert!(ns > 0 && cycles > 0);

        let mut tx = NicPipeline::new(cfg);
        let (wire, _) = encode_payload(&mut tx, &vals, true);
        let (pkt_vals, _, pkt_cycles) = decode_payload(&mut NicPipeline::new(cfg), &wire).unwrap();
        assert_eq!(out, pkt_vals);
        assert_eq!(cycles, pkt_cycles);
    }

    #[test]
    fn flat_stats_match_the_packet_path() {
        let vals = grad(3, 3620);
        let mut ptx = pipeline();
        let (wire, _) = encode_payload(&mut ptx, &vals, true);
        let mut prx = pipeline();
        decode_payload(&mut prx, &wire).unwrap();

        let mut ftx = pipeline();
        let mut flat = FlatPayload::new();
        encode_payload_flat(&mut ftx, &vals, true, &mut flat);
        let mut frx = pipeline();
        let mut out = Vec::new();
        decode_payload_flat(&mut frx, &flat, &mut out).unwrap();

        assert_eq!(ftx.stats(), ptx.stats());
        assert_eq!(frx.stats(), prx.stats());
    }

    #[test]
    fn plain_flat_payload_bypasses_the_engines_losslessly() {
        let vals = grad(5, 725);
        let mut tx = pipeline();
        let mut flat = FlatPayload::new();
        let trace = encode_payload_flat(&mut tx, &vals, false, &mut flat);
        assert!(!flat.is_compressed());
        assert_eq!(trace.wire_payload_bytes, trace.payload_bytes_in);
        assert_eq!(trace.engine_cycles, 0);
        assert_eq!(tx.stats().compressed_packets, 0);
        assert_eq!(tx.stats().bypassed_packets, 3);
        let mut out = Vec::new();
        let mut rx = pipeline();
        let (_, cycles) = decode_payload_flat(&mut rx, &flat, &mut out).unwrap();
        assert_eq!(out, vals, "bypass path must be lossless");
        assert_eq!(cycles, 0);
    }

    #[test]
    fn truncated_segment_is_a_decode_error() {
        let vals = grad(9, 500);
        let mut flat = FlatPayload::new();
        encode_payload_flat(&mut pipeline(), &vals, true, &mut flat);
        flat.truncate_seg(0, 2);
        let mut out = Vec::new();
        assert!(decode_payload_flat(&mut pipeline(), &flat, &mut out).is_err());
    }

    #[test]
    fn swap_adjacent_segs_moves_bytes_with_descriptors() {
        let vals = grad(11, 1000);
        let mut flat = FlatPayload::new();
        encode_payload_flat(&mut pipeline(), &vals, true, &mut flat);
        let before: Vec<Vec<u8>> = flat.iter().map(|(_, b)| b.to_vec()).collect();
        let mut swapped = flat.clone();
        swapped.swap_adjacent_segs(0);
        let after: Vec<Vec<u8>> = swapped.iter().map(|(_, b)| b.to_vec()).collect();
        assert_eq!(after[0], before[1]);
        assert_eq!(after[1], before[0]);
        assert_eq!(after[2], before[2]);
        assert_eq!(swapped.bytes.len(), flat.bytes.len());
    }

    #[test]
    fn encode_into_a_warm_payload_reuses_capacity() {
        let vals = grad(13, 1448);
        let mut flat = FlatPayload::new();
        let mut tx = pipeline();
        encode_payload_flat(&mut tx, &vals, true, &mut flat);
        let (bytes_cap, segs_cap) = (flat.bytes.capacity(), flat.segs.capacity());
        let first = flat.clone();
        encode_payload_flat(&mut tx, &vals, true, &mut flat);
        assert_eq!(flat, first, "re-encoding the same values must repeat");
        assert_eq!(flat.bytes.capacity(), bytes_cap);
        assert_eq!(flat.segs.capacity(), segs_cap);
    }
}
