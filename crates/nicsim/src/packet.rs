//! ToS-tagged packets and the classify/bypass rule (Sec. VI-B).

use bytes::Bytes;

/// The reserved ToS value that marks a packet for lossy compression
/// (the paper tags gradient sockets with `setsockopt` ToS `0x28`).
pub const TOS_COMPRESSED: u8 = 0x28;

/// Bytes of TCP/IP header the engines never touch.
pub const HEADER_BYTES: usize = 40;

/// A simplified TCP/IP packet as the NIC pipeline sees it.
///
/// # Examples
///
/// ```
/// use inceptionn_nicsim::packet::{Packet, TOS_COMPRESSED};
///
/// let gradient_pkt = Packet::gradient(vec![0u8; 64].into());
/// assert!(gradient_pkt.is_compressible());
/// let ssh_pkt = Packet::regular(0x00, vec![1, 2, 3].into());
/// assert!(!ssh_pkt.is_compressible());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The IP Type-of-Service byte.
    pub tos: u8,
    /// Application payload (what the engines may transform).
    pub payload: Bytes,
    /// Count of `f32` values the payload encodes *when compressed*;
    /// `None` for plain payloads. The real hardware infers this from
    /// packet framing; the model carries it explicitly.
    pub value_count: Option<usize>,
}

impl Packet {
    /// Creates a regular (never-compressed) packet.
    pub fn regular(tos: u8, payload: Bytes) -> Self {
        Packet {
            tos,
            payload,
            value_count: None,
        }
    }

    /// Creates a gradient packet tagged for compression.
    pub fn gradient(payload: Bytes) -> Self {
        Packet {
            tos: TOS_COMPRESSED,
            payload,
            value_count: None,
        }
    }

    /// The classification the engines apply at the first burst: only the
    /// reserved ToS value routes through compression.
    pub fn is_compressible(&self) -> bool {
        self.tos == TOS_COMPRESSED
    }

    /// Total on-wire size including the (never-compressed) header.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_tos() {
        assert!(Packet::gradient(Bytes::new()).is_compressible());
        assert!(!Packet::regular(0, Bytes::new()).is_compressible());
        assert!(!Packet::regular(0x29, Bytes::new()).is_compressible());
        // Only the exact reserved value matches.
        assert!(Packet::regular(TOS_COMPRESSED, Bytes::new()).is_compressible());
    }

    #[test]
    fn wire_bytes_include_header() {
        let p = Packet::gradient(vec![0u8; 100].into());
        assert_eq!(p.wire_bytes(), 140);
    }
}
