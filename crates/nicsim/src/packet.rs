//! ToS-tagged packets and the classify/bypass rule (Sec. VI-B).

use bytes::Bytes;

/// The reserved ToS value that marks a packet for lossy compression
/// (the paper tags gradient sockets with `setsockopt` ToS `0x28`).
pub const TOS_COMPRESSED: u8 = 0x28;

/// Bytes of TCP/IP header the engines never touch.
pub const HEADER_BYTES: usize = 40;

/// A simplified TCP/IP packet as the NIC pipeline sees it.
///
/// # Examples
///
/// ```
/// use inceptionn_nicsim::packet::{Packet, TOS_COMPRESSED};
///
/// let gradient_pkt = Packet::gradient(vec![0u8; 64].into());
/// assert!(gradient_pkt.is_compressible());
/// let ssh_pkt = Packet::regular(0x00, vec![1, 2, 3].into());
/// assert!(!ssh_pkt.is_compressible());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// The IP Type-of-Service byte.
    pub tos: u8,
    /// Application payload (what the engines may transform).
    pub payload: Bytes,
    /// Count of `f32` values the payload encodes *when compressed*;
    /// `None` for plain payloads. The real hardware infers this from
    /// packet framing; the model carries it explicitly.
    pub value_count: Option<usize>,
}

impl Packet {
    /// Creates a regular (never-compressed) packet.
    pub fn regular(tos: u8, payload: Bytes) -> Self {
        Packet {
            tos,
            payload,
            value_count: None,
        }
    }

    /// Creates a gradient packet tagged for compression.
    pub fn gradient(payload: Bytes) -> Self {
        Packet {
            tos: TOS_COMPRESSED,
            payload,
            value_count: None,
        }
    }

    /// The classification the engines apply at the first burst: only the
    /// reserved ToS value routes through compression.
    pub fn is_compressible(&self) -> bool {
        self.tos == TOS_COMPRESSED
    }

    /// Total on-wire size including the (never-compressed) header.
    pub fn wire_bytes(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }

    /// A copy of this packet with one payload bit inverted — the model
    /// of a burst error on the engine path that slips past link-level
    /// coding. `bit` is taken modulo the payload size; an empty payload
    /// is returned unchanged.
    pub fn with_bit_flipped(&self, bit: usize) -> Packet {
        if self.payload.is_empty() {
            return self.clone();
        }
        let mut bytes = self.payload.to_vec();
        let i = (bit / 8) % bytes.len();
        bytes[i] ^= 1 << (bit % 8);
        Packet {
            tos: self.tos,
            payload: Bytes::from(bytes),
            value_count: self.value_count,
        }
    }

    /// A copy of this packet with the payload truncated to its first
    /// `keep` bytes — a burst error that destroys the packet tail. The
    /// `value_count` framing is preserved, so a truncated *compressed*
    /// payload starves the decompression engine mid-stream and surfaces
    /// as a typed decode error.
    pub fn truncated(&self, keep: usize) -> Packet {
        Packet {
            tos: self.tos,
            payload: self.payload.slice(..keep.min(self.payload.len())),
            value_count: self.value_count,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_tos() {
        assert!(Packet::gradient(Bytes::new()).is_compressible());
        assert!(!Packet::regular(0, Bytes::new()).is_compressible());
        assert!(!Packet::regular(0x29, Bytes::new()).is_compressible());
        // Only the exact reserved value matches.
        assert!(Packet::regular(TOS_COMPRESSED, Bytes::new()).is_compressible());
    }

    #[test]
    fn wire_bytes_include_header() {
        let p = Packet::gradient(vec![0u8; 100].into());
        assert_eq!(p.wire_bytes(), 140);
    }

    #[test]
    fn bit_flip_touches_exactly_one_bit() {
        let p = Packet::gradient(vec![0u8; 8].into());
        let c = p.with_bit_flipped(19);
        assert_eq!(c.payload[2], 0b_1000);
        let ones: u32 = c.payload.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(c.tos, p.tos);
        // Flipping the same bit twice restores the payload.
        assert_eq!(c.with_bit_flipped(19).payload, p.payload);
        // Out-of-range bit positions wrap instead of panicking.
        let wrapped = p.with_bit_flipped(8 * 8 + 19);
        assert_eq!(wrapped.payload, c.payload);
        assert_eq!(
            Packet::gradient(Bytes::new()).with_bit_flipped(3),
            Packet::gradient(Bytes::new())
        );
    }

    #[test]
    fn truncation_preserves_framing() {
        let mut p = Packet::gradient(vec![7u8; 10].into());
        p.value_count = Some(42);
        let t = p.truncated(4);
        assert_eq!(t.payload.len(), 4);
        assert_eq!(t.value_count, Some(42), "framing metadata survives");
        assert_eq!(
            p.truncated(100).payload.len(),
            10,
            "over-long keep is a no-op"
        );
    }
}
