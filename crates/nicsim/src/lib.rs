//! Burst-level model of the INCEPTIONN NIC accelerators.
//!
//! The paper integrates a compression engine and a decompression engine
//! into the 10 GbE reference design of a Xilinx VC709 board (Sec. VI,
//! Figs. 8–10). Both engines speak 256-bit AXI-stream bursts — eight
//! `f32` lanes per cycle at 100 MHz (25.6 Gb/s, comfortably above line
//! rate) — and are selected per packet by the IP Type-of-Service field:
//! `ToS = 0x28` marks a lossy-compressible gradient packet, anything
//! else bypasses the engines untouched.
//!
//! This crate reproduces that hardware as a cycle-accounted functional
//! model:
//!
//! * [`engine::CompressionEngine`] — eight Compression Blocks (one per
//!   lane, each running Algorithm 2) feeding a shifter-tree alignment
//!   unit that packs the variable 16–272-bit group outputs into a dense
//!   burst stream (Fig. 9);
//! * [`engine::DecompressionEngine`] — a two-burst (512-bit) burst
//!   buffer, tag decoder, and eight Decompression Blocks (Fig. 10);
//! * [`packet`] — ToS-tagged packets and the per-packet classify /
//!   bypass logic;
//! * [`nic::NicPipeline`] — the TX and RX paths: classify, compress or
//!   decompress the payload, account pipeline latency in nanoseconds.
//!
//! The engines are *bit-exact* against the software reference codec in
//! [`inceptionn_compress`]: the tests assert that hardware-packed bytes
//! equal [`inceptionn_compress::InceptionnCodec::compress`] output.
//!
//! # Examples
//!
//! ```
//! use inceptionn_compress::ErrorBound;
//! use inceptionn_nicsim::engine::CompressionEngine;
//!
//! let engine = CompressionEngine::new(ErrorBound::pow2(10));
//! let grads = vec![0.002f32; 64];
//! let out = engine.process(&grads);
//! assert!(out.bytes.len() < 64 * 4);
//! // 8 input bursts, pipelined one per cycle.
//! assert!(out.cycles >= 8);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod chunker;
pub mod datapath;
pub mod engine;
pub mod flat;
pub mod nic;
pub mod packet;
pub mod switchagg;

pub use chunker::{
    decode_payload, decode_payload_into, encode_payload, encode_payload_into, PayloadTrace,
    TOS_PLAIN, VALUES_PER_PACKET,
};
pub use engine::{CompressionEngine, DecompressionEngine, EngineMetrics, EngineOutput};
pub use flat::{decode_payload_flat, encode_payload_flat, FlatPayload, FlatSeg, FlatTrace};
pub use nic::{NicConfig, NicPipeline};
pub use packet::{Packet, TOS_COMPRESSED};
pub use switchagg::{SketchSwitchUnit, SwitchReducer};
