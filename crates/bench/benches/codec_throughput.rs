//! Criterion micro-benchmarks of every gradient codec: the INCEPTIONN
//! lossy codec at each paper error bound, plus the software baselines
//! (Snappy-class LZ, SZ-class, LSB truncation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
use inceptionn_compress::szlike::SzCodec;
use inceptionn_compress::truncate::Truncation;
use inceptionn_compress::{lz, ErrorBound, InceptionnCodec};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N_VALUES: usize = 256 * 1024; // 1 MiB of f32 gradients

fn gradients() -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(42);
    GradientModel::preset(GradientPreset::AlexNet).sample(&mut rng, N_VALUES)
}

fn bench_inceptionn(c: &mut Criterion) {
    let grads = gradients();
    let bytes = (grads.len() * 4) as u64;
    let mut group = c.benchmark_group("inceptionn_codec");
    group.throughput(Throughput::Bytes(bytes));
    for e in [10u8, 8, 6] {
        let codec = InceptionnCodec::new(ErrorBound::pow2(e));
        group.bench_with_input(
            BenchmarkId::new("compress", format!("2^-{e}")),
            &codec,
            |b, codec| b.iter(|| codec.compress(&grads)),
        );
        let stream = codec.compress(&grads);
        group.bench_with_input(
            BenchmarkId::new("decompress", format!("2^-{e}")),
            &stream,
            |b, stream| b.iter(|| codec.decompress(stream).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("quantize", format!("2^-{e}")),
            &codec,
            |b, codec| b.iter(|| codec.quantize(&grads)),
        );
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let grads = gradients();
    let raw: Vec<u8> = grads.iter().flat_map(|v| v.to_le_bytes()).collect();
    let mut group = c.benchmark_group("baseline_codecs");
    group.throughput(Throughput::Bytes(raw.len() as u64));
    group.bench_function("lz_compress", |b| b.iter(|| lz::compress(&raw)));
    let packed = lz::compress(&raw);
    group.bench_function("lz_decompress", |b| {
        b.iter(|| lz::decompress(&packed).unwrap())
    });
    let sz = SzCodec::new(ErrorBound::pow2(10));
    group.bench_function("sz_compress", |b| b.iter(|| sz.compress(&grads)));
    let trunc = Truncation::new(16);
    group.bench_function("trunc16_pack", |b| b.iter(|| trunc.compress(&grads)));
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inceptionn, bench_baselines
}
criterion_main!(benches);
