//! Criterion benchmarks of the gradient-exchange algorithms: sequential
//! and threaded ring all-reduce vs the worker-aggregator baseline, with
//! and without compression in the loop, plus the in-process shortcut vs
//! the modeled NIC datapath behind the `Fabric` seam.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use inceptionn_compress::ErrorBound;
use inceptionn_distrib::aggregator::worker_aggregator_allreduce;
use inceptionn_distrib::fabric::{CodecSelection, FabricBuilder, TransportKind};
use inceptionn_distrib::ring::{ring_allreduce, ring_allreduce_over, threaded_ring_allreduce};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_grads(workers: usize, len: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(7);
    (0..workers)
        .map(|_| (0..len).map(|_| rng.gen_range(-0.1f32..0.1)).collect())
        .collect()
}

fn bench_exchanges(c: &mut Criterion) {
    let workers = 4usize;
    let len = 262_144usize; // 1 MiB per worker
    let grads = make_grads(workers, len);
    let bytes = (workers * len * 4) as u64;
    let codec = CodecSelection::Scalar(ErrorBound::pow2(10));

    let mut group = c.benchmark_group("gradient_exchange");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function(BenchmarkId::new("ring", "lossless"), |b| {
        b.iter(|| {
            let mut g = grads.clone();
            ring_allreduce(&mut g, CodecSelection::None);
            g
        })
    });
    group.bench_function(BenchmarkId::new("ring", "eb=2^-10"), |b| {
        b.iter(|| {
            let mut g = grads.clone();
            ring_allreduce(&mut g, codec);
            g
        })
    });
    group.bench_function(BenchmarkId::new("worker_aggregator", "lossless"), |b| {
        b.iter(|| {
            let mut g = grads.clone();
            worker_aggregator_allreduce(&mut g, CodecSelection::None);
            g
        })
    });
    group.bench_function(BenchmarkId::new("ring_threaded", "lossless"), |b| {
        b.iter(|| threaded_ring_allreduce(grads.clone(), CodecSelection::None))
    });
    group.bench_function(BenchmarkId::new("ring_threaded", "eb=2^-10"), |b| {
        b.iter(|| threaded_ring_allreduce(grads.clone(), codec))
    });
    group.finish();
}

/// The cost of realism: the same ring exchange over the in-process
/// quantize shortcut vs the full NIC datapath (per-packet engine
/// encode/decode). The two produce bit-identical values; the benchmark
/// shows what the extra fidelity costs, and reports the compression
/// ratio the hardware path actually achieves on the wire.
fn bench_fabrics(c: &mut Criterion) {
    let workers = 4usize;
    let len = 65_536usize; // 256 KiB per worker
    let grads = make_grads(workers, len);
    let bytes = (workers * len * 4) as u64;
    let bound = Some(ErrorBound::pow2(10));
    let endpoints: Vec<usize> = (0..workers).collect();

    // One instrumented run up front: the wire ratio is a property of the
    // data and codec, not of the timing loop.
    let mut probe = FabricBuilder::new(workers)
        .transport(TransportKind::Nic)
        .compression(bound)
        .build();
    let mut g = grads.clone();
    ring_allreduce_over(probe.as_mut(), &mut g, &endpoints).unwrap();
    let stats = probe.stats();
    println!(
        "ring over NicFabric: {} payload B -> {} wire B per exchange \
         (compressed-bytes-on-wire ratio {:.2}x, {} packets)",
        stats.payload_bytes,
        stats.wire_bytes,
        stats.wire_ratio(),
        stats.packets
    );

    let mut group = c.benchmark_group("ring_fabric");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function(BenchmarkId::new("in_process", "eb=2^-10"), |b| {
        b.iter(|| {
            let mut fabric = FabricBuilder::new(workers).compression(bound).build();
            let mut g = grads.clone();
            ring_allreduce_over(fabric.as_mut(), &mut g, &endpoints).unwrap();
            g
        })
    });
    group.bench_function(BenchmarkId::new("nic_datapath", "eb=2^-10"), |b| {
        b.iter(|| {
            let mut fabric = FabricBuilder::new(workers)
                .transport(TransportKind::Nic)
                .compression(bound)
                .build();
            let mut g = grads.clone();
            ring_allreduce_over(fabric.as_mut(), &mut g, &endpoints).unwrap();
            g
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exchanges, bench_fabrics
}
criterion_main!(benches);
