//! Criterion benchmarks of the modeled NIC engines: per-packet
//! compression/decompression and the packet-level network simulator.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
use inceptionn_compress::ErrorBound;
use inceptionn_netsim::sim::{NetworkConfig, StarNetworkSim};
use inceptionn_netsim::transfer::Transfer;
use inceptionn_nicsim::engine::{CompressionEngine, DecompressionEngine};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_engines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(9);
    // One MTU payload: 362 f32 lanes.
    let packet: Vec<f32> = GradientModel::preset(GradientPreset::AlexNet).sample(&mut rng, 362);
    let ce = CompressionEngine::new(ErrorBound::pow2(10));
    let de = DecompressionEngine::new(ErrorBound::pow2(10));
    let compressed = ce.process(&packet);

    let mut group = c.benchmark_group("nic_engine");
    group.throughput(Throughput::Bytes((packet.len() * 4) as u64));
    group.bench_function("compress_mtu_packet", |b| b.iter(|| ce.process(&packet)));
    group.bench_function("decompress_mtu_packet", |b| {
        b.iter(|| de.process(&compressed.bytes, packet.len()).unwrap())
    });
    group.finish();
}

fn bench_network_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_sim");
    group.sample_size(10);
    group.bench_function("wa_gather_100mb_4workers", |b| {
        b.iter(|| {
            let mut sim = StarNetworkSim::new(NetworkConfig::ten_gbe(5));
            for w in 0..4 {
                sim.add_transfer(Transfer::new(w, 4, 25_000_000));
            }
            sim.run()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_engines, bench_network_sim
}
criterion_main!(benches);
