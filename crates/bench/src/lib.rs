//! Shared plumbing for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper; this library holds the bits they share.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

use inceptionn::experiments::Fidelity;

/// Picks run fidelity from the `INCEPTIONN_QUICK` environment variable
/// (set it to any value for a fast smoke run; default is `Full`).
pub fn fidelity_from_env() -> Fidelity {
    if std::env::var_os("INCEPTIONN_QUICK").is_some() {
        Fidelity::Quick
    } else {
        Fidelity::Full
    }
}

/// Prints the standard experiment banner.
pub fn banner(artifact: &str, paper_section: &str) {
    println!("================================================================");
    println!("INCEPTIONN reproduction — {artifact} ({paper_section})");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_defaults_to_full() {
        // The variable is not set under `cargo test`.
        if std::env::var_os("INCEPTIONN_QUICK").is_none() {
            assert_eq!(fidelity_from_env(), Fidelity::Full);
        }
    }
}
