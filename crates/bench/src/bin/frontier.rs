//! Extension study: the accuracy-vs-wire-ratio frontier across the
//! three compression families (burst truncation, sparse+EF, sketch) on
//! both proxy models.

use inceptionn::experiments::frontier::run;
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Compression-family frontier", "extension");
    let pts = run(fidelity_from_env(), 41);
    let mut t = TextTable::new(vec!["codec", "model", "wire ratio", "accuracy"]);
    for p in &pts {
        t.row(vec![
            p.codec.clone(),
            p.model.clone(),
            format!("{:.2}x", p.wire_ratio),
            pct(p.accuracy as f64),
        ]);
    }
    println!("{}", t.render());
    println!("Ratios are measured from the actual encoded bytes of every");
    println!("training iteration's gradients, not a closed-form model.");
}
