//! Extension study: fine sweep of the error bound (ratio / zero-class /
//! accuracy trade-off curve).

use inceptionn::experiments::boundsweep::run;
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Error-bound sweep", "extension");
    let pts = run(fidelity_from_env(), true, 55);
    let mut t = TextTable::new(vec!["bound", "ratio", "2-bit class", "proxy accuracy"]);
    for p in &pts {
        t.row(vec![
            format!("2^-{}", p.exponent),
            format!("{:.1}x", p.ratio),
            pct(p.zero_fraction),
            p.accuracy
                .map(|a| pct(a as f64))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    println!("{}", t.render());
    println!("The paper's operating points (2^-10 … 2^-6) sit on the knee:");
    println!("looser bounds add ratio slowly while accuracy risk grows.");
}
