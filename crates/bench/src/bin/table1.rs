//! Regenerates Table I: training hyper-parameters per benchmark.

use inceptionn::experiments::breakdown::table1;
use inceptionn::report::TextTable;
use inceptionn_bench::banner;

fn main() {
    banner("Table I", "Sec. VII-A");
    let cols = table1();
    let mut t = TextTable::new(vec![
        "Hyperparameter",
        "AlexNet",
        "HDC",
        "ResNet-50",
        "VGG-16",
    ]);
    let cell = |f: &dyn Fn(&inceptionn::experiments::breakdown::Table1Column) -> String| {
        cols.iter().map(f).collect::<Vec<_>>()
    };
    let rows: Vec<(&str, Vec<String>)> = vec![
        (
            "Per-node batch size",
            cell(&|c| c.batch_per_node.to_string()),
        ),
        (
            "Learning rate (LR)",
            cell(&|c| format!("{}", c.learning_rate)),
        ),
        ("LR reduction", cell(&|c| format!("{}", c.lr_reduction))),
        (
            "LR reduction iters",
            cell(&|c| c.lr_reduction_iters.to_string()),
        ),
        ("Momentum", cell(&|c| format!("{}", c.momentum))),
        ("Weight decay", cell(&|c| format!("{}", c.weight_decay))),
        (
            "Training iterations",
            cell(&|c| c.train_iterations.to_string()),
        ),
    ];
    for (name, vals) in rows {
        let mut row = vec![name.to_string()];
        row.extend(vals);
        t.row(row);
    }
    println!("{}", t.render());
}
