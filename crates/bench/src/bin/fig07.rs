//! Regenerates Fig. 7: the total-training-time impact of running
//! compression in *software* (Snappy-class LZ, SZ-class lossy, packed
//! truncation) on the worker-aggregator cluster.

use inceptionn::cluster::ClusterConfig;
use inceptionn::experiments::softcomp::{fig7, fig7_nic_reference, profile_codecs, SoftScheme};
use inceptionn::report::TextTable;
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Fig. 7", "Sec. VI");
    let fidelity = fidelity_from_env();
    let codecs = profile_codecs(fidelity, 11);
    println!("measured software codec profiles (this machine, release build):");
    let mut t = TextTable::new(vec!["scheme", "ratio", "throughput"]);
    for c in &codecs {
        let thr = if c.throughput_bps.is_finite() {
            format!("{:.0} MB/s", c.throughput_bps / 1e6)
        } else {
            "-".to_string()
        };
        t.row(vec![
            c.scheme.label().to_string(),
            format!("{:.2}x", c.ratio),
            thr,
        ]);
    }
    println!("{}", t.render());

    // The counterpoint the figure argues for: the same codec in the NIC,
    // measured on the modeled datapath (NicFabric transfer), zero host
    // codec seconds.
    let mut rows = fig7(&ClusterConfig::default(), &codecs);
    rows.extend(fig7_nic_reference(&ClusterConfig::default(), fidelity, 11));
    rows.sort_by(|a, b| a.model.cmp(&b.model));
    let mut t = TextTable::new(vec!["model", "scheme", "iteration", "normalized"]);
    for r in &rows {
        t.row(vec![
            r.model.clone(),
            r.scheme.label().to_string(),
            format!("{:.3}s", r.iteration_s),
            format!("{:.2}x", r.normalized),
        ]);
    }
    println!("{}", t.render());
    let _ = SoftScheme::ALL;
    println!("Paper shape: software compression makes training 2-4x SLOWER —");
    println!("the CPU codec cost swamps the saved network time; hence the NIC.");
}
