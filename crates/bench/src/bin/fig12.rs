//! Regenerates Fig. 12: normalized training time of WA / WA+C / INC /
//! INC+C with the computation/communication split.

use inceptionn::cluster::ClusterConfig;
use inceptionn::experiments::speedup::fig12;
use inceptionn::report::TextTable;
use inceptionn_bench::banner;

fn main() {
    banner("Fig. 12", "Sec. VIII-A");
    let rows = fig12(&ClusterConfig::default());
    let mut t = TextTable::new(vec![
        "model",
        "system",
        "compute+sum (s)",
        "comm (s)",
        "total (s)",
        "normalized",
        "speedup vs WA",
    ]);
    for r in &rows {
        t.row(vec![
            r.model.clone(),
            r.system.label().to_string(),
            format!("{:.3}", r.breakdown.local_compute_s + r.breakdown.reduce_s),
            format!("{:.3}", r.breakdown.comm_s),
            format!("{:.3}", r.breakdown.total_s()),
            format!("{:.3}", r.normalized),
            format!("{:.2}x", 1.0 / r.normalized),
        ]);
    }
    println!("{}", t.render());
    println!("Paper shape: INC alone trains 31-52% faster than WA;");
    println!("INC+C reaches 2.2x (VGG-16) to 3.1x (AlexNet) over WA.");
}
