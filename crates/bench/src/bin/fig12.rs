//! Regenerates Fig. 12: normalized training time of WA / WA+C / INC /
//! INC+C with the computation/communication split.
//!
//! `--trace <path>` additionally records the fabric-measured runs with
//! the obs flight recorder and writes a chrome://tracing JSON there
//! (inspect with `cargo run -p obs --bin trace-report -- <path>` or by
//! loading it into chrome://tracing).

use inceptionn::cluster::ClusterConfig;
use inceptionn::experiments::breakdown::hdc_fabric_comm_with;
use inceptionn::experiments::speedup::fig12;
use inceptionn::report::TextTable;
use inceptionn_bench::{banner, fidelity_from_env};

/// Extracts `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--trace requires a path argument");
                std::process::exit(2);
            }));
        }
    }
    None
}

fn main() {
    banner("Fig. 12", "Sec. VIII-A");
    let trace = trace_path();
    let recorder = if trace.is_some() {
        obs::Recorder::on()
    } else {
        obs::Recorder::off()
    };
    let rows = fig12(&ClusterConfig::default());
    let mut t = TextTable::new(vec![
        "model",
        "system",
        "compute+sum (s)",
        "comm (s)",
        "total (s)",
        "normalized",
        "speedup vs WA",
    ]);
    for r in &rows {
        t.row(vec![
            r.model.clone(),
            r.system.label().to_string(),
            format!("{:.3}", r.breakdown.local_compute_s + r.breakdown.reduce_s),
            format!("{:.3}", r.breakdown.comm_s),
            format!("{:.3}", r.breakdown.total_s()),
            format!("{:.3}", r.normalized),
            format!("{:.2}x", 1.0 / r.normalized),
        ]);
    }
    println!("{}", t.render());

    println!("fabric-measured transport per iteration (HDC proxy, TimedNic):\n");
    let iters = fidelity_from_env().scale(10, 2);
    let rows = hdc_fabric_comm_with(4, iters, 17, &recorder);
    let mut t = TextTable::new(vec![
        "system",
        "payload B/iter",
        "wire B/iter",
        "wire ratio",
        "link s/iter",
        "engine cyc/iter",
    ]);
    for r in &rows {
        t.row(vec![
            r.system.clone(),
            format!("{:.0}", r.payload_bytes_per_iter),
            format!("{:.0}", r.wire_bytes_per_iter),
            format!("{:.2}x", r.wire_ratio()),
            format!("{:.6}", r.link_s_per_iter),
            format!("{:.0}", r.engine_cycles_per_iter),
        ]);
    }
    println!("{}", t.render());
    println!("Paper shape: INC alone trains 31-52% faster than WA;");
    println!("INC+C reaches 2.2x (VGG-16) to 3.1x (AlexNet) over WA.");

    if let Some(path) = trace {
        let recording = recorder.finish();
        recording
            .write_chrome_trace(std::path::Path::new(&path))
            .unwrap_or_else(|e| {
                eprintln!("failed to write trace {path}: {e}");
                std::process::exit(2);
            });
        println!(
            "\nwrote {} ({} events) — load in chrome://tracing or run \
             `cargo run -p obs --bin trace-report -- {}`",
            path,
            recording.len(),
            path
        );
        println!("{}", recording.summary());
    }
}
