//! Regenerates Table III: the bitwidth distribution of compressed
//! gradients at each error bound.

use inceptionn::experiments::ratios::{table3, table3_real_hdc};
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Table III", "Sec. VIII-C");
    let fidelity = fidelity_from_env();
    let mut rows = table3(fidelity, 9);
    rows.extend(table3_real_hdc(fidelity, 10));
    let mut t = TextTable::new(vec![
        "model", "bound", "2-bit", "10-bit", "18-bit", "34-bit", "ratio",
    ]);
    for r in &rows {
        let (z, b8, b16, full) = r.histogram.fractions();
        t.row(vec![
            r.model.clone(),
            format!("2^-{}", r.bound_exp),
            pct(z),
            pct(b8),
            pct(b16),
            pct(full),
            format!("{:.1}x", r.histogram.compression_ratio()),
        ]);
    }
    println!("{}", t.render());
    println!("Paper: 74.9-94.2% of gradients fit in 2 bits at 2^-10;");
    println!(">=93% at 2^-6 for every model.");
}
