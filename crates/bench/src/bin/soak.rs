//! Fault-injection soak: seeded long runs of the resilient gradient
//! exchange, asserting the recovery contracts end to end.
//!
//! Three phases — link faults from a deterministic [`FaultPlan`],
//! crashes from a typed [`MembershipSchedule`]:
//!
//! 1. **Recovery** — 1% frame drops + 0.1% corruption on every exchange
//!    strategy. All injected faults must be absorbed *bit-invisibly*:
//!    every iteration log and every final parameter bit must equal the
//!    clean run's, and replicas must agree exactly.
//! 2. **Worker crash** — an endpoint dies mid-run. The trainer must
//!    excise it, re-stitch the ring over the survivors, and keep the
//!    surviving replicas in agreement.
//! 3. **Aggregator crash** — the central endpoint of the
//!    worker-aggregator exchange dies; training must reroute onto the
//!    survivor ring with every worker still alive.
//!
//! Exits non-zero on any violated contract. `--smoke` shrinks the
//! iteration counts for CI; the full run soaks long enough for every
//! fault class to fire.
//!
//! ```sh
//! cargo run --release -p inceptionn-bench --bin soak -- --smoke
//! ```

use inceptionn_bench::banner;
use inceptionn_compress::ErrorBound;
use inceptionn_distrib::fabric::{CodecSelection, TransportKind};
use inceptionn_distrib::trainer::{DistributedTrainer, ExchangeStrategy, TrainerConfig};
use inceptionn_distrib::{FaultPlan, MembershipSchedule};
use inceptionn_dnn::data::DigitDataset;
use inceptionn_dnn::models;

/// The workers-excluded endpoint index hosting the aggregator.
const WORKERS: usize = 4;

struct Soak {
    failures: Vec<String>,
}

impl Soak {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            println!("  PASS  {name} ({detail})");
        } else {
            println!("  FAIL  {name} ({detail})");
            self.failures.push(format!("{name}: {detail}"));
        }
    }
}

fn config(strategy: ExchangeStrategy, codec: CodecSelection) -> TrainerConfig {
    TrainerConfig {
        workers: WORKERS,
        strategy,
        transport: TransportKind::Nic,
        codec,
        batch_per_worker: 8,
        ..TrainerConfig::default()
    }
}

/// Parameter bits of every replica — "bit-identical" means bits.
fn replica_bits(t: &DistributedTrainer) -> Vec<Vec<u32>> {
    (0..WORKERS)
        .map(|w| {
            t.replica(w)
                .flat_params()
                .iter()
                .map(|p| p.to_bits())
                .collect()
        })
        .collect()
}

fn recovery_phase(soak: &mut Soak, data: &DigitDataset, iters: usize, smoke: bool) {
    println!("\nphase 1: recovery under 1% drop + 0.1% corruption ({iters} iterations)");
    let plan = FaultPlan::new(2024).drop_prob(0.01).corrupt_prob(0.001);
    let strategies = [
        ("ring", ExchangeStrategy::Ring),
        ("hier", ExchangeStrategy::HierarchicalRing { group_size: 2 }),
        ("wa", ExchangeStrategy::WorkerAggregator),
    ];
    let codecs = [
        ("lossless", CodecSelection::None),
        ("eb=2^-10", CodecSelection::Scalar(ErrorBound::pow2(10))),
    ];
    let mut fired = 0u64;
    for (sname, strategy) in strategies {
        for (cname, codec) in codecs {
            let cfg = config(strategy, codec);
            let mut clean = DistributedTrainer::new(cfg.clone(), models::hdc_mlp_small, data);
            let mut faulty = DistributedTrainer::new(
                TrainerConfig {
                    faults: Some(plan.clone()),
                    ..cfg
                },
                models::hdc_mlp_small,
                data,
            );
            let lc = clean.train_iterations(iters);
            let lf = faulty.train_iterations(iters);
            let name = format!("{sname}/{cname}");
            soak.check(
                &format!("{name} trace"),
                lc == lf,
                "faulty iteration logs equal the clean run's".to_string(),
            );
            soak.check(
                &format!("{name} params"),
                replica_bits(&clean) == replica_bits(&faulty),
                "final parameters bit-identical to the clean run".to_string(),
            );
            // Lossy compression lets ring replicas drift within the
            // error bound (each worker decodes different intermediate
            // blocks) — that drift belongs to the codec, not the
            // faults, so the contract is "exactly the clean run's
            // divergence", which is zero whenever the codec is.
            let div = faulty.max_replica_divergence();
            let want = clean.max_replica_divergence();
            soak.check(
                &format!("{name} replicas"),
                div.to_bits() == want.to_bits(),
                format!("max replica divergence {div}, clean run {want}"),
            );
            let errors = lf.iter().filter(|l| l.exchange_error.is_some()).count();
            soak.check(
                &format!("{name} errors"),
                errors == 0,
                format!("{errors} exchange errors surfaced"),
            );
            let fs = faulty.fault_stats();
            fired += fs.drops + fs.corruptions;
        }
    }
    // A soak that never injected anything proves nothing; the smoke run
    // is too short to guarantee a draw fires, so only the full run gates
    // on this.
    soak.check(
        "plan fired",
        smoke || fired > 0,
        format!("{fired} drops+corruptions injected across the phase"),
    );
}

fn worker_crash_phase(soak: &mut Soak, data: &DigitDataset, iters: usize, crash_at: u64) {
    println!("\nphase 2: worker crash at iteration {crash_at} ({iters} iterations)");
    let mut t = DistributedTrainer::new(
        TrainerConfig {
            membership: MembershipSchedule::new().crash(crash_at, 2),
            ..config(ExchangeStrategy::Ring, CodecSelection::None)
        },
        models::hdc_mlp_small,
        data,
    );
    let logs = t.train_iterations(iters);
    let excised: Vec<(usize, usize)> = logs
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.excised.map(|e| (i, e)))
        .collect();
    soak.check(
        "excision",
        excised == [(crash_at as usize, 2)],
        format!("excised events {excised:?}, want [({crash_at}, 2)]"),
    );
    soak.check(
        "liveness",
        t.alive() == [true, true, false, true],
        format!("alive map {:?}", t.alive()),
    );
    let errors = logs.iter().filter(|l| l.exchange_error.is_some()).count();
    soak.check(
        "continuity",
        errors == 0,
        format!("{errors} exchange errors after re-stitch"),
    );
    let div = t.max_replica_divergence();
    soak.check(
        "divergence",
        div < 0.05,
        format!("surviving replica divergence {div}, budget 0.05"),
    );
    soak.check(
        "crash count",
        t.fault_stats().crashes == 1,
        format!("{} crashes recorded", t.fault_stats().crashes),
    );
}

fn aggregator_crash_phase(soak: &mut Soak, data: &DigitDataset, iters: usize, crash_at: u64) {
    println!("\nphase 3: aggregator crash at iteration {crash_at} ({iters} iterations)");
    let mut t = DistributedTrainer::new(
        TrainerConfig {
            membership: MembershipSchedule::new().crash(crash_at, WORKERS),
            ..config(ExchangeStrategy::WorkerAggregator, CodecSelection::None)
        },
        models::hdc_mlp_small,
        data,
    );
    let logs = t.train_iterations(iters);
    let excised: Vec<(usize, usize)> = logs
        .iter()
        .enumerate()
        .filter_map(|(i, l)| l.excised.map(|e| (i, e)))
        .collect();
    soak.check(
        "excision",
        excised == [(crash_at as usize, WORKERS)],
        format!("excised events {excised:?}, want [({crash_at}, {WORKERS})]"),
    );
    soak.check(
        "liveness",
        t.alive().iter().all(|&a| a),
        format!("alive map {:?} — workers all survive", t.alive()),
    );
    let errors = logs.iter().filter(|l| l.exchange_error.is_some()).count();
    soak.check(
        "continuity",
        errors == 0,
        format!("{errors} exchange errors after reroute"),
    );
    let div = t.max_replica_divergence();
    soak.check(
        "divergence",
        div < 0.05,
        format!("replica divergence {div} on the survivor ring, budget 0.05"),
    );
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner("fault-injection soak", if smoke { "smoke" } else { "full" });
    let (recovery_iters, crash_iters, crash_at) = if smoke { (8, 8, 3) } else { (40, 30, 5) };
    let data = DigitDataset::generate(160, 2024);
    let mut soak = Soak {
        failures: Vec::new(),
    };
    recovery_phase(&mut soak, &data, recovery_iters, smoke);
    worker_crash_phase(&mut soak, &data, crash_iters, crash_at);
    aggregator_crash_phase(&mut soak, &data, crash_iters, crash_at);
    if soak.failures.is_empty() {
        println!("\nsoak OK: every recovery contract held");
    } else {
        eprintln!("\nsoak FAILED:");
        for f in &soak.failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
