//! Topology-tree scaling sweep: 4→1024 workers, four exchange modes.
//!
//! Runs [`toposcale::run`] over radix-4 switch trees of growing depth
//! (4:1 core oversubscription) for the flat worker/aggregator, the flat
//! ring, tiered rings over the topology tree, and switch-resident
//! in-network reduction, then writes the fig12-style curves to
//! `BENCH_topo.json` at the repo root (or the path given as the first
//! argument). Future PRs regress against that artifact; the binary
//! itself exits nonzero if
//!
//! * any switch-reduce point carries gather-leg bytes (in-network
//!   reduction exists to make that leg vanish),
//! * a tree-ring or switch-reduce point at ≥64 workers drifts more than
//!   15% from the per-tier α-β-γ prediction, or
//! * the topology-aware modes stop beating the flat worker/aggregator
//!   once the core is oversubscribed (≥64 workers),
//!
//! so CI catches a scaling regression without comparing files.
//!
//! `INCEPTIONN_QUICK=1` stops the sweep at 256 workers and shrinks the
//! gradient block for smoke runs; the full run sweeps to 1024 with the
//! 1 MB block the committed artifact is quoted for.

use inceptionn::experiments::toposcale::{run, ScaleMode, ToposcalePoint};
use inceptionn::experiments::Fidelity;
use inceptionn::report::TextTable;
use inceptionn_bench::{banner, fidelity_from_env};

/// Relative tolerance between the simulator and the analytic model.
const MODEL_TOLERANCE: f64 = 0.15;

fn mode_key(mode: ScaleMode) -> &'static str {
    match mode {
        ScaleMode::FlatWa => "flat_wa",
        ScaleMode::FlatRing => "flat_ring",
        ScaleMode::TreeRing => "tree_ring",
        ScaleMode::SwitchReduce => "switch_reduce",
    }
}

fn get(pts: &[ToposcalePoint], mode: ScaleMode, nodes: usize, compressed: bool) -> &ToposcalePoint {
    pts.iter()
        .find(|p| p.mode == mode && p.nodes == nodes && p.compressed == compressed)
        .expect("sweep covers every (mode, nodes, compressed) cell")
}

fn main() {
    banner("4→1024 topology-tree scaling", "Fig. 12/15 extension");
    let fidelity = fidelity_from_env();
    let (bytes, max_nodes) = match fidelity {
        Fidelity::Full => (1_000_000u64, 1024),
        Fidelity::Quick => (250_000u64, 256),
    };
    let ratio_samples = fidelity.scale(50_000, 2_000);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_topo.json".to_string());

    println!(
        "radix-4 trees, 4:1 core oversubscription, 10 GbE edge, {bytes} B gradient block, \
         sweep to {max_nodes} workers\n"
    );
    let points = run(bytes, max_nodes, ratio_samples);
    let node_counts: Vec<usize> = {
        let mut ns: Vec<usize> = points.iter().map(|p| p.nodes).collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    };

    for compressed in [false, true] {
        println!(
            "{}",
            if compressed {
                "WITH in-NIC compression (eb = 2^-10, AlexNet stream):"
            } else {
                "without compression:"
            }
        );
        let mut t = TextTable::new(vec![
            "workers",
            "flat WA",
            "flat ring",
            "tree ring",
            "switch reduce",
        ]);
        for &nodes in &node_counts {
            let mut row = vec![format!("{nodes}")];
            for mode in ScaleMode::ALL {
                let p = get(&points, mode, nodes, compressed);
                let model = match p.analytic_s {
                    Some(m) => format!(" (model {m:.4})"),
                    None => String::new(),
                };
                row.push(format!("{:.4}s{model}", p.exchange_s));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"bytes\": {bytes},\n"));
    json.push_str(&format!("  \"max_nodes\": {max_nodes},\n"));
    json.push_str(&format!(
        "  \"fidelity\": \"{}\",\n",
        match fidelity {
            Fidelity::Full => "full",
            Fidelity::Quick => "quick",
        }
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let analytic = match p.analytic_s {
            Some(m) => format!("{m:.6}"),
            None => "null".to_string(),
        };
        let (by_tier, gather_leg) = match &p.wire {
            Some(w) => {
                let tiers: Vec<String> = w.by_tier.iter().map(|b| b.to_string()).collect();
                (format!("[{}]", tiers.join(", ")), w.gather_leg.to_string())
            }
            None => ("null".to_string(), "null".to_string()),
        };
        json.push_str(&format!(
            "    {{ \"mode\": \"{}\", \"nodes\": {}, \"depth\": {}, \"compressed\": {}, \
             \"exchange_s\": {:.6}, \"analytic_s\": {analytic}, \
             \"wire_by_tier\": {by_tier}, \"gather_leg\": {gather_leg} }}{}\n",
            mode_key(p.mode),
            p.nodes,
            p.arities.len(),
            p.compressed,
            p.exchange_s,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_topo.json");
    println!("wrote {out_path}");

    // --- regression gates ---
    let mut failed = false;
    for p in points.iter().filter(|p| p.mode == ScaleMode::SwitchReduce) {
        let wire = p.wire.as_ref().expect("switch reduce reports wire volume");
        if wire.gather_leg != 0 {
            eprintln!(
                "FAIL: switch reduce @{} (compressed={}) carried {} gather-leg bytes; \
                 in-network reduction must eliminate that leg",
                p.nodes, p.compressed, wire.gather_leg
            );
            failed = true;
        }
    }
    for p in points.iter().filter(|p| !p.compressed && p.nodes >= 64) {
        let Some(model) = p.analytic_s else { continue };
        let rel = (p.exchange_s - model).abs() / model;
        if rel > MODEL_TOLERANCE {
            eprintln!(
                "FAIL: {} @{}: sim {:.4}s vs model {model:.4}s drifts {:.1}% (> {:.0}%)",
                p.mode.label(),
                p.nodes,
                p.exchange_s,
                rel * 100.0,
                MODEL_TOLERANCE * 100.0
            );
            failed = true;
        }
    }
    for &nodes in node_counts.iter().filter(|&&n| n >= 64) {
        let wa = get(&points, ScaleMode::FlatWa, nodes, false).exchange_s;
        for mode in [ScaleMode::TreeRing, ScaleMode::SwitchReduce] {
            let p = get(&points, mode, nodes, false);
            if p.exchange_s >= wa {
                eprintln!(
                    "FAIL: {} @{nodes} ({:.4}s) no longer beats the flat WA ({wa:.4}s) \
                     on the oversubscribed core",
                    mode.label(),
                    p.exchange_s
                );
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "gates passed: gather leg 0 B, model within {:.0}%, topology modes ahead of flat WA",
        MODEL_TOLERANCE * 100.0
    );
}
