//! Regenerates Fig. 5: the gradient value distribution at early,
//! middle, and final training stages (real HDC training).

use inceptionn::experiments::gradhist::run;
use inceptionn::report::pct;
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Fig. 5", "Sec. III-B");
    let snaps = run(fidelity_from_env(), 7);
    for s in &snaps {
        println!(
            "stage {:>6} (iteration {:>5}): {} inside (-1,1), {} within ±0.01",
            s.stage,
            s.iteration,
            pct(s.histogram.in_range_fraction),
            pct(s.histogram.near_zero_fraction),
        );
        // ASCII histogram, 41 bins over (-1, 1).
        let peak = s.histogram.bins.iter().cloned().fold(0.0f64, f64::max);
        for (i, &b) in s.histogram.bins.iter().enumerate() {
            let x = -1.0 + 2.0 * (i as f64 + 0.5) / s.histogram.bins.len() as f64;
            let width = if peak > 0.0 {
                (b / peak * 60.0) as usize
            } else {
                0
            };
            if b > 0.0005 || i % 8 == 0 {
                println!(
                    "  {x:>5.2} | {}",
                    "#".repeat(width.max(usize::from(b > 0.0)))
                );
            }
        }
        println!();
    }
    println!("Paper shape: every stage is sharply peaked at zero, fully inside (-1, 1).");
}
