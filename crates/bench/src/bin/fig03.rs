//! Regenerates Fig. 3: model sizes and the share of training time spent
//! exchanging gradients/weights on the worker-aggregator cluster.

use inceptionn::cluster::ClusterConfig;
use inceptionn::experiments::breakdown::fig3;
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::banner;

fn main() {
    banner("Fig. 3", "Sec. II-B");
    let rows = fig3(&ClusterConfig::default());
    let mut t = TextTable::new(vec!["model", "size (MB)", "communication share"]);
    for r in &rows {
        t.row(vec![
            r.model.clone(),
            format!("{:.0}", r.size_mb),
            pct(r.comm_fraction),
        ]);
    }
    println!("{}", t.render());
    println!("Paper: AlexNet 233 MB / ~75%, ResNet-152 ~230 MB, VGG-16 525 MB / ~71%.");
}
