//! Regenerates Fig. 15: gradient-exchange time vs cluster size for the
//! worker-aggregator baseline and the INCEPTIONN ring, with the α-β-γ
//! analytic predictions alongside.

use inceptionn::experiments::scaling::{fig15, NODE_COUNTS};
use inceptionn::report::TextTable;
use inceptionn_bench::banner;

fn main() {
    banner("Fig. 15", "Sec. VIII-D");
    let points = fig15();
    for model in ["AlexNet", "HDC", "ResNet-50", "VGG-16"] {
        let mut t = TextTable::new(vec![
            "nodes",
            "WA sim (s)",
            "WA norm",
            "INC sim (s)",
            "INC norm",
            "WA analytic",
            "INC analytic",
        ]);
        for &nodes in &NODE_COUNTS {
            let wa = points
                .iter()
                .find(|p| p.model == model && p.is_wa && p.nodes == nodes)
                .unwrap();
            let inc = points
                .iter()
                .find(|p| p.model == model && !p.is_wa && p.nodes == nodes)
                .unwrap();
            t.row(vec![
                nodes.to_string(),
                format!("{:.3}", wa.exchange_s),
                format!("{:.2}", wa.normalized),
                format!("{:.3}", inc.exchange_s),
                format!("{:.2}", inc.normalized),
                format!("{:.3}", wa.analytic_s),
                format!("{:.3}", inc.analytic_s),
            ]);
        }
        println!("{model}:\n{}", t.render());
    }
    println!("Paper shape: WA grows ~linearly with node count; INC stays ~flat");
    println!("(the (p-1)/p factor saturates), especially for the large models.");
}
