//! Runs the design-choice ablations DESIGN.md calls out.

use inceptionn::experiments::ablation::{
    packet_overhead_sweep, size_selection, topology, zero_class,
};
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Ablations", "DESIGN.md");
    let fidelity = fidelity_from_env();

    println!("1) per-value size selection vs fixed 16-bit payloads (AlexNet stream)\n");
    let mut t = TextTable::new(vec!["bound", "adaptive ratio", "fixed-16 ratio", "gain"]);
    for a in size_selection(fidelity, 1) {
        t.row(vec![
            format!("2^-{}", a.bound_exp),
            format!("{:.2}x", a.adaptive_ratio),
            format!("{:.2}x", a.fixed16_ratio),
            format!("{:.2}x", a.adaptive_ratio / a.fixed16_ratio),
        ]);
    }
    println!("{}", t.render());

    println!("2) ring schedule vs naive all-to-all broadcast (100 MB gradients)\n");
    let mut t = TextTable::new(vec![
        "nodes",
        "ring (s)",
        "all-to-all (s)",
        "ring advantage",
    ]);
    for r in topology(&[4, 6, 8]) {
        t.row(vec![
            r.nodes.to_string(),
            format!("{:.3}", r.ring_s),
            format!("{:.3}", r.all_to_all_s),
            format!("{:.1}x", r.all_to_all_s / r.ring_s),
        ]);
    }
    println!("{}", t.render());

    println!("3) per-packet overhead vs achieved compression gain (ratio 14.9x)\n");
    let mut t = TextTable::new(vec!["header bytes", "time gain"]);
    for p in packet_overhead_sweep() {
        t.row(vec![
            p.header_bytes.to_string(),
            format!("{:.1}x", p.time_gain),
        ]);
    }
    println!("{}", t.render());
    println!("(why Sec. VIII-C sees 5.5-11.6x from a 14.9x ratio)\n");

    println!("4) contribution of the 0-bit class alone (AlexNet stream)\n");
    let mut t = TextTable::new(vec!["bound", "zero frac", "drop-only ratio", "full ratio"]);
    for z in zero_class(fidelity, 2) {
        t.row(vec![
            format!("2^-{}", z.bound_exp),
            pct(z.zero_fraction),
            format!("{:.2}x", z.drop_only_ratio),
            format!("{:.2}x", z.full_ratio),
        ]);
    }
    println!("{}", t.render());
}
