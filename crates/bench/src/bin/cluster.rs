//! Multi-tenant cluster soak: concurrent training jobs with membership
//! churn on one host, asserting the service's contracts end to end.
//!
//! Admits several tenants — different strategies, priorities, and
//! elastic membership schedules (a graceful leave + rejoin, a crash +
//! revive) — runs them under the weighted-fair scheduler, and checks:
//!
//! 1. **Determinism** — running the identical cluster twice produces
//!    byte-identical tenant reports, parameter fingerprints included.
//! 2. **Reconciliation** — every tenant's obs-side wire-byte total
//!    equals its transport's [`FabricStats`] counter to the byte.
//! 3. **Churn** — each scheduled join, leave, and crash actually fired,
//!    every job completed all its iterations, and every excision was
//!    recovered.
//! 4. **Sharing** — bandwidth fractions follow the priorities, and the
//!    thin-share tenant pays more link time per wire byte.
//!
//! Exits non-zero on any violated contract. `--smoke` shrinks the
//! workload for CI (2 jobs, <1 s); the full run admits more tenants for
//! longer.
//!
//! ```sh
//! cargo run --release -p inceptionn-bench --bin cluster -- --smoke
//! ```
//!
//! [`FabricStats`]: inceptionn_distrib::FabricStats

use inceptionn::service::{ClusterService, JobSpec, TenantReport};
use inceptionn_bench::banner;
use inceptionn_compress::ErrorBound;
use inceptionn_distrib::fabric::CodecSelection;
use inceptionn_distrib::trainer::ExchangeStrategy;
use inceptionn_distrib::MembershipSchedule;

struct Soak {
    failures: Vec<String>,
}

impl Soak {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            println!("  PASS  {name} ({detail})");
        } else {
            println!("  FAIL  {name} ({detail})");
            self.failures.push(format!("{name}: {detail}"));
        }
    }
}

/// The admitted tenant set: every job sees membership churn.
fn jobs(smoke: bool) -> Vec<JobSpec> {
    let iters = if smoke { 6 } else { 20 };
    let samples = if smoke { 48 } else { 160 };
    let mut jobs = vec![
        JobSpec {
            name: "ring-elastic".into(),
            workers: 3,
            strategy: ExchangeStrategy::Ring,
            iterations: iters,
            priority: 3,
            batch_per_worker: 4,
            data_samples: samples,
            seed: 11,
            membership: MembershipSchedule::new().leave(2, 2).join(4, 2),
            ..JobSpec::default()
        },
        JobSpec {
            name: "switch-crashy".into(),
            workers: 3,
            strategy: ExchangeStrategy::SwitchReduce,
            iterations: iters.saturating_sub(1),
            priority: 1,
            batch_per_worker: 4,
            data_samples: samples,
            seed: 13,
            membership: MembershipSchedule::new().crash(2, 1).join(4, 1),
            ..JobSpec::default()
        },
    ];
    if !smoke {
        jobs.push(JobSpec {
            name: "tree-compressed".into(),
            workers: 4,
            strategy: ExchangeStrategy::Tree,
            codec: CodecSelection::Scalar(ErrorBound::pow2(10)),
            iterations: iters,
            priority: 2,
            batch_per_worker: 4,
            data_samples: samples,
            seed: 17,
            membership: MembershipSchedule::new().leave(3, 3).join(6, 3),
            ..JobSpec::default()
        });
    }
    jobs
}

fn run_cluster(smoke: bool) -> Vec<TenantReport> {
    let mut cluster = ClusterService::new();
    for job in jobs(smoke) {
        cluster.admit(job);
    }
    cluster.run()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "multi-tenant cluster soak",
        if smoke { "smoke" } else { "full" },
    );
    let specs = jobs(smoke);
    println!(
        "{} tenants, priorities {:?}",
        specs.len(),
        specs.iter().map(|j| j.priority).collect::<Vec<_>>()
    );

    let mut soak = Soak {
        failures: Vec::new(),
    };
    let a = run_cluster(smoke);
    let b = run_cluster(smoke);

    println!(
        "\n{:<16} {:>6} {:>6} {:>12} {:>10} {:>6} {:>6} {:>7}",
        "tenant", "share", "iters", "wire B", "comm", "joins", "left", "crashes"
    );
    for r in &a {
        println!(
            "{:<16} {:>5.0}% {:>6} {:>12} {:>9.1}% {:>6} {:>6} {:>7}",
            r.name,
            r.bandwidth_fraction * 100.0,
            r.completed_iterations,
            r.wire_bytes,
            r.comm_fraction * 100.0,
            r.joins,
            r.leaves,
            r.crashes,
        );
    }
    println!();

    soak.check(
        "determinism",
        a == b,
        "replayed cluster reports byte-identical (fingerprints included)".to_string(),
    );
    for (r, spec) in a.iter().zip(&specs) {
        soak.check(
            &format!("{} reconcile", r.name),
            r.wire_bytes > 0 && r.wire_bytes == r.obs_wire_bytes,
            format!("fabric {} B vs obs {} B", r.wire_bytes, r.obs_wire_bytes),
        );
        soak.check(
            &format!("{} completion", r.name),
            r.completed_iterations == spec.iterations,
            format!(
                "{} of {} iterations",
                r.completed_iterations, spec.iterations
            ),
        );
        let scheduled_joins = spec
            .membership
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    inceptionn_distrib::MembershipEvent::Join { worker, .. }
                        if *worker < spec.workers
                )
            })
            .count();
        soak.check(
            &format!("{} churn", r.name),
            r.joins == scheduled_joins && r.recovered_steps == u64::from(r.crashes > 0),
            format!(
                "{} joins (want {}), {} recovered steps, {} crashes",
                r.joins, scheduled_joins, r.recovered_steps, r.crashes
            ),
        );
    }
    // The thin-share tenant pays more link time per wire byte.
    let cost = |r: &TenantReport| r.link_latency_ns as f64 / r.wire_bytes.max(1) as f64;
    let fat = &a[0];
    let thin = &a[1];
    soak.check(
        "sharing",
        cost(thin) > cost(fat),
        format!(
            "{:.3} ns/B at {:.0}% vs {:.3} ns/B at {:.0}%",
            cost(thin),
            thin.bandwidth_fraction * 100.0,
            cost(fat),
            fat.bandwidth_fraction * 100.0,
        ),
    );

    if soak.failures.is_empty() {
        println!("\ncluster OK: every multi-tenant contract held");
    } else {
        eprintln!("\ncluster FAILED:");
        for f in &soak.failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
