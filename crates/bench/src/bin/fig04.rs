//! Regenerates Fig. 4: training accuracy under LSB truncation of
//! weights only, gradients only, and both — on the really-trained HDC
//! network and the MiniCNN AlexNet stand-in.

use inceptionn::experiments::truncation::{run, CorruptTarget, ProxyModel};
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Fig. 4", "Sec. III-A");
    let fidelity = fidelity_from_env();
    for model in [ProxyModel::Hdc, ProxyModel::MiniCnn] {
        let study = run(model, fidelity, 2024);
        println!(
            "{} — lossless baseline accuracy {}",
            study.model,
            pct(study.baseline_accuracy as f64)
        );
        let mut t = TextTable::new(vec!["truncation", "g only", "w only", "w & g"]);
        for bits in [16u8, 22, 24] {
            let mut row = vec![format!("{bits}b-T")];
            for target in CorruptTarget::ALL {
                let acc = study.accuracy(bits, target).unwrap_or(f32::NAN);
                row.push(pct(acc as f64));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!("Paper shape: 'g only' stays near baseline at every depth;");
    println!("'w only' and 'w & g' collapse at 22-24 bits (exponent damage).");
}
