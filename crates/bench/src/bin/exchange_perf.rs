//! End-to-end exchange throughput: unpipelined vs pipelined hot path.
//!
//! Runs every exchange strategy (ring, tree, worker-aggregator, switch)
//! over the NIC transport — the real modeled datapath, packets and
//! engines included — with and without compression, timing the whole
//! all-reduce. Each strategy is measured twice: the whole-block `_over`
//! schedule and its pipelined variant (chunked legs, bounded in-flight
//! window, recycled arena frames through `Fabric::encode_into`). The
//! numbers land in `BENCH_exchange.json` at the repo root (or the path
//! given as an argument).
//!
//! The binary is its own regression gate: the pipelined path must reach
//! at least [`GATE`]× the unpipelined throughput for every strategy ×
//! codec cell, or it exits nonzero — CI runs the `--smoke` variant so a
//! hot-path regression cannot merge. It also asserts the pipelined
//! result is bit-identical to the unpipelined one on the measured
//! workload, a live differential on top of the test-suite pins.
//!
//! `--smoke` (or `INCEPTIONN_QUICK=1`) shrinks the workload for CI; the
//! full run uses the 4M-value-per-worker block the acceptance numbers
//! are quoted for.

use std::time::Instant;

use inceptionn::experiments::Fidelity;
use inceptionn_bench::{banner, fidelity_from_env};
use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
use inceptionn_compress::ErrorBound;
use inceptionn_distrib::{
    CodecSelection, Exchange, ExchangeStrategy, Fabric, FabricBuilder, PipelineConfig,
    TransportKind,
};
use inceptionn_netsim::Topology;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Timing repetitions; the best (minimum) wall time is reported.
const REPS: usize = 3;
/// Error bound exponent for the compressed cells (2^-8, the paper's
/// middle setting).
const BOUND_EXP: u8 = 8;
/// Workers in every exchange.
const WORKERS: usize = 4;
/// Regression gate: pipelined throughput must reach this fraction of
/// the unpipelined throughput in every cell.
const GATE: f64 = 0.70;

struct Cell {
    strategy: &'static str,
    codec: &'static str,
    unpipelined_gbps: f64,
    pipelined_gbps: f64,
}

impl Cell {
    fn ratio(&self) -> f64 {
        self.pipelined_gbps / self.unpipelined_gbps.max(1e-12)
    }
}

/// Times `run` over fresh clones of `grads`, returning the best wall
/// seconds and the final gradients (identical across reps for these
/// deterministic fabrics).
fn time_exchange(grads: &[Vec<f32>], mut run: impl FnMut(&mut [Vec<f32>])) -> (f64, Vec<Vec<f32>>) {
    let mut best_s = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let mut w = grads.to_vec();
        let t = Instant::now();
        run(&mut w);
        best_s = best_s.min(t.elapsed().as_secs_f64());
        out = Some(w);
    }
    (best_s, out.expect("REPS > 0"))
}

fn build(endpoints: usize, codec: CodecSelection) -> Box<dyn Fabric> {
    FabricBuilder::new(endpoints)
        .transport(TransportKind::Nic)
        .codec(codec)
        .build()
}

/// One all-reduce through the unified [`Exchange`] seam over a fresh
/// fabric: whole-block when `pipeline` is `None`, the pipelined
/// schedule otherwise.
fn run_exchange(
    strategy: ExchangeStrategy,
    topo: Option<&Topology>,
    pipeline: Option<PipelineConfig>,
    endpoints: usize,
    live: &[usize],
    codec: CodecSelection,
    w: &mut [Vec<f32>],
) {
    let mut f = build(endpoints, codec);
    let mut ex = Exchange::new(live.len());
    if let Some(t) = topo {
        ex = ex.with_topology(t.clone());
    }
    if let Some(cfg) = pipeline {
        ex = ex.pipelined(cfg);
    }
    ex.run(strategy, f.as_mut(), w, live).expect("exchange");
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_exchange.json".to_string());
    let fidelity = if smoke {
        Fidelity::Quick
    } else {
        fidelity_from_env()
    };

    banner(
        "end-to-end exchange throughput",
        "pipelined zero-copy hot path",
    );
    let len = fidelity.scale(4 * 1024 * 1024, 64 * 1024);
    let cfg = PipelineConfig::default();
    println!(
        "{WORKERS} workers x {len} values ({:.1} MiB each), NIC transport, \
         chunk {} values, depth {}, {REPS} reps (best)",
        (len * 4) as f64 / (1024.0 * 1024.0),
        cfg.chunk_values,
        cfg.depth,
    );

    let mut rng = StdRng::seed_from_u64(0x1ce9);
    let model = GradientModel::preset(GradientPreset::AlexNet);
    let grads: Vec<Vec<f32>> = (0..WORKERS).map(|_| model.sample(&mut rng, len)).collect();
    // Aggregate gradient payload one all-reduce moves to completion.
    let total_bytes = (WORKERS * len * 4) as f64;
    let gbps = |secs: f64| total_bytes / secs / 1e9;

    let endpoints: Vec<usize> = (0..WORKERS).collect();
    let topo = Topology::two_tier(2, WORKERS / 2);
    // All four wire families. The sparse cell runs threshold-only
    // (`top_per_mille: 0`): per-encode-call top-k picks a different
    // transmit set per chunk, so a capped cell could not pass the
    // plain == pipelined bit-identity assert below. Threshold-EF and
    // the sketch are elementwise and chunk-stable.
    let bounds: [(&'static str, CodecSelection); 4] = [
        ("none", CodecSelection::None),
        (
            "inceptionn",
            CodecSelection::Parallel {
                bound: ErrorBound::pow2(BOUND_EXP),
                shards: 0,
            },
        ),
        (
            "sparse",
            CodecSelection::Sparse {
                bound: ErrorBound::pow2(6),
                top_per_mille: 0,
            },
        ),
        ("sketch", CodecSelection::Sketch { frac_bits: 10 }),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for (codec, bound) in bounds {
        // Ring.
        let (plain_s, plain_out) = time_exchange(&grads, |w| {
            run_exchange(
                ExchangeStrategy::Ring,
                None,
                None,
                WORKERS,
                &endpoints,
                bound,
                w,
            );
        });
        let (piped_s, piped_out) = time_exchange(&grads, |w| {
            run_exchange(
                ExchangeStrategy::Ring,
                None,
                Some(cfg),
                WORKERS,
                &endpoints,
                bound,
                w,
            );
        });
        assert_eq!(plain_out, piped_out, "ring/{codec}: pipelined diverged");
        cells.push(Cell {
            strategy: "ring",
            codec,
            unpipelined_gbps: gbps(plain_s),
            pipelined_gbps: gbps(piped_s),
        });

        // Topology tree (two tiers of two).
        let (plain_s, plain_out) = time_exchange(&grads, |w| {
            run_exchange(
                ExchangeStrategy::Tree,
                Some(&topo),
                None,
                WORKERS,
                &endpoints,
                bound,
                w,
            );
        });
        let (piped_s, piped_out) = time_exchange(&grads, |w| {
            run_exchange(
                ExchangeStrategy::Tree,
                Some(&topo),
                Some(cfg),
                WORKERS,
                &endpoints,
                bound,
                w,
            );
        });
        assert_eq!(plain_out, piped_out, "tree/{codec}: pipelined diverged");
        cells.push(Cell {
            strategy: "tree",
            codec,
            unpipelined_gbps: gbps(plain_s),
            pipelined_gbps: gbps(piped_s),
        });

        // Worker-aggregator (one extra endpoint for the aggregator).
        let (plain_s, plain_out) = time_exchange(&grads, |w| {
            run_exchange(
                ExchangeStrategy::WorkerAggregator,
                None,
                None,
                WORKERS + 1,
                &endpoints,
                bound,
                w,
            );
        });
        let (piped_s, piped_out) = time_exchange(&grads, |w| {
            run_exchange(
                ExchangeStrategy::WorkerAggregator,
                None,
                Some(cfg),
                WORKERS + 1,
                &endpoints,
                bound,
                w,
            );
        });
        assert_eq!(
            plain_out, piped_out,
            "worker-aggregator/{codec}: pipelined diverged"
        );
        cells.push(Cell {
            strategy: "worker-aggregator",
            codec,
            unpipelined_gbps: gbps(plain_s),
            pipelined_gbps: gbps(piped_s),
        });

        // Switch-resident in-network aggregation.
        let (plain_s, plain_out) = time_exchange(&grads, |w| {
            run_exchange(
                ExchangeStrategy::SwitchReduce,
                None,
                None,
                WORKERS,
                &endpoints,
                bound,
                w,
            );
        });
        let (piped_s, piped_out) = time_exchange(&grads, |w| {
            run_exchange(
                ExchangeStrategy::SwitchReduce,
                None,
                Some(cfg),
                WORKERS,
                &endpoints,
                bound,
                w,
            );
        });
        assert_eq!(plain_out, piped_out, "switch/{codec}: pipelined diverged");
        cells.push(Cell {
            strategy: "switch",
            codec,
            unpipelined_gbps: gbps(plain_s),
            pipelined_gbps: gbps(piped_s),
        });
    }

    println!(
        "\n{:<20} {:<12} {:>14} {:>14} {:>8}",
        "strategy", "codec", "whole GB/s", "piped GB/s", "ratio"
    );
    for c in &cells {
        println!(
            "{:<20} {:<12} {:>14.3} {:>14.3} {:>7.2}x",
            c.strategy,
            c.codec,
            c.unpipelined_gbps,
            c.pipelined_gbps,
            c.ratio(),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"workers\": {WORKERS},\n"));
    json.push_str(&format!("  \"values_per_worker\": {len},\n"));
    json.push_str(&format!("  \"bound_exp\": {BOUND_EXP},\n"));
    json.push_str(&format!("  \"chunk_values\": {},\n", cfg.chunk_values));
    json.push_str(&format!("  \"pipeline_depth\": {},\n", cfg.depth));
    json.push_str(&format!("  \"gate_ratio\": {GATE},\n"));
    json.push_str(&format!(
        "  \"fidelity\": \"{}\",\n",
        if len == 4 * 1024 * 1024 {
            "full"
        } else {
            "quick"
        }
    ));
    json.push_str("  \"transport\": \"nic\",\n");
    json.push_str("  \"strategies\": {\n");
    let strategies = ["ring", "tree", "worker-aggregator", "switch"];
    for (si, s) in strategies.iter().enumerate() {
        json.push_str(&format!("    \"{s}\": {{\n"));
        let of: Vec<&Cell> = cells.iter().filter(|c| c.strategy == *s).collect();
        for (ci, c) in of.iter().enumerate() {
            json.push_str(&format!(
                "      \"{}\": {{ \"unpipelined_gbps\": {:.4}, \"pipelined_gbps\": {:.4}, \"ratio\": {:.4} }}{}\n",
                c.codec,
                c.unpipelined_gbps,
                c.pipelined_gbps,
                c.ratio(),
                if ci + 1 < of.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!(
            "    }}{}\n",
            if si + 1 < strategies.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n");
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_exchange.json");
    println!("\nwrote {out_path}");

    let mut failed = false;
    for c in &cells {
        if c.ratio() < GATE {
            eprintln!(
                "FAIL: {}/{} pipelined path at {:.2}x of unpipelined (< {GATE:.2}x)",
                c.strategy,
                c.codec,
                c.ratio(),
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
