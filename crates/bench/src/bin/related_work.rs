//! Extension study: INCEPTIONN vs the related-work gradient-reduction
//! algorithms of Sec. IX (1-bit SGD, TernGrad, DGC-style top-k).

use inceptionn::experiments::related::run;
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Related-work comparison", "Sec. IX extension");
    let rows = run(fidelity_from_env(), 77);
    let mut t = TextTable::new(vec![
        "approach",
        "ratio",
        "accuracy",
        "relative",
        "stateless (NIC-ready)",
    ]);
    for r in &rows {
        t.row(vec![
            r.approach.label().to_string(),
            format!("{:.1}x", r.ratio),
            pct(r.accuracy as f64),
            format!("{:.3}", r.relative),
            if r.approach.is_stateful() {
                "no"
            } else {
                "yes"
            }
            .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("The reduction algorithms reach larger ratios but carry per-worker");
    println!("state (error feedback / sparsity bookkeeping) that must run on the");
    println!("host CPU — the paper's case for a stateless per-value NIC codec.");
}
