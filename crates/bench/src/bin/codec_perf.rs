//! Codec fast-path perf harness: scalar vs burst vs parallel, plus the
//! sparse and sketch wire families.
//!
//! Times encode and decode of one large gradient block through the
//! scalar reference codec ([`InceptionnCodec`]), the burst-vectorized
//! fast path ([`BurstCodec`]), the sharded [`ParallelCodec`], the
//! threshold+error-feedback [`SparseCodec`], and the homomorphic
//! [`SketchCodec`], then
//! writes the numbers to `BENCH_codec.json` at the repo root (or the
//! path given as the first argument). Future PRs regress against that
//! artifact; the binary itself exits nonzero if the parallel codec's
//! combined encode+decode throughput drops below the scalar baseline,
//! so CI catches a fast-path regression without comparing files. It
//! also exits nonzero if the obs-instrumented entry points cost more
//! than 2% over the plain ones when tracing is disabled, keeping the
//! no-op recorder effectively free.
//!
//! `INCEPTIONN_QUICK=1` shrinks the block for smoke runs; the full run
//! uses the 16M-value block the acceptance numbers are quoted for.

use std::time::Instant;

use inceptionn_bench::{banner, fidelity_from_env};
use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
use inceptionn_compress::{
    sketch, sparse, BurstCodec, ErrorBound, InceptionnCodec, ParallelCodec, ResidualState,
    SketchCodec, SparseCodec, SparseConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Timing repetitions; the best (minimum) wall time is reported so a
/// stray scheduler hiccup can't fail the regression gate.
const REPS: usize = 3;
/// Error bound exponent used for the trajectory artifact (2^-8, the
/// paper's middle setting).
const BOUND_EXP: u8 = 8;

struct CodecTiming {
    name: &'static str,
    encode_s: f64,
    decode_s: f64,
}

impl CodecTiming {
    fn encode_gbps(&self, bytes: usize) -> f64 {
        bytes as f64 / self.encode_s / 1e9
    }
    fn decode_gbps(&self, bytes: usize) -> f64 {
        bytes as f64 / self.decode_s / 1e9
    }
    /// Combined encode+decode throughput: raw bytes pushed through both
    /// stages divided by the total time in them.
    fn roundtrip_gbps(&self, bytes: usize) -> f64 {
        bytes as f64 / (self.encode_s + self.decode_s) / 1e9
    }
}

fn best<F: FnMut() -> R, R>(mut f: F) -> (f64, R) {
    let mut best_s = f64::INFINITY;
    let mut out = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let r = f();
        best_s = best_s.min(t.elapsed().as_secs_f64());
        out = Some(r);
    }
    (best_s, out.unwrap())
}

fn json_escape_free(name: &str) -> &str {
    // All strings we emit are static identifiers; assert rather than
    // carry a full escaper.
    assert!(name
        .chars()
        .all(|c| c.is_ascii_graphic() && c != '"' && c != '\\'));
    name
}

fn main() {
    banner("codec fast-path throughput", "Sec. V / software datapath");
    let fidelity = fidelity_from_env();
    let n = fidelity.scale(16 * 1024 * 1024, 256 * 1024);
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_codec.json".to_string());

    let bound = ErrorBound::pow2(BOUND_EXP);
    let scalar = InceptionnCodec::new(bound);
    let burst = BurstCodec::new(bound);
    let parallel = ParallelCodec::with_host_parallelism(bound);

    println!(
        "block: {n} values ({:.1} MiB), bound 2^-{BOUND_EXP}, {} shard(s), {REPS} reps (best)",
        (n * 4) as f64 / (1024.0 * 1024.0),
        parallel.shards(),
    );
    let mut rng = StdRng::seed_from_u64(0x1ce9);
    let grads = GradientModel::preset(GradientPreset::AlexNet).sample(&mut rng, n);
    let raw_bytes = n * 4;

    // Untimed warm-up roundtrips: fault in the input pages, size the
    // allocator pools, and spin up the persistent codec workers so the
    // first timed rep measures the codec, not first-touch costs.
    let _ = scalar
        .decompress(&scalar.compress(&grads[..n.min(1 << 20)]))
        .expect("scalar warm-up");
    let _ = burst.compress(&grads[..n.min(1 << 20)]);
    let mut pframe = parallel.encode(&grads);
    let mut pout = vec![0f32; n];
    parallel
        .decode_into(&pframe, &mut pout)
        .expect("parallel warm-up");

    // --- scalar reference ---
    let (enc_s, stream) = best(|| scalar.compress(&grads));
    let (dec_s, restored) = best(|| scalar.decompress(&stream).expect("scalar decode"));
    let wire_ratio = raw_bytes as f64 / stream.bytes.len() as f64;
    let scalar_t = CodecTiming {
        name: "scalar",
        encode_s: enc_s,
        decode_s: dec_s,
    };

    // --- burst fast path (single shard) ---
    let (enc_s, bstream) = best(|| burst.compress(&grads));
    assert_eq!(
        bstream.bytes, stream.bytes,
        "burst stream diverged from scalar"
    );
    let mut bout = vec![0f32; n];
    let (dec_s, ()) = best(|| {
        burst
            .decompress_into(&bstream.bytes, n, &mut bout)
            .expect("burst decode")
    });
    assert_eq!(bout, restored, "burst decode diverged from scalar");
    let burst_t = CodecTiming {
        name: "burst",
        encode_s: enc_s,
        decode_s: dec_s,
    };

    // --- sharded parallel codec ---
    // Timed through the zero-copy entry points with reused buffers:
    // `encode_into` refills the warm frame and `decode_into` writes into
    // a caller-owned slice, so the loop measures codec throughput, not
    // a 64 MiB zeroed allocation per call (the exchange hot path reuses
    // its buffers the same way).
    let (enc_s, ()) = best(|| parallel.encode_into(&grads, &mut pframe));
    let (dec_s, ()) = best(|| {
        parallel
            .decode_into(&pframe, &mut pout)
            .expect("parallel decode")
    });
    assert_eq!(pout, restored, "parallel decode diverged from scalar");
    let parallel_t = CodecTiming {
        name: "parallel",
        encode_s: enc_s,
        decode_s: dec_s,
    };
    let frame_ratio = raw_bytes as f64 / pframe.wire_bytes() as f64;
    let frame_shards = pframe.shards.len();
    let pool_workers = inceptionn_compress::pool::global().workers();

    // --- sparse threshold+EF codec ---
    // A different wire family (index/value pairs, not truncated floats),
    // so no bit-identity against the rows above; the roundtrip is
    // checked in-family. Throughput is still quoted per *input* byte so
    // the rows compare on the same axis. `begin_iteration` rewinds the
    // residual leg each rep, so every rep encodes the same leg slot.
    let sparse_codec = SparseCodec::new(SparseConfig {
        bound: ErrorBound::pow2(6),
        top_per_mille: 0,
        seed: 0x1CEE_D5EE_D0DE_C0DE,
    });
    let mut sp_state = ResidualState::new();
    let mut sp_buf = Vec::new();
    sparse_codec.encode_append(0, &mut sp_state, &grads, &mut sp_buf);
    let (enc_s, ()) = best(|| {
        sp_state.begin_iteration();
        sp_buf.clear();
        sparse_codec.encode_append(0, &mut sp_state, &grads, &mut sp_buf);
    });
    let mut sp_out = vec![0f32; n];
    let (dec_s, ()) = best(|| sparse::decode_frame(&sp_buf, &mut sp_out).expect("sparse decode"));
    let sparse_wire_ratio = raw_bytes as f64 / sp_buf.len() as f64;
    let sparse_t = CodecTiming {
        name: "sparse",
        encode_s: enc_s,
        decode_s: dec_s,
    };

    // --- count-sketch codec ---
    let sketch_codec = SketchCodec::new(6, 0x1CEE_D5EE_D0DE_C0DE);
    let mut sk_buf = Vec::new();
    sketch_codec.encode_append(&grads, &mut sk_buf);
    let (enc_s, ()) = best(|| {
        sk_buf.clear();
        sketch_codec.encode_append(&grads, &mut sk_buf);
    });
    let mut sk_out = vec![0f32; n];
    let (dec_s, ()) = best(|| sketch::decode_frame(&sk_buf, &mut sk_out).expect("sketch decode"));
    assert_eq!(sk_out, sketch_codec.quantize(&grads), "sketch not exact");
    let sketch_wire_ratio = raw_bytes as f64 / sk_buf.len() as f64;
    let sketch_t = CodecTiming {
        name: "sketch",
        encode_s: enc_s,
        decode_s: dec_s,
    };

    let timings = [&scalar_t, &burst_t, &parallel_t, &sparse_t, &sketch_t];
    println!(
        "\n{:<10} {:>12} {:>12} {:>14}",
        "codec", "enc GB/s", "dec GB/s", "enc+dec GB/s"
    );
    for t in timings {
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>14.3}",
            t.name,
            t.encode_gbps(raw_bytes),
            t.decode_gbps(raw_bytes),
            t.roundtrip_gbps(raw_bytes),
        );
    }
    let speedup = parallel_t.roundtrip_gbps(raw_bytes) / scalar_t.roundtrip_gbps(raw_bytes);
    println!(
        "\nwire ratio {wire_ratio:.2}x (framed {frame_ratio:.2}x), parallel/scalar speedup {speedup:.2}x, \
         {frame_shards} shard(s) over {pool_workers} pool worker(s)"
    );
    println!(
        "sparse wire ratio {sparse_wire_ratio:.2}x (2^-6 threshold), \
         sketch wire ratio {sketch_wire_ratio:.2}x (frac_bits 6)"
    );

    // --- tracing-off overhead gate ---
    // The instrumented entry points with a disabled buffer must cost the
    // same as the plain ones. The pair is timed *interleaved* (plain
    // roundtrip, then traced roundtrip, per rep) with more reps than the
    // throughput numbers above, so scheduler jitter and cache state hit
    // both sides equally and best-of stays meaningful at smoke sizes.
    const OVERHEAD_REPS: usize = 9;
    // Each timed sample loops the roundtrip enough times to cover at
    // least ~10 ms of work, so sub-millisecond smoke blocks don't turn
    // the gate into a timer-jitter lottery.
    let roundtrip_est = parallel_t.encode_s + parallel_t.decode_s;
    let inner = ((0.010 / roundtrip_est.max(1e-6)).ceil() as usize).clamp(1, 32);
    let mut disabled = obs::EventBuf::disabled();
    // The gate is the *median of per-rep ratios*: the two sides of one
    // rep run back to back, so a frequency or scheduler excursion hits
    // both and cancels in the ratio, and the median discards the reps
    // it did not. Measured on a single-shard codec — the per-shard
    // instrumentation cost is what's gated, and skipping the spawn of
    // worker threads removes their (dominant, unrelated) jitter.
    let single = ParallelCodec::new(bound, 1);
    // One untimed warm-up pair so neither side pays first-touch costs.
    let _ = single.decode(&single.encode(&grads)).expect("warm-up");
    let _ = single
        .decode_traced(&single.encode_traced(&grads, &mut disabled), &mut disabled)
        .expect("warm-up (traced)");
    let mut ratios = Vec::with_capacity(OVERHEAD_REPS);
    for _ in 0..OVERHEAD_REPS {
        let mut plain_s = 0.0;
        let mut traced_s = 0.0;
        let time_plain = |acc: &mut f64| {
            let t = Instant::now();
            let f = single.encode(&grads);
            let out = single.decode(&f).expect("parallel decode");
            *acc += t.elapsed().as_secs_f64();
            assert_eq!(out.len(), n);
        };
        let mut time_traced = |acc: &mut f64| {
            let t = Instant::now();
            let f = single.encode_traced(&grads, &mut disabled);
            let out = single
                .decode_traced(&f, &mut disabled)
                .expect("parallel decode (traced)");
            *acc += t.elapsed().as_secs_f64();
            assert_eq!(out.len(), n);
        };
        // Palindrome (plain, traced, traced, plain) interleave: each
        // side takes every position equally, so both linear drift *and*
        // whatever state the previous call leaves behind (allocator,
        // caches) cancel in the ratio of the sums.
        for _ in 0..inner.div_ceil(2) {
            time_plain(&mut plain_s);
            time_traced(&mut traced_s);
            time_traced(&mut traced_s);
            time_plain(&mut plain_s);
        }
        ratios.push(traced_s / plain_s.max(1e-12));
    }
    assert!(disabled.events().is_empty(), "disabled buffer recorded");
    ratios.sort_by(f64::total_cmp);
    let tracing_off_overhead = ratios[OVERHEAD_REPS / 2] - 1.0;
    println!(
        "tracing-off overhead {:+.2}% (median of {OVERHEAD_REPS} traced/plain ratios, \
         {} roundtrips per side, no-op recorder)",
        tracing_off_overhead * 100.0,
        inner.div_ceil(2) * 2,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"values\": {n},\n"));
    json.push_str(&format!("  \"raw_bytes\": {raw_bytes},\n"));
    json.push_str(&format!("  \"bound_exp\": {BOUND_EXP},\n"));
    json.push_str(&format!("  \"shards\": {frame_shards},\n"));
    json.push_str(&format!("  \"pool_workers\": {pool_workers},\n"));
    json.push_str(&format!(
        "  \"fidelity\": \"{}\",\n",
        if n == 16 * 1024 * 1024 {
            "full"
        } else {
            "quick"
        }
    ));
    json.push_str(&format!("  \"wire_ratio\": {wire_ratio:.4},\n"));
    json.push_str(&format!("  \"framed_wire_ratio\": {frame_ratio:.4},\n"));
    json.push_str(&format!(
        "  \"sparse_wire_ratio\": {sparse_wire_ratio:.4},\n"
    ));
    json.push_str(&format!(
        "  \"sketch_wire_ratio\": {sketch_wire_ratio:.4},\n"
    ));
    json.push_str("  \"codecs\": {\n");
    for (i, t) in timings.iter().enumerate() {
        json.push_str(&format!(
            "    \"{}\": {{ \"encode_gbps\": {:.4}, \"decode_gbps\": {:.4}, \"roundtrip_gbps\": {:.4} }}{}\n",
            json_escape_free(t.name),
            t.encode_gbps(raw_bytes),
            t.decode_gbps(raw_bytes),
            t.roundtrip_gbps(raw_bytes),
            if i + 1 < timings.len() { "," } else { "" },
        ));
    }
    json.push_str("  },\n");
    json.push_str(&format!(
        "  \"parallel_over_scalar_speedup\": {speedup:.4},\n"
    ));
    json.push_str(&format!(
        "  \"tracing_off_overhead\": {tracing_off_overhead:.4}\n"
    ));
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_codec.json");
    println!("wrote {out_path}");

    if speedup < 1.0 {
        eprintln!("FAIL: parallel codec ({speedup:.2}x) regressed below the scalar baseline");
        std::process::exit(1);
    }
    if tracing_off_overhead > 0.02 {
        eprintln!(
            "FAIL: disabled tracing costs {:.2}% (> 2%) on the codec hot path",
            tracing_off_overhead * 100.0
        );
        std::process::exit(1);
    }
}
