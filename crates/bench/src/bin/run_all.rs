//! Regenerates every table and figure in one go, writing each artifact
//! to `results/<name>.txt` (directory configurable via
//! `INCEPTIONN_RESULTS_DIR`).
//!
//! ```sh
//! INCEPTIONN_QUICK=1 cargo run --release -p inceptionn-bench --bin run_all
//! ```

use std::path::PathBuf;
use std::process::Command;

/// Binaries regenerated, in paper order.
const ARTIFACTS: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "fig03",
    "fig04",
    "fig05",
    "fig07",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "ablations",
    "boundsweep",
    "hierarchy",
    "related_work",
];

fn main() {
    let dir = std::env::var_os("INCEPTIONN_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results directory");
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin directory")
        .to_path_buf();
    let mut failures = Vec::new();
    for name in ARTIFACTS {
        let bin = exe_dir.join(name);
        if !bin.exists() {
            eprintln!(
                "{name}: binary not found at {} — build the full bench package first:\n  cargo build --release -p inceptionn-bench",
                bin.display()
            );
            std::process::exit(2);
        }
        print!("{name:<14}");
        let out = Command::new(&bin)
            .output()
            .unwrap_or_else(|e| panic!("spawn {}: {e}", bin.display()));
        let path = dir.join(format!("{name}.txt"));
        std::fs::write(&path, &out.stdout).expect("write artifact");
        if out.status.success() {
            println!("-> {}", path.display());
        } else {
            println!("FAILED ({})", out.status);
            failures.push(name);
        }
    }
    if failures.is_empty() {
        println!(
            "\nall {} artifacts regenerated into {}",
            ARTIFACTS.len(),
            dir.display()
        );
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
