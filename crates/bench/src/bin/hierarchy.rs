//! Extension study: the Fig. 1 cluster organizations on a two-tier
//! fabric with core oversubscription (Sec. VII-C's datacenter setting).

use inceptionn::experiments::hierarchy::{run, Organization};
use inceptionn::report::TextTable;
use inceptionn_bench::banner;

fn main() {
    banner("Fig. 1 organizations on a two-tier fabric", "Sec. VII-C extension");
    println!("32 nodes (4 racks x 8), AlexNet-sized gradients (233 MB), 10 GbE edge\n");
    let points = run(50_000);
    for compressed in [false, true] {
        println!(
            "{}",
            if compressed {
                "WITH in-NIC compression (eb = 2^-10):"
            } else {
                "without compression:"
            }
        );
        let mut t = TextTable::new(vec![
            "core oversubscription",
            "flat WA",
            "hier WA",
            "flat ring",
            "hier ring",
        ]);
        for oversub in [1u64, 4, 16, 80] {
            let mut row = vec![format!("{oversub}:1")];
            for org in Organization::ALL {
                let p = points
                    .iter()
                    .find(|p| {
                        p.organization == org
                            && p.oversubscription == oversub
                            && p.compressed == compressed
                    })
                    .unwrap();
                row.push(format!("{:.2}s", p.exchange_s));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!("Expected shape: rings dominate aggregators; the hierarchical ring");
    println!("only pays off once the core is heavily oversubscribed; compression");
    println!("recovers most of the oversubscription penalty.");
}
