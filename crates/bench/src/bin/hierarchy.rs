//! Extension study: the Fig. 1 cluster organizations on a two-tier
//! fabric with core oversubscription (Sec. VII-C's datacenter setting).

use inceptionn::experiments::hierarchy::{measured_wire_volume, run, Organization};
use inceptionn::report::TextTable;
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner(
        "Fig. 1 organizations on a two-tier fabric",
        "Sec. VII-C extension",
    );
    println!("32 nodes (4 racks x 8), AlexNet-sized gradients (233 MB), 10 GbE edge\n");
    let points = run(50_000);
    for compressed in [false, true] {
        println!(
            "{}",
            if compressed {
                "WITH in-NIC compression (eb = 2^-10):"
            } else {
                "without compression:"
            }
        );
        let mut t = TextTable::new(vec![
            "core oversubscription",
            "flat WA",
            "hier WA",
            "flat ring",
            "hier ring",
        ]);
        for oversub in [1u64, 4, 16, 80] {
            let mut row = vec![format!("{oversub}:1")];
            for org in Organization::ALL {
                let p = points
                    .iter()
                    .find(|p| {
                        p.organization == org
                            && p.oversubscription == oversub
                            && p.compressed == compressed
                    })
                    .unwrap();
                row.push(format!("{:.2}s", p.exchange_s));
            }
            t.row(row);
        }
        println!("{}", t.render());
    }
    println!("fabric-measured wire volume (8 workers in 2 groups of 4, NicFabric):\n");
    let len = fidelity_from_env().scale(40_000, 4_000);
    let rows = measured_wire_volume(len, 9);
    let mut t = TextTable::new(vec!["organization", "compressed", "payload B", "wire B"]);
    for r in &rows {
        t.row(vec![
            r.organization.label().to_string(),
            if r.compressed { "eb=2^-10" } else { "-" }.to_string(),
            format!("{}", r.payload_bytes),
            format!("{}", r.wire_bytes),
        ]);
    }
    println!("{}", t.render());

    println!("Expected shape: rings dominate aggregators; the hierarchical ring");
    println!("only pays off once the core is heavily oversubscribed; compression");
    println!("recovers most of the oversubscription penalty.");
}
