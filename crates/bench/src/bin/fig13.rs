//! Regenerates Fig. 13: speedup of the full INCEPTIONN system over the
//! conventional approach when both train to the *same final accuracy*.

use inceptionn::cluster::ClusterConfig;
use inceptionn::experiments::speedup::fig13;
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::banner;

fn main() {
    banner("Fig. 13", "Sec. VIII-B");
    let rows = fig13(&ClusterConfig::default());
    let mut t = TextTable::new(vec![
        "model",
        "final acc",
        "epochs WA",
        "epochs INC+C",
        "time WA",
        "time INC+C",
        "speedup",
    ]);
    for r in &rows {
        let fmt_h = |h: f64| {
            if h < 0.5 {
                format!("{:.0}s", h * 3600.0)
            } else {
                format!("{h:.0}h")
            }
        };
        t.row(vec![
            r.model.clone(),
            pct(r.final_accuracy),
            r.epochs_wa.to_string(),
            r.epochs_inc_c.to_string(),
            fmt_h(r.hours_wa),
            fmt_h(r.hours_inc_c),
            format!("{:.2}x", r.speedup),
        ]);
    }
    println!("{}", t.render());
    println!("Paper: 175h->56h (AlexNet), 170s->64s (HDC), 378h->127h (ResNet-50),");
    println!("847h->384h (VGG-16); 1-2 extra epochs buy back the compression loss.");
}
