//! Regenerates Table II: time breakdown of 100 training iterations on
//! the 5-node worker-aggregator cluster (communication simulated).

use inceptionn::cluster::ClusterConfig;
use inceptionn::experiments::breakdown::table2;
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::banner;

fn main() {
    banner("Table II", "Sec. VIII-A");
    let rows = table2(&ClusterConfig::default());
    let mut t = TextTable::new(vec![
        "Steps",
        "AlexNet",
        "",
        "HDC",
        " ",
        "ResNet-50",
        "  ",
        "VGG-16",
        "   ",
    ]);
    type PhaseGetter = Box<dyn Fn(&inceptionn::experiments::breakdown::Table2Row) -> f64>;
    let phase_rows: Vec<(&str, PhaseGetter)> = vec![
        ("Forward pass", Box::new(|r| r.forward)),
        ("Backward pass", Box::new(|r| r.backward)),
        ("GPU copy", Box::new(|r| r.gpu_copy)),
        ("Gradient sum", Box::new(|r| r.grad_sum)),
        ("Communicate", Box::new(|r| r.communicate)),
        ("Update", Box::new(|r| r.update)),
    ];
    for (name, get) in &phase_rows {
        let mut row = vec![name.to_string()];
        for r in &rows {
            row.push(format!("{:.2}", get(r)));
            row.push(pct(get(r) / r.total()));
        }
        t.row(row);
    }
    let mut total = vec!["Total (100 iters)".to_string()];
    for r in &rows {
        total.push(format!("{:.2}", r.total()));
        total.push("100%".to_string());
    }
    t.row(total);
    println!("{}", t.render());
    println!("Paper 'Communicate' rows (for comparison):");
    for r in &rows {
        println!(
            "  {:<10} paper {:>7.2}s  simulated {:>7.2}s  ({:+.1}%)",
            r.model,
            r.paper_communicate,
            r.communicate,
            (r.communicate / r.paper_communicate - 1.0) * 100.0
        );
    }
}
