//! Regenerates Table II: time breakdown of 100 training iterations on
//! the 5-node worker-aggregator cluster (communication simulated).
//!
//! `--trace <path>` writes the modeled phase timeline (one iteration per
//! evaluated model, Table II timings as virtual-time spans) as a
//! chrome://tracing JSON.

use inceptionn::cluster::ClusterConfig;
use inceptionn::experiments::breakdown::table2;
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::banner;
use inceptionn_dnn::profile::{ModelId, ModelProfile};

/// Extracts `--trace <path>` from the command line, if present.
fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return Some(args.next().unwrap_or_else(|| {
                eprintln!("--trace requires a path argument");
                std::process::exit(2);
            }));
        }
    }
    None
}

fn main() {
    banner("Table II", "Sec. VIII-A");
    let rows = table2(&ClusterConfig::default());
    let mut t = TextTable::new(vec![
        "Steps",
        "AlexNet",
        "",
        "HDC",
        " ",
        "ResNet-50",
        "  ",
        "VGG-16",
        "   ",
    ]);
    type PhaseGetter = Box<dyn Fn(&inceptionn::experiments::breakdown::Table2Row) -> f64>;
    let phase_rows: Vec<(&str, PhaseGetter)> = vec![
        ("Forward pass", Box::new(|r| r.forward)),
        ("Backward pass", Box::new(|r| r.backward)),
        ("GPU copy", Box::new(|r| r.gpu_copy)),
        ("Gradient sum", Box::new(|r| r.grad_sum)),
        ("Communicate", Box::new(|r| r.communicate)),
        ("Update", Box::new(|r| r.update)),
    ];
    for (name, get) in &phase_rows {
        let mut row = vec![name.to_string()];
        for r in &rows {
            row.push(format!("{:.2}", get(r)));
            row.push(pct(get(r) / r.total()));
        }
        t.row(row);
    }
    let mut total = vec!["Total (100 iters)".to_string()];
    for r in &rows {
        total.push(format!("{:.2}", r.total()));
        total.push("100%".to_string());
    }
    t.row(total);
    println!("{}", t.render());
    println!("Paper 'Communicate' rows (for comparison):");
    for r in &rows {
        println!(
            "  {:<10} paper {:>7.2}s  simulated {:>7.2}s  ({:+.1}%)",
            r.model,
            r.paper_communicate,
            r.communicate,
            (r.communicate / r.paper_communicate - 1.0) * 100.0
        );
    }

    if let Some(path) = trace_path() {
        // One modeled iteration per evaluated model, each on its own
        // track of the virtual-time domain.
        let mut buf = obs::EventBuf::local();
        for (track, id) in ModelId::EVALUATED.into_iter().enumerate() {
            ModelProfile::of(id).record_iteration(&mut buf, track as u32, 0, 0);
        }
        let recording = obs::Recording::from_events(buf.take());
        recording
            .write_chrome_trace(std::path::Path::new(&path))
            .unwrap_or_else(|e| {
                eprintln!("failed to write trace {path}: {e}");
                std::process::exit(2);
            });
        println!(
            "\nwrote {} ({} events) — tracks follow Table I order: {}",
            path,
            recording.len(),
            ModelId::EVALUATED.map(|m| m.name()).join(", ")
        );
    }
}
