//! Regenerates Fig. 14: compression ratio of every lossy scheme and its
//! impact on trained accuracy (same epoch budget for all schemes).

use inceptionn::experiments::ratios::{fig14_accuracy, fig14_ratios, fig14_wire_ratios, Scheme};
use inceptionn::experiments::truncation::ProxyModel;
use inceptionn::report::{pct, TextTable};
use inceptionn_bench::{banner, fidelity_from_env};

fn main() {
    banner("Fig. 14", "Sec. VIII-C");
    let fidelity = fidelity_from_env();

    println!("(a) average compression ratio\n");
    let rows = fig14_ratios(fidelity, 5);
    let mut t = TextTable::new(vec!["scheme", "AlexNet", "HDC", "ResNet-50", "VGG-16"]);
    for scheme in Scheme::ALL {
        let mut row = vec![scheme.label()];
        for model in ["AlexNet", "HDC", "ResNet-50", "VGG-16"] {
            let r = rows
                .iter()
                .find(|r| r.model == model && r.scheme == scheme)
                .map(|r| r.ratio)
                .unwrap_or(f64::NAN);
            row.push(format!("{r:.1}x"));
        }
        t.row(row);
    }
    println!("{}", t.render());

    println!("(a') INC ratios measured on the wire (NicFabric, per-MTU-packet)\n");
    let wire = fig14_wire_ratios(fidelity, 5);
    let mut t = TextTable::new(vec!["scheme", "AlexNet", "HDC", "ResNet-50", "VGG-16"]);
    for e in [10u8, 8, 6] {
        let scheme = Scheme::Inceptionn(e);
        let mut row = vec![scheme.label()];
        for model in ["AlexNet", "HDC", "ResNet-50", "VGG-16"] {
            let r = wire
                .iter()
                .find(|r| r.model == model && r.scheme == scheme)
                .map(|r| r.ratio)
                .unwrap_or(f64::NAN);
            row.push(format!("{r:.1}x"));
        }
        t.row(row);
    }
    println!("{}", t.render());

    println!("(b) accuracy per scheme, trained proxies (same epochs, no extra)\n");
    for model in [ProxyModel::Hdc, ProxyModel::MiniCnn] {
        let rows = fig14_accuracy(model, fidelity, 6);
        let mut t = TextTable::new(vec!["scheme", "accuracy", "relative to Base"]);
        for r in &rows {
            t.row(vec![
                r.scheme.label(),
                pct(r.accuracy as f64),
                format!("{:.3}", r.relative),
            ]);
        }
        println!("{}:\n{}", rows[0].model, t.render());
    }
    println!("Paper shape: truncation caps at 4x ratio and collapses accuracy at");
    println!("22-24 bits; INCEPTIONN reaches ~15x at 2^-6 with <2% accuracy loss.");
}
