//! Exporters: chrome://tracing trace-event JSON and the per-run
//! summary table.
//!
//! The JSON writer emits the standard `{"traceEvents":[...]}` object
//! format. Each clock [`Domain`] becomes a chrome *process* (with a
//! `process_name` metadata record) so wall time, virtual network time,
//! and engine cycles get separate, honestly labeled timelines instead
//! of being forced onto one axis. Timestamps are microseconds per the
//! trace-event spec; nanosecond domains are written as `ns/1000` with
//! three decimals (exact), tick domains (cycles, sequence numbers) are
//! written raw.
//!
//! Every event also carries its raw fields in `args`, so
//! [`events_from_json`] reconstructs the recording losslessly — the
//! `trace-report` binary and `tests/obs_stack.rs` both rely on totals
//! surviving the roundtrip bit-exactly.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{self, Value};
use crate::{labels, Domain, Event, Ph};

/// Escapes a string for inclusion in a JSON document.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a domain timestamp as trace-event microseconds: exact
/// `ns/1000` with three decimals for nanosecond domains, raw ticks
/// otherwise.
fn format_ts(domain: Domain, ts: u64) -> String {
    if domain.is_nanoseconds() {
        format!("{}.{:03}", ts / 1000, ts % 1000)
    } else {
        ts.to_string()
    }
}

/// Inverse of [`format_ts`]: microseconds (as parsed `f64`) back to
/// domain units.
fn parse_ts(domain: Domain, us: f64) -> u64 {
    if domain.is_nanoseconds() {
        (us * 1000.0).round() as u64
    } else {
        us.round() as u64
    }
}

/// Renders events as a chrome://tracing trace-event JSON document.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |line: String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&line);
        *first = false;
        // Reborrow dance: closure owns `out` mutably via capture.
    };
    // `process_name` metadata for every domain that appears, so the
    // viewer labels each timeline with its clock.
    let mut seen = [false; 4];
    for ev in events {
        seen[ev.domain.index()] = true;
    }
    for domain in Domain::ALL {
        if seen[domain.index()] {
            push(
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                     \"args\":{{\"name\":\"{}\"}}}}",
                    domain.index() + 1,
                    escape(domain.name())
                ),
                &mut first,
            );
        }
    }
    for ev in events {
        let pid = ev.domain.index() + 1;
        let ts = format_ts(ev.domain, ev.ts);
        let line = match ev.ph {
            Ph::Complete => format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{ts},\
                 \"dur\":{},\"args\":{{\"key\":\"{}\"}}}}",
                escape(ev.label),
                ev.track,
                format_ts(ev.domain, ev.value),
                ev.key
            ),
            Ph::Begin | Ph::End => format!(
                "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":{pid},\"tid\":{},\"ts\":{ts},\
                 \"args\":{{\"key\":\"{}\"}}}}",
                escape(ev.label),
                if ev.ph == Ph::Begin { 'B' } else { 'E' },
                ev.track,
                ev.key
            ),
            Ph::Counter => format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{},\"ts\":{ts},\
                 \"args\":{{\"value\":{},\"key\":\"{}\"}}}}",
                escape(ev.label),
                ev.track,
                ev.value,
                ev.key
            ),
            Ph::Metric => format!(
                // `bits` (a string arg, so chrome does not plot it)
                // carries the exact f64 for lossless re-import.
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{pid},\"tid\":{},\"ts\":{ts},\
                 \"args\":{{\"value\":{},\"key\":\"{}\",\"bits\":\"{}\"}}}}",
                escape(ev.label),
                ev.track,
                format_f64(ev.metric_value()),
                ev.key,
                ev.value
            ),
        };
        push(line, &mut first);
    }
    out.push_str("\n]}\n");
    out
}

/// Formats an `f64` so it parses back to a finite JSON number.
fn format_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` on f64 is shortest-roundtrip and always includes a
        // `.0` or exponent for integral values, which is valid JSON.
        format!("{v:?}")
    } else {
        // JSON has no NaN/inf; the exact value still rides in `bits`.
        "0.0".to_string()
    }
}

/// An event re-read from an exported trace: identical to [`Event`] but
/// with an owned label.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// The label string.
    pub label: String,
    /// Phase.
    pub ph: Ph,
    /// Clock domain.
    pub domain: Domain,
    /// Track within the domain.
    pub track: u32,
    /// Secondary dimension.
    pub key: u32,
    /// Timestamp in domain units.
    pub ts: u64,
    /// Payload (duration / delta / f64 bits).
    pub value: u64,
}

/// Parses an exported chrome trace back into events, losslessly.
///
/// Metadata records are skipped; everything else must carry the fields
/// the exporter wrote or the whole parse fails — a trace that cannot be
/// re-read exactly is a bug, not something to paper over.
pub fn events_from_json(src: &str) -> Result<Vec<OwnedEvent>, String> {
    let doc = json::parse(src).map_err(|e| e.to_string())?;
    let trace = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| "missing `traceEvents` array".to_string())?;
    let mut out = Vec::with_capacity(trace.len());
    for (i, item) in trace.iter().enumerate() {
        let field = |name: &str| {
            item.get(name)
                .ok_or_else(|| format!("event {i}: missing `{name}`"))
        };
        let num = |name: &str| {
            field(name)?
                .as_f64()
                .ok_or_else(|| format!("event {i}: `{name}` not a number"))
        };
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: `ph` not a string"))?;
        if ph == "M" {
            continue;
        }
        let args = field("args")?;
        let label = field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: `name` not a string"))?
            .to_string();
        let pid = num("pid")? as usize;
        let domain = Domain::from_index(pid.wrapping_sub(1))
            .ok_or_else(|| format!("event {i}: pid {pid} maps to no clock domain"))?;
        let track = num("tid")? as u32;
        let ts = parse_ts(domain, num("ts")?);
        let key = args
            .get("key")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing `args.key`"))?
            .parse::<u32>()
            .map_err(|_| format!("event {i}: `args.key` not a u32"))?;
        let (ph, value) = match ph {
            "X" => (Ph::Complete, parse_ts(domain, num("dur")?)),
            "B" => (Ph::Begin, 0),
            "E" => (Ph::End, 0),
            "C" => match args.get("bits").and_then(Value::as_str) {
                Some(bits) => (
                    Ph::Metric,
                    bits.parse::<u64>()
                        .map_err(|_| format!("event {i}: `args.bits` not a u64"))?,
                ),
                None => (
                    Ph::Counter,
                    args.get("value")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("event {i}: missing `args.value`"))?
                        as u64,
                ),
            },
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        };
        out.push(OwnedEvent {
            label,
            ph,
            domain,
            track,
            key,
            ts,
            value,
        });
    }
    Ok(out)
}

/// Wire volume attributed to one (source endpoint, payload kind) leg.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LegStats {
    /// Transfers recorded on this leg.
    pub transfers: u64,
    /// Uncompressed payload bytes entering the fabric.
    pub payload_bytes: u64,
    /// Bytes put on the wire after (optional) compression.
    pub wire_bytes: u64,
    /// Packets emitted.
    pub packets: u64,
}

impl LegStats {
    /// payload / wire: > 1 means compression saved wire bytes.
    pub fn wire_ratio(&self) -> f64 {
        if self.wire_bytes == 0 {
            1.0
        } else {
            self.payload_bytes as f64 / self.wire_bytes as f64
        }
    }
}

/// Busy accounting for one NIC endpoint's engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Cycles the compression engine was busy.
    pub compress_cycles: u64,
    /// Cycles the decompression engine was busy.
    pub decompress_cycles: u64,
    /// 256-bit bursts consumed on TX.
    pub tx_bursts: u64,
    /// 256-bit bursts produced on RX.
    pub rx_bursts: u64,
}

/// Virtual link occupancy between one ordered endpoint pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Legs charged to this link.
    pub transfers: u64,
    /// Virtual nanoseconds the link was occupied.
    pub busy_ns: u64,
    /// Wire bytes carried.
    pub wire_bytes: u64,
}

/// Wall-time split for one training iteration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterStats {
    /// Forward+backward compute nanoseconds.
    pub compute_ns: u64,
    /// Gradient-exchange nanoseconds.
    pub exchange_ns: u64,
    /// Optimizer-update nanoseconds.
    pub update_ns: u64,
}

impl IterStats {
    /// Fraction of the iteration spent exchanging gradients.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.compute_ns + self.exchange_ns + self.update_ns;
        if total == 0 {
            0.0
        } else {
            self.exchange_ns as f64 / total as f64
        }
    }
}

/// The per-run summary table: every aggregate the paper's figures are
/// built from, computed from the recorded events alone so it can be
/// cross-checked against component-private tallies.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Wire volume per (source endpoint, payload kind) leg.
    pub legs: BTreeMap<(u32, u32), LegStats>,
    /// Link occupancy per (src, dst) endpoint pair.
    pub links: BTreeMap<(u32, u32), LinkStats>,
    /// Engine busy cycles per NIC endpoint.
    pub engines: BTreeMap<u32, EngineStats>,
    /// Wall-time split per iteration index.
    pub iters: BTreeMap<u32, IterStats>,
    /// Exchange wall time per strategy label.
    pub exchange_ns_by_label: BTreeMap<String, u64>,
    /// Values pushed through codec shards (all directions).
    pub codec_shard_values: u64,
    /// Compressed bytes produced by codec shards.
    pub codec_shard_bytes: u64,
    /// Distinct codec shard tracks seen.
    pub codec_shards: u64,
    /// Packets recorded through the TX datapath.
    pub dp_packets: u64,
    /// Total engine→MAC FIFO residency nanoseconds.
    pub dp_stall_ns: u64,
    /// Peak FIFO occupancy.
    pub dp_fifo_peak: u64,
    /// Netsim flows completed.
    pub net_transfers: u64,
    /// Total netsim flow duration (virtual ns).
    pub net_transfer_ns: u64,
    /// Total netsim flow wire bytes.
    pub net_transfer_bytes: u64,
    /// Wire bytes attributed to each topology tier (0 = core), from
    /// `fabric/tier_bytes` events of a topology-aware timed fabric.
    pub wire_bytes_by_tier: BTreeMap<u32, u64>,
    /// Cycles switch reduce units spent folding contributions in-network.
    pub switch_reduce_cycles: u64,
    /// Contributions folded at switch reduce units.
    pub switch_reduce_folds: u64,
    /// Gradient wire bytes folded in-network (never descended to a host).
    pub switch_reduce_bytes: u64,
    /// Last value and sample count per metric label.
    pub metrics: BTreeMap<String, (f64, u64)>,
    /// Fault-injection and recovery counters (`fault/*` labels plus the
    /// trainer's ring re-stitch events), summed per label.
    pub faults: BTreeMap<String, u64>,
}

impl Summary {
    /// Builds the summary from in-memory events.
    pub fn of(events: &[Event]) -> Summary {
        let mut s = Summary::default();
        for ev in events {
            s.add(ev.label, ev.ph, ev.track, ev.key, ev.value);
        }
        s
    }

    /// Builds the summary from re-imported events; same aggregation.
    pub fn of_owned(events: &[OwnedEvent]) -> Summary {
        let mut s = Summary::default();
        for ev in events {
            s.add(&ev.label, ev.ph, ev.track, ev.key, ev.value);
        }
        s
    }

    fn add(&mut self, label: &str, ph: Ph, track: u32, key: u32, value: u64) {
        if ph == Ph::Metric {
            let entry = self.metrics.entry(label.to_string()).or_insert((0.0, 0));
            entry.0 = f64::from_bits(value);
            entry.1 += 1;
            return;
        }
        match label {
            labels::FABRIC_PAYLOAD_BYTES => {
                let leg = self.legs.entry((track, key)).or_default();
                leg.transfers += 1;
                leg.payload_bytes += value;
            }
            labels::FABRIC_WIRE_BYTES => {
                self.legs.entry((track, key)).or_default().wire_bytes += value;
            }
            labels::FABRIC_PACKETS => {
                self.legs.entry((track, key)).or_default().packets += value;
            }
            labels::FABRIC_TIER_BYTES => {
                *self.wire_bytes_by_tier.entry(track).or_insert(0) += value;
            }
            labels::SWITCH_REDUCE => {
                self.switch_reduce_cycles += value;
                self.switch_reduce_folds += 1;
            }
            labels::SWITCH_REDUCE_BYTES => {
                self.switch_reduce_bytes += value;
            }
            labels::NIC_COMPRESS => {
                self.engines.entry(track).or_default().compress_cycles += value;
            }
            labels::NIC_DECOMPRESS => {
                self.engines.entry(track).or_default().decompress_cycles += value;
            }
            labels::NIC_TX_BURSTS => {
                self.engines.entry(track).or_default().tx_bursts += value;
            }
            labels::NIC_RX_BURSTS => {
                self.engines.entry(track).or_default().rx_bursts += value;
            }
            labels::NET_LINK => {
                let link = self.links.entry((track, key)).or_default();
                link.transfers += 1;
                link.busy_ns += value;
            }
            labels::NET_LEG_BYTES => {
                self.links.entry((track, key)).or_default().wire_bytes += value;
            }
            labels::NET_TRANSFER => {
                self.net_transfers += 1;
                self.net_transfer_ns += value;
            }
            labels::NET_TRANSFER_BYTES => {
                self.net_transfer_bytes += value;
            }
            labels::ITER_COMPUTE => {
                self.iters.entry(key).or_default().compute_ns += value;
            }
            labels::ITER_UPDATE => {
                self.iters.entry(key).or_default().update_ns += value;
            }
            labels::CODEC_SHARD_VALUES => {
                self.codec_shard_values += value;
                self.codec_shards = self.codec_shards.max(u64::from(track) + 1);
            }
            labels::CODEC_SHARD_BYTES => {
                self.codec_shard_bytes += value;
            }
            labels::DP_PACKET => {
                self.dp_packets += 1;
            }
            labels::DP_STALL_NS => {
                self.dp_stall_ns += value;
            }
            labels::DP_FIFO_PEAK => {
                self.dp_fifo_peak = self.dp_fifo_peak.max(value);
            }
            other => {
                if other.starts_with("exchange/") {
                    self.iters.entry(key).or_default().exchange_ns += value;
                    *self
                        .exchange_ns_by_label
                        .entry(other.to_string())
                        .or_insert(0) += value;
                } else if other.starts_with("fault/") || other == labels::RING_RESTITCH {
                    *self.faults.entry(other.to_string()).or_insert(0) += value;
                }
            }
        }
    }

    /// Total transfers across all legs.
    pub fn total_transfers(&self) -> u64 {
        self.legs.values().map(|l| l.transfers).sum()
    }

    /// Total payload bytes across all legs.
    pub fn total_payload_bytes(&self) -> u64 {
        self.legs.values().map(|l| l.payload_bytes).sum()
    }

    /// Total wire bytes across all legs.
    pub fn total_wire_bytes(&self) -> u64 {
        self.legs.values().map(|l| l.wire_bytes).sum()
    }

    /// Total packets across all legs.
    pub fn total_packets(&self) -> u64 {
        self.legs.values().map(|l| l.packets).sum()
    }

    /// Total engine cycles (compress + decompress, all endpoints).
    pub fn total_engine_cycles(&self) -> u64 {
        self.engines
            .values()
            .map(|e| e.compress_cycles + e.decompress_cycles)
            .sum()
    }

    /// Total virtual link occupancy.
    pub fn total_link_ns(&self) -> u64 {
        self.links.values().map(|l| l.busy_ns).sum()
    }

    /// Wire bytes summed across topology tiers. When a topology-aware
    /// timed fabric recorded the run, this equals
    /// [`total_wire_bytes`](Self::total_wire_bytes) to the byte — every
    /// encoded frame is attributed to exactly one tier.
    pub fn total_tier_bytes(&self) -> u64 {
        self.wire_bytes_by_tier.values().sum()
    }

    /// payload / wire over all legs.
    pub fn wire_ratio(&self) -> f64 {
        let wire = self.total_wire_bytes();
        if wire == 0 {
            1.0
        } else {
            self.total_payload_bytes() as f64 / wire as f64
        }
    }

    /// Fraction of total iteration wall time spent in gradient
    /// exchange.
    pub fn comm_fraction(&self) -> f64 {
        let (mut comm, mut total) = (0u64, 0u64);
        for it in self.iters.values() {
            comm += it.exchange_ns;
            total += it.compute_ns + it.exchange_ns + it.update_ns;
        }
        if total == 0 {
            0.0
        } else {
            comm as f64 / total as f64
        }
    }
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.legs.is_empty() {
            writeln!(f, "== wire volume per leg (by source endpoint) ==")?;
            writeln!(
                f,
                "{:>4} {:>9} {:>10} {:>14} {:>14} {:>9} {:>7}",
                "src", "kind", "transfers", "payload B", "wire B", "packets", "ratio"
            )?;
            for ((src, kind), leg) in &self.legs {
                writeln!(
                    f,
                    "{src:>4} {:>9} {:>10} {:>14} {:>14} {:>9} {:>7.3}",
                    if *kind == 0 { "gradient" } else { "plain" },
                    leg.transfers,
                    leg.payload_bytes,
                    leg.wire_bytes,
                    leg.packets,
                    leg.wire_ratio()
                )?;
            }
            writeln!(
                f,
                "{:>4} {:>9} {:>10} {:>14} {:>14} {:>9} {:>7.3}",
                "all",
                "",
                self.total_transfers(),
                self.total_payload_bytes(),
                self.total_wire_bytes(),
                self.total_packets(),
                self.wire_ratio()
            )?;
        }
        if !self.engines.is_empty() {
            writeln!(f, "== nic engine busy cycles ==")?;
            writeln!(
                f,
                "{:>8} {:>14} {:>16} {:>11} {:>11}",
                "endpoint", "compress cyc", "decompress cyc", "tx bursts", "rx bursts"
            )?;
            for (ep, e) in &self.engines {
                writeln!(
                    f,
                    "{ep:>8} {:>14} {:>16} {:>11} {:>11}",
                    e.compress_cycles, e.decompress_cycles, e.tx_bursts, e.rx_bursts
                )?;
            }
            writeln!(f, "   total engine cycles: {}", self.total_engine_cycles())?;
        }
        if !self.links.is_empty() {
            writeln!(f, "== virtual link occupancy ==")?;
            writeln!(
                f,
                "{:>9} {:>10} {:>12} {:>14}",
                "src->dst", "transfers", "busy ms", "wire B"
            )?;
            for ((src, dst), link) in &self.links {
                writeln!(
                    f,
                    "{:>9} {:>10} {:>12.4} {:>14}",
                    format!("{src}->{dst}"),
                    link.transfers,
                    ms(link.busy_ns),
                    link.wire_bytes
                )?;
            }
            writeln!(f, "   total link time: {:.4} ms", ms(self.total_link_ns()))?;
        }
        if !self.iters.is_empty() {
            writeln!(f, "== comm vs compute per iteration (wall time) ==")?;
            writeln!(
                f,
                "{:>5} {:>12} {:>12} {:>12} {:>7}",
                "iter", "compute ms", "exchange ms", "update ms", "comm%"
            )?;
            for (iter, it) in &self.iters {
                writeln!(
                    f,
                    "{iter:>5} {:>12.4} {:>12.4} {:>12.4} {:>6.1}%",
                    ms(it.compute_ns),
                    ms(it.exchange_ns),
                    ms(it.update_ns),
                    it.comm_fraction() * 100.0
                )?;
            }
            writeln!(
                f,
                "   overall comm fraction: {:.1}%",
                self.comm_fraction() * 100.0
            )?;
            for (label, ns) in &self.exchange_ns_by_label {
                writeln!(f, "   {label}: {:.4} ms", ms(*ns))?;
            }
        }
        if !self.wire_bytes_by_tier.is_empty() {
            writeln!(f, "== wire volume per topology tier ==")?;
            for (tier, bytes) in &self.wire_bytes_by_tier {
                writeln!(
                    f,
                    "   tier {tier}{}: {bytes} B",
                    if *tier == 0 { " (core)" } else { "" }
                )?;
            }
            writeln!(f, "   all tiers: {} B", self.total_tier_bytes())?;
        }
        if self.switch_reduce_folds > 0 {
            writeln!(f, "== switch-resident reduction ==")?;
            writeln!(
                f,
                "   contributions folded: {}  reduce cycles: {}  bytes folded in-network: {}",
                self.switch_reduce_folds, self.switch_reduce_cycles, self.switch_reduce_bytes
            )?;
        }
        if self.codec_shard_values > 0 {
            writeln!(f, "== codec shards ==")?;
            writeln!(
                f,
                "   shards: {}  values: {}  compressed bytes: {}",
                self.codec_shards, self.codec_shard_values, self.codec_shard_bytes
            )?;
        }
        if self.dp_packets > 0 {
            writeln!(f, "== tx datapath ==")?;
            writeln!(
                f,
                "   packets: {}  fifo stall: {:.4} ms  peak fifo: {}",
                self.dp_packets,
                ms(self.dp_stall_ns),
                self.dp_fifo_peak
            )?;
        }
        if self.net_transfers > 0 {
            writeln!(f, "== netsim flows ==")?;
            writeln!(
                f,
                "   flows: {}  total flow time: {:.4} ms  wire B: {}",
                self.net_transfers,
                ms(self.net_transfer_ns),
                self.net_transfer_bytes
            )?;
        }
        if !self.metrics.is_empty() {
            writeln!(f, "== metrics (last sample) ==")?;
            for (label, (value, count)) in &self.metrics {
                writeln!(f, "   {label}: {value:.6} ({count} samples)")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recording;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::complete(labels::ITER_COMPUTE, Domain::Wall, 0, 0, 1_234_567, 890_123),
            Event::complete(
                labels::EXCHANGE_RING,
                Domain::Wall,
                0,
                0,
                2_124_690,
                500_001,
            ),
            Event::complete(labels::ITER_UPDATE, Domain::Wall, 0, 0, 2_624_691, 99_999),
            Event::count(labels::FABRIC_PAYLOAD_BYTES, Domain::Seq, 2, 0, 1, 4096),
            Event::count(labels::FABRIC_WIRE_BYTES, Domain::Seq, 2, 0, 1, 1100),
            Event::count(labels::FABRIC_PACKETS, Domain::Seq, 2, 0, 1, 3),
            Event::complete(labels::NIC_COMPRESS, Domain::Cycles, 2, 3, 40, 132),
            Event::complete(labels::NET_LINK, Domain::Net, 2, 3, 1000, 3296),
            Event::count(labels::NET_LEG_BYTES, Domain::Net, 2, 3, 1000, 1100),
            Event::metric(labels::ITER_LOSS, Domain::Wall, 0, 0, 2_724_690, 0.37512),
            Event::begin("span/open", Domain::Wall, 1, 9, 10_500),
            Event::end("span/open", Domain::Wall, 1, 9, 11_750),
        ]
    }

    #[test]
    fn export_then_import_is_lossless() {
        let recording = Recording::from_events(sample_events());
        let json = recording.to_chrome_json();
        let imported = events_from_json(&json).expect("trace parses");
        assert_eq!(imported.len(), recording.len());
        for (orig, owned) in recording.events().iter().zip(&imported) {
            assert_eq!(owned.label, orig.label);
            assert_eq!(owned.ph, orig.ph);
            assert_eq!(owned.domain, orig.domain);
            assert_eq!(owned.track, orig.track);
            assert_eq!(owned.key, orig.key);
            assert_eq!(owned.ts, orig.ts, "ts drifted for {}", orig.label);
            assert_eq!(owned.value, orig.value, "value drifted for {}", orig.label);
        }
    }

    #[test]
    fn trace_is_valid_json_with_metadata() {
        let json_text = chrome_trace(&sample_events());
        let doc = json::parse(&json_text).expect("valid json");
        let events = doc
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("array");
        let names: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert!(names.contains(&Domain::Wall.name()));
        assert!(names.contains(&Domain::Cycles.name()));
        for ev in events {
            assert!(ev.get("name").is_some() && ev.get("ph").is_some());
            assert!(ev.get("pid").is_some() && ev.get("tid").is_some());
        }
    }

    #[test]
    fn summary_aggregates_the_sample() {
        let s = Summary::of(&sample_events());
        assert_eq!(s.total_transfers(), 1);
        assert_eq!(s.total_payload_bytes(), 4096);
        assert_eq!(s.total_wire_bytes(), 1100);
        assert_eq!(s.total_packets(), 3);
        assert_eq!(s.total_engine_cycles(), 132);
        assert_eq!(s.total_link_ns(), 3296);
        assert_eq!(s.links[&(2, 3)].wire_bytes, 1100);
        let it = s.iters[&0];
        assert_eq!(it.compute_ns, 890_123);
        assert_eq!(it.exchange_ns, 500_001);
        assert_eq!(it.update_ns, 99_999);
        assert!((s.comm_fraction() - 500_001.0 / 1_490_123.0).abs() < 1e-12);
        assert_eq!(s.metrics[labels::ITER_LOSS], (0.37512, 1));
        // Summary from the re-imported trace matches bit-for-bit.
        let json = Recording::from_events(sample_events()).to_chrome_json();
        let owned = events_from_json(&json).unwrap();
        let s2 = Summary::of_owned(&owned);
        assert_eq!(s2.total_wire_bytes(), s.total_wire_bytes());
        assert_eq!(s2.total_engine_cycles(), s.total_engine_cycles());
        assert_eq!(s2.metrics[labels::ITER_LOSS], s.metrics[labels::ITER_LOSS]);
        let rendered = format!("{s}");
        assert!(rendered.contains("wire volume per leg"));
        assert!(rendered.contains("comm vs compute"));
    }
}
