//! Cycle-accurate observability for the INCEPTIONN reproduction.
//!
//! The paper's headline claims are *accounting* claims — comm-vs-compute
//! splits per iteration, bytes on the wire per leg, NIC engine cycles per
//! burst — so measurement is a subsystem, not a sprinkle of printlns.
//! This crate provides:
//!
//! * an [`Event`] model: static label id + `u64` payload + timestamp.
//!   No strings are formatted and no allocations beyond a `Vec` push
//!   happen while recording; rendering is deferred to export time.
//! * per-thread append-only [`EventBuf`]s. The hot path never takes a
//!   lock: each instrumented component owns a buffer and pushes into it;
//!   buffers drain into the shared sink only at `flush` (or drop).
//! * dual clock [`Domain`]s. Simulated components stamp events in
//!   *virtual* time (netsim nanoseconds, nicsim engine cycles) injected
//!   by the caller — wire/sim code never reads `Instant::now()`,
//!   consistent with the analyzer's no-clock rule. Host-side stages use
//!   wall time read once per span edge via [`Recorder::wall_ns`].
//! * a [`Recorder`] handle threaded through configuration. The default
//!   recorder is off: every buffer it hands out is permanently disabled
//!   and `push` compiles to a branch on a bool.
//!
//! Exporters live in [`export`]: a chrome://tracing trace-event JSON
//! writer and a per-run [`export::Summary`] table. The `trace-report`
//! binary re-reads an exported trace and prints the summary.

pub mod export;
pub mod json;

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Canonical label ids used across the instrumented crates.
///
/// Labels are `&'static str` so recording an event stores a pointer, not
/// a formatted string. The `component/detail` shape groups related
/// tracks in the chrome trace viewer.
pub mod labels {
    /// Wall-time span: forward+backward compute for one iteration.
    pub const ITER_COMPUTE: &str = "iter/compute";
    /// Wall-time span: optimizer update for one iteration.
    pub const ITER_UPDATE: &str = "iter/update";
    /// Wall-time span: ring-allreduce gradient exchange.
    pub const EXCHANGE_RING: &str = "exchange/ring";
    /// Wall-time span: hierarchical ring gradient exchange.
    pub const EXCHANGE_HIERARCHICAL: &str = "exchange/hierarchical";
    /// Wall-time span: worker/aggregator gradient exchange.
    pub const EXCHANGE_WORKER_AGGREGATOR: &str = "exchange/worker-aggregator";
    /// Wall-time span: threaded ring gradient exchange.
    pub const EXCHANGE_THREADED_RING: &str = "exchange/threaded-ring";
    /// Wall-time span: topology-tree gradient exchange (rings per tier).
    pub const EXCHANGE_TREE: &str = "exchange/tree";
    /// Wall-time span: switch-resident in-network reduction exchange.
    pub const EXCHANGE_SWITCH_REDUCE: &str = "exchange/switch-reduce";
    /// Metric: mean training loss for one iteration.
    pub const ITER_LOSS: &str = "iter/loss";
    /// Metric: mean training accuracy for one iteration.
    pub const ITER_ACCURACY: &str = "iter/accuracy";
    /// Counter: uncompressed payload bytes entering the fabric
    /// (track = source endpoint, key = payload kind).
    pub const FABRIC_PAYLOAD_BYTES: &str = "fabric/payload_bytes";
    /// Counter: bytes actually put on the wire
    /// (track = source endpoint, key = payload kind).
    pub const FABRIC_WIRE_BYTES: &str = "fabric/wire_bytes";
    /// Counter: packets emitted (track = source endpoint).
    pub const FABRIC_PACKETS: &str = "fabric/packets";
    /// Counter: wire bytes attributed to one topology tier
    /// (track = tier, 0 = core; emitted by timed fabrics built with a
    /// topology). Per-tier sums equal `fabric/wire_bytes` to the byte.
    pub const FABRIC_TIER_BYTES: &str = "fabric/tier_bytes";
    /// Cycle-domain span: a switch reduce unit folding one contribution
    /// (track = worker whose contribution was folded).
    pub const SWITCH_REDUCE: &str = "switch/reduce";
    /// Counter: gradient wire bytes folded in-network at a switch reduce
    /// unit instead of descending to an aggregation host.
    pub const SWITCH_REDUCE_BYTES: &str = "switch/reduce_bytes";
    /// Cycle-domain span: NIC compression engine busy on one payload.
    pub const NIC_COMPRESS: &str = "nic/compress";
    /// Cycle-domain span: NIC decompression engine busy on one payload.
    pub const NIC_DECOMPRESS: &str = "nic/decompress";
    /// Counter: 256-bit bursts consumed by a NIC TX engine.
    pub const NIC_TX_BURSTS: &str = "nic/tx_bursts";
    /// Counter: 256-bit bursts produced by a NIC RX engine.
    pub const NIC_RX_BURSTS: &str = "nic/rx_bursts";
    /// Virtual-time span: one fabric leg occupying a network link
    /// (track = source endpoint, key = destination endpoint).
    pub const NET_LINK: &str = "net/link";
    /// Counter: wire bytes charged to a link leg (track = src, key = dst).
    pub const NET_LEG_BYTES: &str = "net/leg_bytes";
    /// Virtual-time span: one netsim flow from start to finish.
    pub const NET_TRANSFER: &str = "net/transfer";
    /// Counter: wire bytes (payload + headers) of one netsim flow.
    pub const NET_TRANSFER_BYTES: &str = "net/transfer_bytes";
    /// Counter: values handled by one codec shard (track = shard index,
    /// key = 0 encode / 1 decode / 2 quantize).
    pub const CODEC_SHARD_VALUES: &str = "codec/shard_values";
    /// Counter: compressed bytes produced by one codec shard.
    pub const CODEC_SHARD_BYTES: &str = "codec/shard_bytes";
    /// Virtual-time span: one packet traversing the TX datapath.
    pub const DP_PACKET: &str = "dp/packet";
    /// Counter: nanoseconds a packet sat in the engine→MAC FIFO.
    pub const DP_STALL_NS: &str = "dp/stall_ns";
    /// Counter: peak engine→MAC FIFO occupancy over a trace.
    pub const DP_FIFO_PEAK: &str = "dp/fifo_peak";
    /// Virtual-time span: modeled forward pass (dnn::profile adapter).
    pub const PHASE_FORWARD: &str = "phase/forward";
    /// Virtual-time span: modeled backward pass.
    pub const PHASE_BACKWARD: &str = "phase/backward";
    /// Virtual-time span: modeled GPU→host gradient copy.
    pub const PHASE_GPU_COPY: &str = "phase/gpu_copy";
    /// Virtual-time span: modeled local gradient summation.
    pub const PHASE_GRAD_SUM: &str = "phase/grad_sum";
    /// Virtual-time span: modeled weight update.
    pub const PHASE_UPDATE: &str = "phase/update";
    /// Virtual-time span: paper-reported communication time.
    pub const PHASE_COMMUNICATE: &str = "phase/communicate";
    /// Metric: classification accuracy (dnn::metrics adapter).
    pub const METRIC_ACCURACY: &str = "metrics/accuracy";
    /// Counter: one confusion-matrix cell (track = truth, key = predicted).
    pub const METRIC_CONFUSION: &str = "metrics/confusion";
    /// Counter: a transmission dropped by fault injection (track = src,
    /// key = dst).
    pub const FAULT_DROP: &str = "fault/drop";
    /// Counter: a frame corrupted in flight and caught by its CRC tag.
    pub const FAULT_CORRUPT: &str = "fault/corrupt";
    /// Counter: packets reordered inside a frame (caught by the CRC tag).
    pub const FAULT_REORDER: &str = "fault/reorder";
    /// Counter: an undetected (post-tag) corruption that reached the
    /// decoder and surfaced as a decode error.
    pub const FAULT_POISON: &str = "fault/poison";
    /// Counter: one bounded-retransmit attempt on a link.
    pub const FAULT_RETRANSMIT: &str = "fault/retransmit";
    /// Counter: retransmit backoff charged, nanoseconds.
    pub const FAULT_BACKOFF_NS: &str = "fault/backoff_ns";
    /// Counter: a leg renegotiated down to the uncompressed encoding
    /// after repeated decode failures.
    pub const FAULT_DEGRADED: &str = "fault/degraded";
    /// Counter: a delivery refused because an endpoint has crashed.
    pub const FAULT_CRASH: &str = "fault/crash";
    /// Counter: the trainer excised a crashed endpoint and re-stitched
    /// the ring over the survivors (key = excised endpoint).
    pub const RING_RESTITCH: &str = "ring/restitch";
    /// Counter: a worker joined (or rejoined) the collective
    /// (key = joining worker).
    pub const MEMBER_JOIN: &str = "member/join";
    /// Counter: a worker left the collective gracefully
    /// (key = departing worker).
    pub const MEMBER_LEAVE: &str = "member/leave";
    /// Counter: snapshot catch-up bytes shipped to a joining worker
    /// (track = leader, key = joiner).
    pub const MEMBER_SNAPSHOT_BYTES: &str = "member/snapshot_bytes";
}

/// The clock an event's `ts` (and a span's duration) is expressed in.
///
/// Simulated components never read a host clock: they stamp events with
/// the virtual time they already maintain. Only `Wall` events come from
/// [`Recorder::wall_ns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Domain {
    /// Host wall-clock nanoseconds since the recorder was created.
    Wall,
    /// Virtual network nanoseconds (netsim / TimedFabric link time).
    Net,
    /// NIC engine cycles (100 MHz burst pipeline).
    Cycles,
    /// Logical sequence numbers for untimed components.
    Seq,
}

impl Domain {
    /// All domains, in export (pid) order.
    pub const ALL: [Domain; 4] = [Domain::Wall, Domain::Net, Domain::Cycles, Domain::Seq];

    /// Stable index used as the chrome-trace process id (plus one).
    pub fn index(self) -> usize {
        match self {
            Domain::Wall => 0,
            Domain::Net => 1,
            Domain::Cycles => 2,
            Domain::Seq => 3,
        }
    }

    /// Inverse of [`Domain::index`].
    pub fn from_index(index: usize) -> Option<Domain> {
        Domain::ALL.get(index).copied()
    }

    /// Human-readable name shown as the chrome-trace process name.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Wall => "wall clock (ns)",
            Domain::Net => "network (virtual ns)",
            Domain::Cycles => "nic engines (cycles)",
            Domain::Seq => "sequence (logical)",
        }
    }

    /// Whether `ts`/duration are nanoseconds (true) or raw ticks.
    pub fn is_nanoseconds(self) -> bool {
        matches!(self, Domain::Wall | Domain::Net)
    }
}

/// Event phase, mirroring the chrome trace-event `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ph {
    /// Span start (`B`). Prefer [`Ph::Complete`] where the duration is
    /// known when the event is recorded.
    Begin,
    /// Span end (`E`).
    End,
    /// Complete span (`X`): `ts` = start, `value` = duration.
    Complete,
    /// Counter delta (`C`): `value` is added to the running series.
    Counter,
    /// Floating-point sample: `value` holds `f64::to_bits`.
    Metric,
}

/// One recorded event: static label + integers. 32 bytes of payload,
/// nothing formatted, nothing allocated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Static label id (see [`labels`]).
    pub label: &'static str,
    /// Phase: span edge, complete span, counter, or metric sample.
    pub ph: Ph,
    /// Clock domain `ts` is expressed in.
    pub domain: Domain,
    /// Track within the domain (worker, endpoint, shard, ...); becomes
    /// the chrome-trace thread id.
    pub track: u32,
    /// Free secondary dimension (payload kind, destination, iteration).
    pub key: u32,
    /// Timestamp in the domain's unit.
    pub ts: u64,
    /// Payload: duration for `Complete`, delta for `Counter`, bits of an
    /// `f64` for `Metric`, zero for `Begin`/`End`.
    pub value: u64,
}

impl Event {
    /// A span start.
    pub fn begin(label: &'static str, domain: Domain, track: u32, key: u32, ts: u64) -> Event {
        Event {
            label,
            ph: Ph::Begin,
            domain,
            track,
            key,
            ts,
            value: 0,
        }
    }

    /// A span end.
    pub fn end(label: &'static str, domain: Domain, track: u32, key: u32, ts: u64) -> Event {
        Event {
            label,
            ph: Ph::End,
            domain,
            track,
            key,
            ts,
            value: 0,
        }
    }

    /// A complete span: starts at `ts`, lasts `dur` domain units.
    pub fn complete(
        label: &'static str,
        domain: Domain,
        track: u32,
        key: u32,
        ts: u64,
        dur: u64,
    ) -> Event {
        Event {
            label,
            ph: Ph::Complete,
            domain,
            track,
            key,
            ts,
            value: dur,
        }
    }

    /// A counter increment of `delta`.
    pub fn count(
        label: &'static str,
        domain: Domain,
        track: u32,
        key: u32,
        ts: u64,
        delta: u64,
    ) -> Event {
        Event {
            label,
            ph: Ph::Counter,
            domain,
            track,
            key,
            ts,
            value: delta,
        }
    }

    /// A floating-point sample, stored losslessly as bits.
    pub fn metric(
        label: &'static str,
        domain: Domain,
        track: u32,
        key: u32,
        ts: u64,
        sample: f64,
    ) -> Event {
        Event {
            label,
            ph: Ph::Metric,
            domain,
            track,
            key,
            ts,
            value: sample.to_bits(),
        }
    }

    /// The `f64` carried by a [`Ph::Metric`] event.
    pub fn metric_value(&self) -> f64 {
        f64::from_bits(self.value)
    }
}

/// Shared drain the per-thread buffers flush into, plus the wall-clock
/// epoch. Only `flush`/`finish` touch the mutex — never `push`.
#[derive(Debug)]
struct Shared {
    epoch: Instant,
    done: Mutex<Vec<Vec<Event>>>,
}

/// A per-component append-only event buffer.
///
/// `push` on an enabled buffer is a bounds-checked `Vec` push; on a
/// disabled buffer it is a single predictable branch. Buffers flush
/// their batch into the recorder's shared sink on [`EventBuf::flush`]
/// or drop, so the hot path never contends on a lock.
pub struct EventBuf {
    enabled: bool,
    shared: Option<Arc<Shared>>,
    events: Vec<Event>,
}

impl EventBuf {
    /// A permanently disabled buffer: `push` is a no-op.
    pub fn disabled() -> EventBuf {
        EventBuf {
            enabled: false,
            shared: None,
            events: Vec::new(),
        }
    }

    /// An enabled buffer with no sink; inspect via [`EventBuf::events`]
    /// or [`EventBuf::take`]. Used by components that export their own
    /// events and in tests.
    pub fn local() -> EventBuf {
        EventBuf {
            enabled: true,
            shared: None,
            events: Vec::new(),
        }
    }

    /// Whether pushes are recorded. Check before computing anything
    /// nontrivial for an event.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.enabled
    }

    /// Records an event. No-op when the buffer is disabled.
    #[inline]
    pub fn push(&mut self, event: Event) {
        if self.enabled {
            self.events.push(event);
        }
    }

    /// The events recorded and not yet flushed.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Removes and returns the unflushed events.
    pub fn take(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }

    /// Moves the buffered batch into the recorder's sink (if any).
    /// The one place a lock is taken, off the hot path.
    pub fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        if let Some(shared) = &self.shared {
            let batch = std::mem::take(&mut self.events);
            if let Ok(mut done) = shared.done.lock() {
                done.push(batch);
            }
        }
    }
}

impl Clone for EventBuf {
    /// Clones the *sink*, not the pending events: the clone starts
    /// empty but drains to the same recorder.
    fn clone(&self) -> EventBuf {
        EventBuf {
            enabled: self.enabled,
            shared: self.shared.clone(),
            events: Vec::new(),
        }
    }
}

impl Drop for EventBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

impl fmt::Debug for EventBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventBuf")
            .field("enabled", &self.enabled)
            .field("pending", &self.events.len())
            .finish()
    }
}

/// Handle threaded through configuration to switch tracing on.
///
/// `Recorder::default()` (= [`Recorder::off`]) hands out disabled
/// buffers and reports wall time as zero, so instrumented code costs a
/// branch per potential event. [`Recorder::on`] hands out buffers that
/// drain into a shared sink; [`Recorder::finish`] collects them into a
/// deterministic, canonically ordered [`Recording`].
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    shared: Option<Arc<Shared>>,
}

impl Recorder {
    /// The no-op recorder.
    pub fn off() -> Recorder {
        Recorder { shared: None }
    }

    /// A live recorder; its wall-clock epoch is this call.
    pub fn on() -> Recorder {
        Recorder {
            shared: Some(Arc::new(Shared {
                epoch: Instant::now(),
                done: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this recorder collects events.
    pub fn is_on(&self) -> bool {
        self.shared.is_some()
    }

    /// Wall-clock nanoseconds since the recorder was created; zero when
    /// off. This is the *only* clock read in the observability stack —
    /// simulated components stamp events with their own virtual time.
    #[inline]
    pub fn wall_ns(&self) -> u64 {
        match &self.shared {
            Some(shared) => shared.epoch.elapsed().as_nanos() as u64,
            None => 0,
        }
    }

    /// A buffer draining into this recorder (disabled when off).
    pub fn buffer(&self) -> EventBuf {
        EventBuf {
            enabled: self.shared.is_some(),
            shared: self.shared.clone(),
            events: Vec::new(),
        }
    }

    /// Collects everything flushed so far into a canonical recording.
    ///
    /// Events are sorted by `(domain, track, ts, key, label, ph)` so the
    /// recording is independent of flush order — two runs of a
    /// deterministic simulation produce byte-identical virtual-domain
    /// traces.
    pub fn finish(&self) -> Recording {
        let mut events = Vec::new();
        if let Some(shared) = &self.shared {
            if let Ok(mut done) = shared.done.lock() {
                for batch in done.drain(..) {
                    events.extend(batch);
                }
            }
        }
        Recording::from_events(events)
    }
}

/// A drained, canonically ordered set of events plus export helpers.
#[derive(Debug, Clone, Default)]
pub struct Recording {
    events: Vec<Event>,
}

impl Recording {
    /// Builds a recording, applying the canonical sort.
    pub fn from_events(mut events: Vec<Event>) -> Recording {
        events.sort_by(|a, b| {
            (a.domain, a.track, a.ts, a.key, a.label, a.ph)
                .cmp(&(b.domain, b.track, b.ts, b.key, b.label, b.ph))
        });
        Recording { events }
    }

    /// The events in canonical order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the recording as chrome://tracing trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        export::chrome_trace(&self.events)
    }

    /// Writes the chrome trace to `path`.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Aggregates the recording into the per-run summary table.
    pub fn summary(&self) -> export::Summary {
        export::Summary::of(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_hands_out_disabled_buffers() {
        let rec = Recorder::off();
        assert!(!rec.is_on());
        assert_eq!(rec.wall_ns(), 0);
        let mut buf = rec.buffer();
        assert!(!buf.is_on());
        buf.push(Event::count("x", Domain::Seq, 0, 0, 0, 1));
        assert!(buf.events().is_empty());
        assert!(rec.finish().is_empty());
    }

    #[test]
    fn events_flow_from_buffer_to_recording() {
        let rec = Recorder::on();
        let mut buf = rec.buffer();
        assert!(buf.is_on());
        buf.push(Event::count(
            labels::FABRIC_WIRE_BYTES,
            Domain::Seq,
            1,
            0,
            2,
            64,
        ));
        buf.push(Event::complete(
            labels::NIC_COMPRESS,
            Domain::Cycles,
            0,
            0,
            10,
            5,
        ));
        buf.flush();
        let recording = rec.finish();
        assert_eq!(recording.len(), 2);
        // Canonical order: Cycles sorts after Wall/Net but before Seq.
        assert_eq!(recording.events()[0].label, labels::NIC_COMPRESS);
        assert_eq!(recording.events()[1].value, 64);
    }

    #[test]
    fn dropping_a_buffer_flushes_it() {
        let rec = Recorder::on();
        {
            let mut buf = rec.buffer();
            buf.push(Event::count("dropped", Domain::Seq, 0, 0, 0, 7));
        }
        assert_eq!(rec.finish().len(), 1);
    }

    #[test]
    fn canonical_sort_is_flush_order_independent() {
        let a = Event::count("a", Domain::Net, 0, 0, 5, 1);
        let b = Event::complete("b", Domain::Net, 0, 0, 3, 2);
        let fwd = Recording::from_events(vec![a, b]);
        let rev = Recording::from_events(vec![b, a]);
        assert_eq!(fwd.events(), rev.events());
        assert_eq!(fwd.events()[0].label, "b");
    }

    #[test]
    fn metric_roundtrips_bits() {
        let ev = Event::metric("m", Domain::Wall, 0, 0, 0, 0.1250001_f64);
        assert_eq!(ev.metric_value(), 0.1250001_f64);
    }

    #[test]
    fn cloned_buffer_shares_the_sink_but_not_pending_events() {
        let rec = Recorder::on();
        let mut buf = rec.buffer();
        buf.push(Event::count("orig", Domain::Seq, 0, 0, 0, 1));
        let mut clone = buf.clone();
        assert!(clone.events().is_empty());
        clone.push(Event::count("clone", Domain::Seq, 0, 0, 1, 2));
        buf.flush();
        clone.flush();
        assert_eq!(rec.finish().len(), 2);
    }
}
