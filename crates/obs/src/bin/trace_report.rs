//! Loads an exported chrome trace and prints the per-run summary table.
//!
//! ```text
//! cargo run -p obs --bin trace-report [-- RESULTS_trace.json]
//! ```
//!
//! Produce a trace first, e.g.
//! `cargo run --release -p inceptionn --example traced_ring` or
//! `cargo run --release -p inceptionn-bench --bin fig12 -- --trace RESULTS_trace.json`.

use std::process::ExitCode;

use obs::export::{events_from_json, Summary};

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "RESULTS_trace.json".to_string());
    let src = match std::fs::read_to_string(&path) {
        Ok(src) => src,
        Err(err) => {
            eprintln!("trace-report: cannot read `{path}`: {err}");
            eprintln!(
                "hint: produce one with `cargo run --release -p inceptionn --example traced_ring`"
            );
            return ExitCode::from(2);
        }
    };
    let events = match events_from_json(&src) {
        Ok(events) => events,
        Err(err) => {
            eprintln!("trace-report: `{path}` is not a valid exported trace: {err}");
            return ExitCode::from(2);
        }
    };
    println!("trace: {path} ({} events)", events.len());
    println!();
    print!("{}", Summary::of_owned(&events));
    ExitCode::SUCCESS
}
