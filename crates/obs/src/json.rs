//! A minimal JSON parser for re-reading exported traces.
//!
//! The workspace is dependency-free by policy (DESIGN.md "Dependency
//! policy"), so the `trace-report` binary and the structural validation
//! in `tests/obs_stack.rs` parse with this ~150-line recursive-descent
//! reader instead of pulling in serde_json. It accepts exactly the
//! subset of JSON the exporter emits (which is all of standard JSON
//! minus exotic number forms it never produces — exponents are still
//! handled for robustness).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as an `f64`.
    Number(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` elsewhere or when absent.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document; trailing whitespace allowed,
/// trailing garbage is an error.
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates never appear in exporter output;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not a byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"traceEvents":[{"name":"a","ts":1.5},{"n":-2}],"ok":true}"#).unwrap();
        let events = v.get("traceEvents").and_then(Value::as_array).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].get("name").and_then(Value::as_str), Some("a"));
        assert_eq!(events[0].get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(events[1].get("n").and_then(Value::as_f64), Some(-2.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"a":"#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn large_integers_roundtrip_exactly() {
        // Wire-byte totals must survive export → parse bit-exactly;
        // u64 values below 2^53 are exact in f64.
        let n = (1u64 << 53) - 1;
        let v = parse(&n.to_string()).unwrap();
        assert_eq!(v.as_f64().map(|f| f as u64), Some(n));
    }
}
