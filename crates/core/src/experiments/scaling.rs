//! Fig. 15: gradient-exchange time versus cluster size.

use inceptionn_dnn::profile::{ModelId, ModelProfile};
use inceptionn_netsim::analytic::{ring_time, wa_time, CostModel};
use inceptionn_netsim::collective::{
    ring_exchange, worker_aggregator_exchange, RING_HOST_S_PER_BYTE,
};
use inceptionn_netsim::sim::NetworkConfig;
use serde::{Deserialize, Serialize};

/// One point of Fig. 15: gradient-exchange time (communication plus
/// summation) for one (model, algorithm, node-count) triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Model name.
    pub model: String,
    /// `true` for the worker-aggregator baseline, `false` for the ring.
    pub is_wa: bool,
    /// Worker count.
    pub nodes: usize,
    /// Simulated exchange time, seconds.
    pub exchange_s: f64,
    /// Normalized to the model's 4-node WA point (the paper's axis).
    pub normalized: f64,
    /// The α-β-γ analytic prediction, seconds (paper Sec. VIII-D).
    pub analytic_s: f64,
}

/// The node counts the paper sweeps.
pub const NODE_COUNTS: [usize; 3] = [4, 6, 8];

/// Reproduces Fig. 15 for all four models.
pub fn fig15() -> Vec<ScalingPoint> {
    let mut out = Vec::new();
    for id in ModelId::EVALUATED {
        let profile = ModelProfile::of(id);
        let gamma = profile.gamma_per_byte();
        let model = CostModel::ten_gbe(gamma);
        let n = profile.weight_bytes;
        // Baseline for normalization: 4-node WA.
        let wa4 =
            worker_aggregator_exchange(&NetworkConfig::ten_gbe(5), 4, n, gamma, None).total_s();
        for &nodes in &NODE_COUNTS {
            let wa = worker_aggregator_exchange(
                &NetworkConfig::ten_gbe(nodes + 1),
                nodes,
                n,
                gamma,
                None,
            )
            .total_s();
            out.push(ScalingPoint {
                model: profile.name().to_string(),
                is_wa: true,
                nodes,
                exchange_s: wa,
                normalized: wa / wa4,
                analytic_s: wa_time(nodes, n, &model),
            });
            let ring = ring_exchange(
                &NetworkConfig::ten_gbe(nodes),
                n,
                gamma,
                None,
                RING_HOST_S_PER_BYTE,
            )
            .total_s();
            // The analytic ring model sees the stack cost as extra beta.
            let ring_model = CostModel {
                beta: model.beta + RING_HOST_S_PER_BYTE,
                ..model
            };
            out.push(ScalingPoint {
                model: profile.name().to_string(),
                is_wa: false,
                nodes,
                exchange_s: ring,
                normalized: ring / wa4,
                analytic_s: ring_time(nodes, n, &ring_model),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_grows_linearly_ring_stays_flat() {
        let points = fig15();
        for model in ["AlexNet", "ResNet-50", "VGG-16"] {
            let get = |wa: bool, nodes: usize| {
                points
                    .iter()
                    .find(|p| p.model == model && p.is_wa == wa && p.nodes == nodes)
                    .unwrap()
                    .exchange_s
            };
            // Paper: WA exchange time ~linear in node count.
            let growth_wa = get(true, 8) / get(true, 4);
            assert!(
                (1.6..2.4).contains(&growth_wa),
                "{model}: WA growth {growth_wa:.2}"
            );
            // Ring stays almost constant.
            let growth_ring = get(false, 8) / get(false, 4);
            assert!(
                (0.9..1.3).contains(&growth_ring),
                "{model}: ring growth {growth_ring:.2}"
            );
            // Ring beats WA at every size.
            for nodes in NODE_COUNTS {
                assert!(get(false, nodes) < get(true, nodes), "{model} @{nodes}");
            }
        }
    }

    #[test]
    fn normalization_anchors_at_four_node_wa() {
        let points = fig15();
        for p in points.iter().filter(|p| p.is_wa && p.nodes == 4) {
            assert!((p.normalized - 1.0).abs() < 1e-12, "{}", p.model);
        }
    }

    #[test]
    fn analytic_model_tracks_simulation_for_large_models() {
        let points = fig15();
        for p in points.iter().filter(|p| p.model != "HDC" && !p.is_wa) {
            // The ring analytic model and packet simulation agree closely.
            let rel = (p.exchange_s - p.analytic_s).abs() / p.analytic_s;
            assert!(
                rel < 0.15,
                "{} ring @{}: sim {:.3} vs analytic {:.3}",
                p.model,
                p.nodes,
                p.exchange_s,
                p.analytic_s
            );
        }
    }
}
