//! One driver per table/figure of the paper's evaluation.
//!
//! Each submodule exposes a `run`-style function returning structured,
//! serializable results; the `inceptionn-bench` binaries render them as
//! the paper's rows/series and `EXPERIMENTS.md` records the comparison.
//!
//! | paper artifact | module |
//! |---|---|
//! | Fig. 3 (sizes, comm share) | [`breakdown`] |
//! | Fig. 4 (truncation vs accuracy) | [`truncation`] |
//! | Fig. 5 (gradient distribution) | [`gradhist`] |
//! | Fig. 7 (software compression) | [`softcomp`] |
//! | Table I (hyper-parameters) | [`breakdown`] |
//! | Table II (time breakdown) | [`breakdown`] |
//! | Fig. 12 (system comparison) | [`speedup`] |
//! | Fig. 13 (speedup at accuracy parity) | [`speedup`] |
//! | Fig. 14 (ratio & accuracy per scheme) | [`ratios`] |
//! | Table III (bitwidth distribution) | [`ratios`] |
//! | Fig. 15 (scalability) | [`scaling`] |
//! | design-choice ablations | [`ablation`] |
//!
//! Extensions beyond the paper's evaluation:
//!
//! | study | module |
//! |---|---|
//! | error-bound sweep (ratio/accuracy knee) | [`boundsweep`] |
//! | accuracy-vs-wire-ratio frontier per codec family | [`frontier`] |
//! | Fig. 1 organizations on an oversubscribed fabric | [`hierarchy`] |
//! | vs 1-bit SGD / TernGrad / DGC top-k (Sec. IX) | [`related`] |
//! | 4→1024 topology-tree sweep + in-network reduction | [`toposcale`] |

pub mod ablation;
pub mod boundsweep;
pub mod breakdown;
pub mod frontier;
pub mod gradhist;
pub mod hierarchy;
pub mod ratios;
pub mod related;
pub mod scaling;
pub mod softcomp;
pub mod speedup;
pub mod toposcale;
pub mod truncation;

/// How much work an experiment run should invest.
///
/// `Quick` keeps unit tests fast (scaled-down models, fewer samples and
/// iterations); `Full` is what the `inceptionn-bench` binaries use to
/// regenerate the published numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Seconds-scale runs for tests.
    Quick,
    /// The real experiment (release-build binaries).
    Full,
}

impl Fidelity {
    /// Scales a `Full`-fidelity count down for quick runs.
    pub fn scale(self, full: usize, quick: usize) -> usize {
        match self {
            Fidelity::Quick => quick,
            Fidelity::Full => full,
        }
    }
}
