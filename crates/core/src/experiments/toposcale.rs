//! Extension: the fig12-style topology-tree scaling sweep, 4→1024
//! workers, with switch-resident in-network reduction.
//!
//! The paper's testbed stops at one rack (Fig. 15 sweeps 4–8 nodes);
//! this study carries its algorithms onto switch trees of growing depth
//! (4 = one switch, 1024 = five tiers of radix-4 switches with 4:1 core
//! oversubscription) and adds the NetReduce-style mode where the
//! switches themselves fold gradient packets in flight. Every simulated
//! point is cross-validated against the per-tier α-β-γ extension of the
//! paper's Sec. VIII-D cost model.

use inceptionn_compress::gradmodel::GradientPreset;
use inceptionn_netsim::analytic::{switch_reduce_time, tree_ring_time, TreeCostModel};
use inceptionn_netsim::topology::{
    ring_exchange_on, switch_reduce_exchange, wa_exchange_on, wa_exchange_wire, ExchangeWire,
    TreeConfig,
};
use serde::{Deserialize, Serialize};

use crate::cluster::compression_spec;
use crate::ErrorBound;

/// Exchange mode of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScaleMode {
    /// One global aggregator host (Fig. 2), flat over the whole tree.
    FlatWa,
    /// One ring across all workers (Fig. 1(b)) laid over the tree.
    FlatRing,
    /// Rings at every tier of the topology tree (the generic Fig. 1(c)).
    TreeRing,
    /// Switch-resident in-network reduction: no gather leg exists.
    SwitchReduce,
}

impl ScaleMode {
    /// All modes, in presentation order.
    pub const ALL: [ScaleMode; 4] = [
        ScaleMode::FlatWa,
        ScaleMode::FlatRing,
        ScaleMode::TreeRing,
        ScaleMode::SwitchReduce,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            ScaleMode::FlatWa => "flat WA",
            ScaleMode::FlatRing => "flat ring",
            ScaleMode::TreeRing => "tree ring",
            ScaleMode::SwitchReduce => "switch reduce",
        }
    }
}

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToposcalePoint {
    /// Exchange mode measured.
    pub mode: ScaleMode,
    /// Worker count (product of `arities`).
    pub nodes: usize,
    /// Switch radix per tier, root first.
    pub arities: Vec<usize>,
    /// Whether NIC compression was on (eb = 2^-10, AlexNet stream).
    pub compressed: bool,
    /// Simulated exchange time (comm + host reduce), seconds.
    pub exchange_s: f64,
    /// The per-tier α-β-γ prediction, seconds (`None` for modes the
    /// extended model does not cover).
    pub analytic_s: Option<f64>,
    /// Per-tier wire volume and gather-leg bytes (`None` for modes
    /// without wire instrumentation).
    pub wire: Option<ExchangeWire>,
}

/// The worker counts the sweep visits: radix-4 trees of depth 1–5.
pub const NODE_COUNTS: [usize; 5] = [4, 16, 64, 256, 1024];

/// Per-byte host γ (sum-reduction cost), matching [`hierarchy`].
///
/// [`hierarchy`]: crate::experiments::hierarchy
const GAMMA: f64 = 1e-10;

/// The radix-4 tree for `nodes` workers and its per-tier
/// oversubscription (non-blocking edge, 4:1 at every aggregation tier).
fn fabric_for(nodes: usize) -> (Vec<usize>, TreeConfig) {
    let mut arities = Vec::new();
    let mut left = nodes;
    while left > 1 {
        assert!(left.is_multiple_of(4), "sweep sizes are powers of four");
        arities.push(4);
        left /= 4;
    }
    let mut oversub = vec![4u64; arities.len()];
    *oversub.last_mut().expect("at least one tier") = 1;
    let cfg = TreeConfig::ten_gbe(&arities, &oversub);
    (arities, cfg)
}

/// Runs the sweep for gradient vectors of `bytes` bytes, up to
/// `max_nodes` workers (smoke runs stop early), with the compression
/// ratio measured from `ratio_samples` modeled AlexNet gradients.
///
/// Host-stack cost is set to zero on the ring modes so the simulated
/// and analytic curves describe the same machine; [`hierarchy`] covers
/// the host-stack sensitivity separately.
///
/// [`hierarchy`]: crate::experiments::hierarchy
pub fn run(bytes: u64, max_nodes: usize, ratio_samples: usize) -> Vec<ToposcalePoint> {
    let spec = compression_spec(GradientPreset::AlexNet, ErrorBound::pow2(10), ratio_samples);
    let mut out = Vec::new();
    for &nodes in NODE_COUNTS.iter().filter(|&&n| n <= max_nodes) {
        let (arities, cfg) = fabric_for(nodes);
        let model = TreeCostModel::of_tree(&cfg, GAMMA);
        let flat = vec![nodes];
        for compressed in [false, true] {
            let s = compressed.then_some(spec);
            for mode in ScaleMode::ALL {
                let (times, analytic_s, wire) = match mode {
                    ScaleMode::FlatWa => (
                        wa_exchange_on(&cfg, &flat, bytes, GAMMA, s),
                        None,
                        Some(wa_exchange_wire(&cfg, &flat, bytes, s)),
                    ),
                    // No analytic prediction for the flat ring: laid
                    // over a tree, only some of each step's transfers
                    // cross the core, and the per-tier model has no term
                    // for that partial sharing.
                    ScaleMode::FlatRing => (
                        ring_exchange_on(&cfg, &flat, bytes, GAMMA, s, 0.0),
                        None,
                        None,
                    ),
                    ScaleMode::TreeRing => (
                        ring_exchange_on(&cfg, &arities, bytes, GAMMA, s, 0.0),
                        (!compressed).then(|| tree_ring_time(&arities, bytes, &model)),
                        None,
                    ),
                    ScaleMode::SwitchReduce => {
                        let (times, wire) = switch_reduce_exchange(&cfg, bytes, s);
                        let analytic = (!compressed).then(|| switch_reduce_time(bytes, &model));
                        (times, analytic, Some(wire))
                    }
                };
                out.push(ToposcalePoint {
                    mode,
                    nodes,
                    arities: arities.clone(),
                    compressed,
                    exchange_s: times.total_s(),
                    analytic_s,
                    wire,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The sweep is minutes-scale in debug builds; run it once and share
    /// it across the test functions.
    fn points() -> &'static [ToposcalePoint] {
        static POINTS: OnceLock<Vec<ToposcalePoint>> = OnceLock::new();
        POINTS.get_or_init(|| run(1_000_000, 1024, 2_000))
    }

    fn get(
        pts: &[ToposcalePoint],
        mode: ScaleMode,
        nodes: usize,
        compressed: bool,
    ) -> &ToposcalePoint {
        pts.iter()
            .find(|p| p.mode == mode && p.nodes == nodes && p.compressed == compressed)
            .unwrap()
    }

    #[test]
    fn switch_reduce_eliminates_the_gather_leg() {
        let pts = points();
        for p in pts.iter().filter(|p| p.mode == ScaleMode::SwitchReduce) {
            let wire = p.wire.as_ref().unwrap();
            assert_eq!(
                wire.gather_leg, 0,
                "@{} compressed={}",
                p.nodes, p.compressed
            );
            assert!(wire.by_tier.iter().sum::<u64>() > 0);
        }
        // ... which the host-aggregator baseline cannot do.
        for p in pts.iter().filter(|p| p.mode == ScaleMode::FlatWa) {
            assert!(p.wire.as_ref().unwrap().gather_leg > 0, "@{}", p.nodes);
        }
    }

    #[test]
    fn analytic_model_tracks_simulation_at_scale() {
        // The refactor's acceptance bar: the per-tier α-β-γ extension
        // stays within tolerance of the packet-level simulator at 64,
        // 256, and 1024 workers.
        let pts = points();
        for nodes in [64usize, 256, 1024] {
            for mode in [ScaleMode::TreeRing, ScaleMode::SwitchReduce] {
                let p = get(pts, mode, nodes, false);
                let model = p.analytic_s.unwrap();
                let rel = (p.exchange_s - model).abs() / model;
                assert!(
                    rel < 0.15,
                    "{} @{nodes}: sim {:.4} vs model {model:.4} ({rel:.3})",
                    mode.label(),
                    p.exchange_s
                );
            }
        }
    }

    #[test]
    fn localized_exchanges_win_once_the_core_is_oversubscribed() {
        let pts = points();
        for nodes in [64usize, 256, 1024] {
            let wa = get(pts, ScaleMode::FlatWa, nodes, false).exchange_s;
            let tree = get(pts, ScaleMode::TreeRing, nodes, false).exchange_s;
            let sw = get(pts, ScaleMode::SwitchReduce, nodes, false).exchange_s;
            assert!(tree < wa, "@{nodes}: tree {tree:.3} vs WA {wa:.3}");
            assert!(sw < wa, "@{nodes}: switch {sw:.3} vs WA {wa:.3}");
        }
        // The flat ring holds its own at rack scale, but once the block
        // a step moves is big relative to the oversubscribed core the
        // tiered rings (which localize most steps) pull ahead.
        for nodes in [256usize, 1024] {
            let flat = get(pts, ScaleMode::FlatRing, nodes, false).exchange_s;
            let tree = get(pts, ScaleMode::TreeRing, nodes, false).exchange_s;
            assert!(
                tree < flat,
                "@{nodes}: tiered rings must beat the flat ring on an \
                 oversubscribed core ({tree:.3} vs {flat:.3})"
            );
        }
    }

    #[test]
    fn compression_shrinks_every_mode() {
        let pts = points();
        for mode in ScaleMode::ALL {
            let plain = get(pts, mode, 64, false).exchange_s;
            let comp = get(pts, mode, 64, true).exchange_s;
            assert!(comp < plain, "{}: {comp:.3} vs {plain:.3}", mode.label());
        }
    }
}
