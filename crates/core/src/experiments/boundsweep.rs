//! Extension: a fine sweep of the error bound — the codec's single
//! tuning knob.
//!
//! The paper evaluates three bounds (`2^-10`, `2^-8`, `2^-6`); this
//! study sweeps the whole range to expose the ratio/accuracy/throughput
//! trade-off curve and where the knee sits.

use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
use inceptionn_compress::{ErrorBound, InceptionnCodec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use super::truncation::{train_with_corruption, ProxyModel};
use super::Fidelity;

/// One point of the sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundPoint {
    /// Error-bound exponent (`2^-e`).
    pub exponent: u8,
    /// Compression ratio on the AlexNet-calibrated stream.
    pub ratio: f64,
    /// Fraction of values dropped to the 2-bit class.
    pub zero_fraction: f64,
    /// Final proxy accuracy when training through this bound
    /// (`None` when the sweep runs ratio-only).
    pub accuracy: Option<f32>,
}

/// Sweeps the error bound over `4..=14`, measuring ratio always and
/// accuracy on the proxy when `with_accuracy` is set.
pub fn run(fidelity: Fidelity, with_accuracy: bool, seed: u64) -> Vec<BoundPoint> {
    let samples = fidelity.scale(300_000, 20_000);
    let mut rng = StdRng::seed_from_u64(seed);
    let grads = GradientModel::preset(GradientPreset::AlexNet).sample(&mut rng, samples);
    (4u8..=14)
        .map(|e| {
            let codec = InceptionnCodec::new(ErrorBound::pow2(e));
            let hist = codec.histogram(&grads);
            let accuracy = with_accuracy.then(|| {
                train_with_corruption(
                    ProxyModel::Hdc,
                    fidelity,
                    seed,
                    move |g| codec.quantize_inplace(g),
                    |_| {},
                )
            });
            BoundPoint {
                exponent: e,
                ratio: hist.compression_ratio(),
                zero_fraction: hist.fractions().0,
                accuracy,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_monotone_in_the_bound() {
        let pts = run(Fidelity::Quick, false, 31);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            // Looser bound (smaller exponent) compresses at least as well.
            assert!(
                w[0].ratio >= w[1].ratio * 0.995,
                "2^-{} {:.2} vs 2^-{} {:.2}",
                w[0].exponent,
                w[0].ratio,
                w[1].exponent,
                w[1].ratio
            );
            assert!(w[0].zero_fraction >= w[1].zero_fraction * 0.99);
        }
    }

    #[test]
    fn ratio_spans_the_paper_range() {
        let pts = run(Fidelity::Quick, false, 32);
        let loosest = pts.first().unwrap();
        let tightest = pts.last().unwrap();
        assert!(loosest.ratio > 10.0, "2^-4 ratio {:.1}", loosest.ratio);
        assert!(
            tightest.ratio > 1.5 && tightest.ratio < 8.0,
            "2^-14 ratio {:.1}",
            tightest.ratio
        );
    }

    #[test]
    fn accuracy_holds_at_paper_bounds() {
        // Single-seed quick runs are noisy (the proxy's gradients sit
        // close to the tight bounds); assert the task stays clearly
        // learnable at every bound the paper uses, rather than a tight
        // per-point comparison that full-fidelity runs do satisfy.
        let pts = run(Fidelity::Quick, true, 33);
        for p in pts.iter().filter(|p| p.exponent >= 8) {
            let acc = p.accuracy.expect("accuracy measured");
            assert!(
                acc > 0.5,
                "2^-{}: accuracy collapsed to {acc:.2}",
                p.exponent
            );
        }
    }
}
