//! Ablations of the design choices DESIGN.md calls out.

use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
use inceptionn_compress::inceptionn::Tag;
use inceptionn_compress::{ErrorBound, InceptionnCodec};
use inceptionn_netsim::collective::ring_exchange;
use inceptionn_netsim::sim::{NetworkConfig, StarNetworkSim};
use inceptionn_netsim::transfer::{CompressionSpec, Transfer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use super::Fidelity;

/// Ablation 1 — per-value size selection vs a fixed 16-bit payload for
/// every non-droppable value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizeSelAblation {
    /// Error-bound exponent.
    pub bound_exp: u8,
    /// Ratio of the full adaptive codec.
    pub adaptive_ratio: f64,
    /// Ratio when every kept sub-1.0 value uses the 16-bit form.
    pub fixed16_ratio: f64,
}

/// Measures how much the adaptive 0/8/16/32 size selection buys over a
/// zero-or-16-bit codec on an AlexNet-style stream.
pub fn size_selection(fidelity: Fidelity, seed: u64) -> Vec<SizeSelAblation> {
    let samples = fidelity.scale(300_000, 20_000);
    let mut rng = StdRng::seed_from_u64(seed);
    let grads = GradientModel::preset(GradientPreset::AlexNet).sample(&mut rng, samples);
    [10u8, 8, 6]
        .into_iter()
        .map(|e| {
            let codec = InceptionnCodec::new(ErrorBound::pow2(e));
            let hist = codec.histogram(&grads);
            let adaptive_ratio = hist.compression_ratio();
            // Fixed-16 variant: Zero and Full keep their encodings; the
            // 8- and 16-bit classes all cost 16 payload bits.
            let fixed_bits = 2 * hist.total() + 16 * (hist.bits8 + hist.bits16) + 32 * hist.full;
            let fixed16_ratio = (hist.total() as f64 * 32.0) / fixed_bits as f64;
            SizeSelAblation {
                bound_exp: e,
                adaptive_ratio,
                fixed16_ratio,
            }
        })
        .collect()
}

/// Ablation 2 — the ring schedule vs a naive full-gradient all-to-all
/// broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopologyAblation {
    /// Worker count.
    pub nodes: usize,
    /// Ring exchange communication time, seconds.
    pub ring_s: f64,
    /// All-to-all broadcast communication time, seconds.
    pub all_to_all_s: f64,
}

/// Compares the ring against every-worker-broadcasts-everything for a
/// 100 MB gradient.
pub fn topology(nodes_list: &[usize]) -> Vec<TopologyAblation> {
    let bytes = 100_000_000u64;
    nodes_list
        .iter()
        .map(|&p| {
            let cfg = NetworkConfig::ten_gbe(p);
            let ring = ring_exchange(&cfg, bytes, 0.0, None, 0.0).comm_s;
            // All-to-all: every node unicasts its full gradient to every
            // other node, all at once.
            let mut sim = StarNetworkSim::new(cfg);
            for src in 0..p {
                for dst in 0..p {
                    if src != dst {
                        sim.add_transfer(Transfer::new(src, dst, bytes));
                    }
                }
            }
            let all_to_all = sim.run().makespan().as_secs_f64();
            TopologyAblation {
                nodes: p,
                ring_s: ring,
                all_to_all_s: all_to_all,
            }
        })
        .collect()
}

/// Ablation 3 — why compression ratio does not convert 1:1 into
/// communication-time reduction: sweep the per-packet fixed overhead.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketOverheadPoint {
    /// Per-packet header bytes modeled.
    pub header_bytes: u64,
    /// Payload compression ratio applied.
    pub ratio: f64,
    /// Achieved communication-time gain (plain time / compressed time).
    pub time_gain: f64,
}

/// Sweeps header overhead at a fixed 14.9x payload ratio (the paper's
/// best case) on a 20 MB point-to-point transfer.
pub fn packet_overhead_sweep() -> Vec<PacketOverheadPoint> {
    let ratio = 14.9;
    [0u64, 20, 40, 78, 120, 200]
        .into_iter()
        .map(|header_bytes| {
            let mut cfg = NetworkConfig::ten_gbe(2);
            cfg.header_bytes = header_bytes;
            // Isolate the header effect: near-zero host cost per packet.
            cfg.host_ns_per_packet = 10;
            let bytes = 20_000_000u64;
            let run = |spec: Option<CompressionSpec>| {
                let mut sim = StarNetworkSim::new(cfg);
                let mut t = Transfer::new(0, 1, bytes);
                if let Some(s) = spec {
                    t = t.compressed(s);
                }
                sim.add_transfer(t);
                sim.run().makespan().as_secs_f64()
            };
            let plain = run(None);
            let compressed = run(Some(CompressionSpec::new(ratio, 500)));
            PacketOverheadPoint {
                header_bytes,
                ratio,
                time_gain: plain / compressed,
            }
        })
        .collect()
}

/// Ablation 4 — what fraction of the codec's benefit comes from the
/// 0-bit (dropped) class alone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZeroClassAblation {
    /// Error-bound exponent.
    pub bound_exp: u8,
    /// Fraction of values in the 0-bit class.
    pub zero_fraction: f64,
    /// Full codec ratio.
    pub full_ratio: f64,
    /// Ratio of a codec that only drops sub-bound values (everything
    /// else stays 32-bit + tag).
    pub drop_only_ratio: f64,
}

/// Quantifies the 0-bit class's contribution on an AlexNet stream.
pub fn zero_class(fidelity: Fidelity, seed: u64) -> Vec<ZeroClassAblation> {
    let samples = fidelity.scale(300_000, 20_000);
    let mut rng = StdRng::seed_from_u64(seed);
    let grads = GradientModel::preset(GradientPreset::AlexNet).sample(&mut rng, samples);
    [10u8, 8, 6]
        .into_iter()
        .map(|e| {
            let codec = InceptionnCodec::new(ErrorBound::pow2(e));
            let hist = codec.histogram(&grads);
            let zero = hist.zero;
            let kept = hist.total() - zero;
            let drop_only_bits = 2 * hist.total() + 32 * kept;
            ZeroClassAblation {
                bound_exp: e,
                zero_fraction: hist.fractions().0,
                full_ratio: hist.compression_ratio(),
                drop_only_ratio: (hist.total() as f64 * 32.0) / drop_only_bits as f64,
            }
        })
        .collect()
}

/// Tag helper used by the bench renderer.
pub fn tag_bits(tag: Tag) -> u32 {
    tag.wire_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_selection_beats_fixed_16() {
        for a in size_selection(Fidelity::Quick, 1) {
            assert!(
                a.adaptive_ratio >= a.fixed16_ratio * 0.999,
                "2^-{}: adaptive {:.2} vs fixed {:.2}",
                a.bound_exp,
                a.adaptive_ratio,
                a.fixed16_ratio
            );
        }
        // At the loose bound nearly everything fits in 8 bits, so the
        // advantage is pronounced.
        let loose = size_selection(Fidelity::Quick, 1)
            .into_iter()
            .find(|a| a.bound_exp == 6)
            .unwrap();
        assert!(loose.adaptive_ratio > loose.fixed16_ratio * 1.1);
    }

    #[test]
    fn ring_crushes_all_to_all() {
        let rows = topology(&[4, 8]);
        for r in &rows {
            // All-to-all moves (p-1)·n per node vs the ring's 2·(p-1)/p·n.
            assert!(
                r.all_to_all_s > r.ring_s * (r.nodes as f64 / 2.2),
                "p={}: ring {:.3} vs a2a {:.3}",
                r.nodes,
                r.ring_s,
                r.all_to_all_s
            );
        }
    }

    #[test]
    fn packet_overhead_erodes_compression_gain() {
        let sweep = packet_overhead_sweep();
        // Gain decreases monotonically as headers grow.
        for w in sweep.windows(2) {
            assert!(
                w[0].time_gain >= w[1].time_gain * 0.98,
                "{} -> {}: {:.2} then {:.2}",
                w[0].header_bytes,
                w[1].header_bytes,
                w[0].time_gain,
                w[1].time_gain
            );
        }
        // With no headers the gain approaches the ratio; with real headers
        // it lands in the paper's 5.5-11.6x window.
        assert!(sweep[0].time_gain > 12.0);
        let realistic = sweep.iter().find(|p| p.header_bytes == 78).unwrap();
        assert!(
            (5.0..12.0).contains(&realistic.time_gain),
            "realistic gain {:.2}",
            realistic.time_gain
        );
    }

    #[test]
    fn zero_class_does_most_of_the_work_at_loose_bounds() {
        let rows = zero_class(Fidelity::Quick, 2);
        let loose = rows.iter().find(|r| r.bound_exp == 6).unwrap();
        assert!(loose.zero_fraction > 0.85);
        // But the 8/16-bit classes still matter: full ratio well above
        // drop-only.
        assert!(loose.full_ratio > loose.drop_only_ratio * 1.3);
    }
}
