//! Fig. 7: why *software* compression does not pay.
//!
//! The paper measures that routing gradients through Snappy (lossless)
//! or SZ (error-bounded lossy) in software makes total training time
//! *worse* — the CPU cycles spent compressing outweigh the network time
//! saved (Sec. III / Fig. 7), which is the case for pushing the codec
//! into the NIC. This driver measures our real software codecs'
//! throughput on this machine, then projects the per-iteration effect
//! on each model exactly as the paper frames it.

use std::time::Instant;

use inceptionn_compress::gradmodel::GradientModel;
use inceptionn_compress::szlike::SzCodec;
use inceptionn_compress::truncate::Truncation;
use inceptionn_compress::{lz, ErrorBound};
use inceptionn_dnn::profile::{ModelId, ModelProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cluster::{iteration_breakdown, ClusterConfig, SystemKind};
use inceptionn_netsim::collective::worker_aggregator_exchange;
use inceptionn_netsim::sim::NetworkConfig;
use inceptionn_netsim::transfer::CompressionSpec;

use super::Fidelity;

/// A software compression scheme of Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SoftScheme {
    /// No compression (the baseline).
    Base,
    /// Snappy-class lossless LZ.
    Lz,
    /// SZ-class error-bounded lossy (at `2^-10`).
    Sz,
    /// 16-LSB truncation with software bit packing.
    Trunc16,
    /// The paper's answer: the same lossy codec in the NIC datapath
    /// (measured via the fabric stack, not part of Fig. 7's four bars).
    NicHardware,
}

impl SoftScheme {
    /// The schemes in Fig. 7's order.
    pub const ALL: [SoftScheme; 4] = [
        SoftScheme::Base,
        SoftScheme::Lz,
        SoftScheme::Sz,
        SoftScheme::Trunc16,
    ];

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            SoftScheme::Base => "Base",
            SoftScheme::Lz => "Snappy-class LZ",
            SoftScheme::Sz => "SZ-class lossy",
            SoftScheme::Trunc16 => "16b-T (software)",
            SoftScheme::NicHardware => "INC in-NIC (hardware)",
        }
    }
}

/// Measured behaviour of one software codec on gradient data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CodecProfile {
    /// Which scheme.
    pub scheme: SoftScheme,
    /// Compression ratio achieved on the sampled gradient stream.
    pub ratio: f64,
    /// One-way software throughput, bytes/second (compress side;
    /// decompress assumed symmetric, which is conservative for LZ).
    pub throughput_bps: f64,
}

/// Measures ratio and throughput of every scheme on a synthetic
/// AlexNet-distribution gradient buffer.
pub fn profile_codecs(fidelity: Fidelity, seed: u64) -> Vec<CodecProfile> {
    let n_values = fidelity.scale(2_000_000, 50_000);
    let mut rng = StdRng::seed_from_u64(seed);
    let grads = GradientModel::preset(inceptionn_compress::gradmodel::GradientPreset::AlexNet)
        .sample(&mut rng, n_values);
    let bytes = (grads.len() * 4) as f64;
    let mut out = Vec::new();
    for scheme in SoftScheme::ALL {
        let (ratio, secs) = match scheme {
            SoftScheme::Base => (1.0, f64::INFINITY),
            SoftScheme::NicHardware => {
                unreachable!("hardware reference is measured by fig7_nic_reference, not profiled")
            }
            SoftScheme::Lz => {
                let raw: Vec<u8> = grads.iter().flat_map(|v| v.to_le_bytes()).collect();
                let t = Instant::now();
                let packed = lz::compress(&raw);
                (bytes / packed.len() as f64, t.elapsed().as_secs_f64())
            }
            SoftScheme::Sz => {
                let codec = SzCodec::new(ErrorBound::pow2(10));
                let t = Instant::now();
                let packed = codec.compress(&grads);
                (bytes / packed.len() as f64, t.elapsed().as_secs_f64())
            }
            SoftScheme::Trunc16 => {
                let trunc = Truncation::new(16);
                let t = Instant::now();
                let packed = trunc.compress(&grads);
                (bytes / packed.len() as f64, t.elapsed().as_secs_f64())
            }
        };
        let throughput = if secs.is_finite() && secs > 0.0 {
            bytes / secs
        } else {
            f64::INFINITY
        };
        out.push(CodecProfile {
            scheme,
            ratio,
            throughput_bps: throughput,
        });
    }
    out
}

/// One bar of Fig. 7: the projected training-time impact of a software
/// scheme on one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig7Row {
    /// Model name.
    pub model: String,
    /// Scheme applied.
    pub scheme: SoftScheme,
    /// Per-iteration total, seconds.
    pub iteration_s: f64,
    /// Normalized to the model's Base bar.
    pub normalized: f64,
}

/// CPU worker threads the software codec parallelizes over at the
/// aggregator (the paper's Xeon E5-2640 has 10 cores; stream-parallel
/// compression scales nearly linearly).
pub const CODEC_THREADS: f64 = 8.0;

/// Projects Fig. 7 for AlexNet and HDC using measured codec profiles.
///
/// The model follows the paper's WA setup: the gradient (up) leg is
/// software-compressed at the measured ratio, and the aggregator — the
/// compute bottleneck — must decompress `p` gradient streams and
/// compress `p` outgoing streams per iteration at the measured
/// single-thread throughput scaled by [`CODEC_THREADS`].
pub fn fig7(cfg: &ClusterConfig, codecs: &[CodecProfile]) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for id in [ModelId::AlexNet, ModelId::Hdc] {
        let profile = ModelProfile::of(id);
        let base = iteration_breakdown(&profile, SystemKind::Wa, cfg);
        for c in codecs {
            let total = if matches!(c.scheme, SoftScheme::Base) {
                base.total_s()
            } else {
                // Comm with the gradient leg shrunk by the software ratio
                // (packets still form in the host, so treat it as an ideal
                // payload reduction with no engine latency).
                let spec = CompressionSpec::new(c.ratio.max(1.0), 0);
                let net = NetworkConfig::ten_gbe(cfg.workers + 1);
                let exchange = worker_aggregator_exchange(
                    &net,
                    cfg.workers,
                    profile.weight_bytes,
                    profile.gamma_per_byte(),
                    Some(spec),
                );
                // Aggregator-side software codec cost: p streams in, p out,
                // parallelized over the Xeon's cores.
                let codec_s = 2.0 * cfg.workers as f64 * profile.weight_bytes as f64
                    / (c.throughput_bps * CODEC_THREADS);
                base.local_compute_s + exchange.reduce_s + exchange.comm_s + codec_s
            };
            rows.push(Fig7Row {
                model: profile.name().to_string(),
                scheme: c.scheme,
                iteration_s: total,
                normalized: total / base.total_s(),
            });
        }
    }
    rows
}

/// The counterpoint row Fig. 7 argues *for*: the same error-bounded
/// codec moved into the NIC. The compression ratio and per-packet engine
/// time are measured on the real modeled datapath (a [`NicFabric`]
/// transfer of the sampled stream), then projected onto the same WA
/// exchange as [`fig7`] — with **zero** host codec seconds, because the
/// engines sit in line with the MAC.
///
/// [`NicFabric`]: inceptionn_distrib::fabric::NicFabric
pub fn fig7_nic_reference(cfg: &ClusterConfig, fidelity: Fidelity, seed: u64) -> Vec<Fig7Row> {
    use inceptionn_distrib::fabric::{FabricBuilder, TransportKind};
    use inceptionn_nicsim::engine::NS_PER_CYCLE;

    let n_values = fidelity.scale(2_000_000, 50_000);
    let mut rng = StdRng::seed_from_u64(seed);
    let grads = GradientModel::preset(inceptionn_compress::gradmodel::GradientPreset::AlexNet)
        .sample(&mut rng, n_values);
    let mut fabric = FabricBuilder::new(2)
        .transport(TransportKind::Nic)
        .compression(Some(ErrorBound::pow2(10)))
        .build();
    fabric
        .transfer(0, 1, &grads)
        .expect("matched NIC endpoints always decode each other's frames");
    let stats = fabric.stats();
    // Compress + decompress engine time, averaged per MTU packet.
    let engine_ns_per_packet = stats.engine_cycles * NS_PER_CYCLE / stats.packets.max(1);
    let spec = CompressionSpec::new(stats.wire_ratio().max(1.0), engine_ns_per_packet);

    let mut rows = Vec::new();
    for id in [ModelId::AlexNet, ModelId::Hdc] {
        let profile = ModelProfile::of(id);
        let base = iteration_breakdown(&profile, SystemKind::Wa, cfg);
        let net = NetworkConfig::ten_gbe(cfg.workers + 1);
        let exchange = worker_aggregator_exchange(
            &net,
            cfg.workers,
            profile.weight_bytes,
            profile.gamma_per_byte(),
            Some(spec),
        );
        let total = base.local_compute_s + exchange.reduce_s + exchange.comm_s;
        rows.push(Fig7Row {
            model: profile.name().to_string(),
            scheme: SoftScheme::NicHardware,
            iteration_s: total,
            normalized: total / base.total_s(),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig {
            ratio_samples: 2000,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn lossless_ratio_is_poor_on_gradients() {
        let codecs = profile_codecs(Fidelity::Quick, 1);
        let lz = codecs.iter().find(|c| c.scheme == SoftScheme::Lz).unwrap();
        assert!(lz.ratio < 2.0, "LZ ratio {:.2}", lz.ratio);
        let sz = codecs.iter().find(|c| c.scheme == SoftScheme::Sz).unwrap();
        assert!(sz.ratio > lz.ratio, "SZ should beat LZ on ratio");
    }

    #[test]
    fn software_compression_hurts_total_time() {
        // Fig. 7's headline: every software scheme makes AlexNet training
        // slower than no compression at all.
        let codecs = profile_codecs(Fidelity::Quick, 2);
        let rows = fig7(&quick_cfg(), &codecs);
        let alex: Vec<&Fig7Row> = rows.iter().filter(|r| r.model == "AlexNet").collect();
        let base = alex.iter().find(|r| r.scheme == SoftScheme::Base).unwrap();
        assert!((base.normalized - 1.0).abs() < 1e-9);
        for r in &alex {
            if r.scheme != SoftScheme::Base {
                assert!(
                    r.normalized > 1.0,
                    "{:?} unexpectedly helped: {:.2}",
                    r.scheme,
                    r.normalized
                );
            }
        }
    }

    #[test]
    fn rows_cover_both_models_and_all_schemes() {
        let codecs = profile_codecs(Fidelity::Quick, 3);
        let rows = fig7(&quick_cfg(), &codecs);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|r| r.model == "HDC"));
    }

    #[test]
    fn in_nic_compression_beats_every_software_scheme_and_base() {
        // Fig. 7's conclusion, measured on the fabric stack: software
        // compression makes iterations slower, hardware makes them
        // faster.
        let cfg = quick_cfg();
        let hw = fig7_nic_reference(&cfg, Fidelity::Quick, 4);
        assert_eq!(hw.len(), 2);
        let codecs = profile_codecs(Fidelity::Quick, 4);
        let soft = fig7(&cfg, &codecs);
        for row in &hw {
            assert!(
                row.normalized < 1.0,
                "{}: in-NIC normalized {:.3}",
                row.model,
                row.normalized
            );
            for s in soft.iter().filter(|s| s.model == row.model) {
                assert!(
                    row.normalized < s.normalized + 1e-9,
                    "{}: hw {:.3} vs {:?} {:.3}",
                    row.model,
                    row.normalized,
                    s.scheme,
                    s.normalized
                );
            }
        }
    }
}
