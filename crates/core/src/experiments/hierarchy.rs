//! Extension: the Fig. 1 cluster organizations on an oversubscribed
//! two-tier fabric (Sec. VII-C's datacenter assumptions).
//!
//! The paper's testbed is one rack behind one switch; its Fig. 1 sketches
//! how INCEPTIONN scales beyond a rack — replace leaf worker groups
//! (Fig. 1(b)) or every level (Fig. 1(c)) with the gradient-centric
//! algorithm. This study quantifies those organizations on a modeled
//! rack+core fabric with configurable core oversubscription.

use inceptionn_compress::gradmodel::GradientPreset;
use inceptionn_netsim::collective::RING_HOST_S_PER_BYTE;
use inceptionn_netsim::twotier::{
    flat_ring, flat_wa, hierarchical_ring, hierarchical_wa, TwoTierConfig,
};
use serde::{Deserialize, Serialize};

use crate::cluster::compression_spec;
use crate::ErrorBound;

/// The four organizations of Fig. 1 (flat WA is Fig. 2's baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Organization {
    /// One global aggregator (Fig. 2).
    FlatWa,
    /// Per-rack aggregators under a root (Fig. 1(a)).
    HierarchicalWa,
    /// One ring across all nodes (Fig. 1(b), the paper's testbed).
    FlatRing,
    /// Rings in racks + a leader ring across racks (Fig. 1(c)).
    HierarchicalRing,
}

impl Organization {
    /// All four, in presentation order.
    pub const ALL: [Organization; 4] = [
        Organization::FlatWa,
        Organization::HierarchicalWa,
        Organization::FlatRing,
        Organization::HierarchicalRing,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Organization::FlatWa => "flat WA",
            Organization::HierarchicalWa => "hierarchical WA",
            Organization::FlatRing => "flat ring",
            Organization::HierarchicalRing => "hierarchical ring",
        }
    }
}

/// One measured point of the study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchyPoint {
    /// Organization measured.
    pub organization: Organization,
    /// Core oversubscription factor.
    pub oversubscription: u64,
    /// Whether NIC compression was on (eb = 2^-10, AlexNet stream).
    pub compressed: bool,
    /// Gradient-exchange time (comm + reduce), seconds.
    pub exchange_s: f64,
}

/// Runs the study: a 32-node fabric (4 racks × 8), AlexNet-sized
/// gradients, sweeping core oversubscription, with and without
/// compression.
pub fn run(ratio_samples: usize) -> Vec<HierarchyPoint> {
    let bytes = 233_000_000u64;
    let gamma = 1e-10f64;
    let spec = compression_spec(GradientPreset::AlexNet, ErrorBound::pow2(10), ratio_samples);
    let mut out = Vec::new();
    for oversub in [1u64, 4, 16, 80] {
        let cfg = TwoTierConfig::ten_gbe(4, 8, oversub);
        for compressed in [false, true] {
            let s = compressed.then_some(spec);
            for org in Organization::ALL {
                let times = match org {
                    Organization::FlatWa => flat_wa(&cfg, bytes, gamma, s),
                    Organization::HierarchicalWa => hierarchical_wa(&cfg, bytes, gamma, s),
                    Organization::FlatRing => {
                        flat_ring(&cfg, bytes, gamma, s, RING_HOST_S_PER_BYTE)
                    }
                    Organization::HierarchicalRing => {
                        hierarchical_ring(&cfg, bytes, gamma, s, RING_HOST_S_PER_BYTE)
                    }
                };
                out.push(HierarchyPoint {
                    organization: org,
                    oversubscription: oversub,
                    compressed,
                    exchange_s: times.total_s(),
                });
            }
        }
    }
    out
}

/// Fabric-measured wire volume of one organization (the gradient-level
/// cross-check of the analytic `exchange_s` numbers above).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireVolumeRow {
    /// Organization measured.
    pub organization: Organization,
    /// Whether NIC compression was on (eb = 2^-10).
    pub compressed: bool,
    /// Application gradient bytes entering the transport.
    pub payload_bytes: u64,
    /// Post-compression bytes on the wire.
    pub wire_bytes: u64,
}

/// Runs the three gradient-level organizations (flat WA, flat ring,
/// hierarchical ring — hierarchical WA has no gradient-level
/// implementation) over a [`NicFabric`] and reports the bytes each one
/// actually puts on the wire. `values_per_worker` gradients per worker,
/// 8 workers in 2 groups of 4.
///
/// [`NicFabric`]: inceptionn_distrib::fabric::NicFabric
pub fn measured_wire_volume(values_per_worker: usize, seed: u64) -> Vec<WireVolumeRow> {
    use inceptionn_distrib::fabric::{FabricBuilder, TransportKind};
    use inceptionn_distrib::{Exchange, ExchangeStrategy};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let n = 8usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let inputs: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            (0..values_per_worker)
                .map(|_| {
                    // Heavy-tailed like real gradients: most values sit
                    // near (or below) the error bound.
                    let u: f32 = rng.gen_range(-1.0f32..1.0);
                    u * u * u * 0.01
                })
                .collect()
        })
        .collect();
    let mut out = Vec::new();
    for compressed in [false, true] {
        let bound = compressed.then(|| ErrorBound::pow2(10));
        for org in [
            Organization::FlatWa,
            Organization::FlatRing,
            Organization::HierarchicalRing,
        ] {
            let mut grads = inputs.clone();
            let mut fabric = FabricBuilder::new(n + 1)
                .transport(TransportKind::Nic)
                .compression(bound)
                .build();
            let strategy = match org {
                Organization::FlatWa => ExchangeStrategy::WorkerAggregator,
                Organization::FlatRing => ExchangeStrategy::Ring,
                Organization::HierarchicalRing => {
                    ExchangeStrategy::HierarchicalRing { group_size: 4 }
                }
                Organization::HierarchicalWa => unreachable!(),
            };
            let endpoints: Vec<usize> = (0..n).collect();
            Exchange::new(n)
                .run(strategy, fabric.as_mut(), &mut grads, &endpoints)
                .expect("matched NIC endpoints always decode each other's frames");
            let stats = fabric.stats();
            out.push(WireVolumeRow {
                organization: org,
                compressed,
                payload_bytes: stats.payload_bytes,
                wire_bytes: stats.wire_bytes,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<HierarchyPoint> {
        run(2_000)
    }

    fn get(pts: &[HierarchyPoint], org: Organization, oversub: u64, compressed: bool) -> f64 {
        pts.iter()
            .find(|p| {
                p.organization == org && p.oversubscription == oversub && p.compressed == compressed
            })
            .unwrap()
            .exchange_s
    }

    #[test]
    fn rings_beat_aggregators_everywhere() {
        let pts = points();
        for oversub in [1u64, 4, 16, 80] {
            let flat_wa = get(&pts, Organization::FlatWa, oversub, false);
            let best_ring = get(&pts, Organization::FlatRing, oversub, false).min(get(
                &pts,
                Organization::HierarchicalRing,
                oversub,
                false,
            ));
            assert!(
                best_ring < flat_wa * 0.5,
                "oversub {oversub}: ring {best_ring:.2} vs flat WA {flat_wa:.2}"
            );
        }
    }

    #[test]
    fn hierarchy_pays_off_only_under_core_pressure() {
        let pts = points();
        // Non-blocking core: flat ring wins (the paper's testbed choice).
        assert!(
            get(&pts, Organization::FlatRing, 1, false)
                < get(&pts, Organization::HierarchicalRing, 1, false)
        );
        // Heavily oversubscribed core: the hierarchy's smaller cross-core
        // volume wins.
        assert!(
            get(&pts, Organization::HierarchicalRing, 80, false)
                < get(&pts, Organization::FlatRing, 80, false)
        );
        // Same flip for the worker-aggregator organizations.
        assert!(
            get(&pts, Organization::HierarchicalWa, 80, false)
                < get(&pts, Organization::FlatWa, 80, false)
        );
    }

    #[test]
    fn compression_helps_most_where_links_are_scarce() {
        let pts = points();
        let gain_at = |oversub| {
            get(&pts, Organization::HierarchicalRing, oversub, false)
                / get(&pts, Organization::HierarchicalRing, oversub, true)
        };
        assert!(gain_at(80) > 1.5, "gain at 80:1 {:.2}", gain_at(80));
        // Compression gain should not *shrink* as the core gets slower.
        assert!(gain_at(80) >= gain_at(1) * 0.8);
    }

    #[test]
    fn measured_wire_volume_matches_the_block_accounting() {
        let len = 4000usize;
        let rows = measured_wire_volume(len, 9);
        assert_eq!(rows.len(), 6);
        let get = |org: Organization, compressed: bool| {
            rows.iter()
                .find(|r| r.organization == org && r.compressed == compressed)
                .unwrap()
        };
        // Uncompressed payload totals are exact block arithmetic: the
        // flat ring moves 2(n−1) blocks of len/n per worker, WA moves a
        // full vector up and down per worker.
        let n = 8u64;
        let bytes = (len * 4) as u64;
        let ring = get(Organization::FlatRing, false);
        assert_eq!(ring.payload_bytes, 2 * (n - 1) * bytes);
        assert_eq!(ring.payload_bytes, ring.wire_bytes, "lossless ships raw");
        let wa = get(Organization::FlatWa, false);
        assert_eq!(wa.payload_bytes, 2 * n * bytes);
        // Compression shrinks both ring legs but only WA's gather leg,
        // so the compressed ring puts less on the wire than compressed
        // WA despite moving almost as much payload.
        let ring_c = get(Organization::FlatRing, true);
        let wa_c = get(Organization::FlatWa, true);
        assert!(ring_c.wire_bytes < ring.wire_bytes / 2);
        assert!(ring_c.wire_bytes < wa_c.wire_bytes);
        // The hierarchy trades extra local hops for less cross-group
        // traffic; globally it still moves more payload than one flat
        // ring at this scale.
        let hier = get(Organization::HierarchicalRing, false);
        assert!(hier.payload_bytes > ring.payload_bytes);
    }

    #[test]
    fn exchange_time_grows_with_oversubscription() {
        let pts = points();
        for org in Organization::ALL {
            let t1 = get(&pts, org, 1, false);
            let t80 = get(&pts, org, 80, false);
            assert!(t80 > t1, "{}: {t1:.3} -> {t80:.3}", org.label());
        }
    }
}
