//! Fig. 3, Table I, and Table II: model sizes, hyper-parameters, and
//! the worker-aggregator time breakdown.

use inceptionn_compress::ErrorBound;
use inceptionn_distrib::fabric::{CodecSelection, TransportKind};
use inceptionn_distrib::{DistributedTrainer, ExchangeStrategy, TrainerConfig};
use inceptionn_dnn::data::DigitDataset;
use inceptionn_dnn::models;
use inceptionn_dnn::profile::{ModelId, ModelProfile};
use serde::{Deserialize, Serialize};

use crate::cluster::{iteration_breakdown, ClusterConfig, SystemKind};

/// One row of the reproduced Table II (absolute seconds per 100
/// iterations on the 5-node WA cluster).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Model name.
    pub model: String,
    /// Forward pass (from the paper's measurements).
    pub forward: f64,
    /// Backward pass.
    pub backward: f64,
    /// GPU↔host copies.
    pub gpu_copy: f64,
    /// Gradient summation.
    pub grad_sum: f64,
    /// Communication — **simulated** by the packet-level model.
    pub communicate: f64,
    /// Weight update.
    pub update: f64,
    /// The paper's measured communication time, for comparison.
    pub paper_communicate: f64,
}

impl Table2Row {
    /// Total of the six phases.
    pub fn total(&self) -> f64 {
        self.forward
            + self.backward
            + self.gpu_copy
            + self.grad_sum
            + self.communicate
            + self.update
    }

    /// Fraction of time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        self.communicate / self.total()
    }
}

/// Reproduces Table II: per-phase times for 100 training iterations.
pub fn table2(cfg: &ClusterConfig) -> Vec<Table2Row> {
    ModelId::EVALUATED
        .iter()
        .map(|&id| {
            let p = ModelProfile::of(id);
            let sim = iteration_breakdown(&p, SystemKind::Wa, cfg);
            Table2Row {
                model: p.name().to_string(),
                forward: 100.0 * p.t_forward,
                backward: 100.0 * p.t_backward,
                gpu_copy: 100.0 * p.t_gpu_copy,
                grad_sum: 100.0 * sim.reduce_s,
                communicate: 100.0 * sim.comm_s,
                update: 100.0 * p.t_update,
                paper_communicate: 100.0 * p.paper_t_communicate,
            }
        })
        .collect()
}

/// One bar pair of Fig. 3: model size and communication share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Model name.
    pub model: String,
    /// Exchanged weight/gradient size, MB.
    pub size_mb: f64,
    /// Fraction of WA training time spent communicating.
    pub comm_fraction: f64,
}

/// Reproduces Fig. 3 for the three models it plots.
pub fn fig3(cfg: &ClusterConfig) -> Vec<Fig3Row> {
    ModelId::FIG3
        .iter()
        .map(|&id| {
            let p = ModelProfile::of(id);
            let sim = iteration_breakdown(&p, SystemKind::Wa, cfg);
            Fig3Row {
                model: p.name().to_string(),
                size_mb: p.weight_bytes as f64 / 1e6,
                comm_fraction: sim.comm_fraction(),
            }
        })
        .collect()
}

/// Per-iteration transport measurements of one system on the trainable
/// HDC proxy — Table II's communication column cross-checked against the
/// real fabric stack instead of the closed-form collective model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricCommRow {
    /// System label (Fig. 12 vocabulary: WA, WA+C, INC, INC+C).
    pub system: String,
    /// Application gradient bytes entering the transport per iteration.
    pub payload_bytes_per_iter: f64,
    /// Post-compression bytes on the wire per iteration.
    pub wire_bytes_per_iter: f64,
    /// Link latency charged per iteration, seconds.
    pub link_s_per_iter: f64,
    /// NIC engine cycles spent per iteration.
    pub engine_cycles_per_iter: f64,
}

impl FabricCommRow {
    /// Achieved wire compression ratio.
    pub fn wire_ratio(&self) -> f64 {
        self.payload_bytes_per_iter / self.wire_bytes_per_iter.max(1.0)
    }
}

/// Measures the four Fig. 12 systems on the real stack: the HDC proxy
/// trains for `iters` iterations over the full co-design transport
/// ([`TransportKind::TimedNic`] — every gradient block traverses the
/// modeled NIC engines and is charged 10 GbE link latency), and the
/// per-iteration transport totals are read off the fabric counters.
pub fn hdc_fabric_comm(workers: usize, iters: usize, seed: u64) -> Vec<FabricCommRow> {
    hdc_fabric_comm_with(workers, iters, seed, &obs::Recorder::off())
}

/// [`hdc_fabric_comm`] with observability: every system's run records
/// its iteration spans, fabric counters, NIC engine spans, and link
/// occupancy into `recorder` (the four systems share one wall-clock
/// epoch, so they appear back to back in the exported trace).
pub fn hdc_fabric_comm_with(
    workers: usize,
    iters: usize,
    seed: u64,
    recorder: &obs::Recorder,
) -> Vec<FabricCommRow> {
    let data = DigitDataset::generate(workers * 40, seed);
    SystemKind::ALL
        .iter()
        .map(|&system| {
            let cfg = TrainerConfig {
                workers,
                strategy: if system.is_ring() {
                    ExchangeStrategy::Ring
                } else {
                    ExchangeStrategy::WorkerAggregator
                },
                transport: TransportKind::TimedNic,
                codec: CodecSelection::from_bound(
                    system.is_compressed().then(|| ErrorBound::pow2(10)),
                ),
                batch_per_worker: 8,
                seed,
                recorder: recorder.clone(),
                ..TrainerConfig::default()
            };
            let mut trainer = DistributedTrainer::new(cfg, models::hdc_mlp_small, &data);
            trainer.train_iterations(iters);
            trainer.flush_trace();
            let stats = trainer.fabric_stats();
            let per_iter = |v: u64| v as f64 / iters as f64;
            FabricCommRow {
                system: system.label().to_string(),
                payload_bytes_per_iter: per_iter(stats.payload_bytes),
                wire_bytes_per_iter: per_iter(stats.wire_bytes),
                link_s_per_iter: per_iter(stats.link_latency_ns) * 1e-9,
                engine_cycles_per_iter: per_iter(stats.engine_cycles),
            }
        })
        .collect()
}

/// One column of Table I (training hyper-parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Column {
    /// Model name.
    pub model: String,
    /// Per-node minibatch size.
    pub batch_per_node: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// LR division factor of the step schedule.
    pub lr_reduction: f32,
    /// Schedule period (iterations).
    pub lr_reduction_iters: u64,
    /// Momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Total training iterations.
    pub train_iterations: u64,
}

/// Reproduces Table I.
pub fn table1() -> Vec<Table1Column> {
    ModelId::EVALUATED
        .iter()
        .map(|&id| {
            let p = ModelProfile::of(id);
            Table1Column {
                model: p.name().to_string(),
                batch_per_node: p.batch_per_node,
                learning_rate: p.sgd.learning_rate,
                lr_reduction: p.sgd.lr_reduction,
                lr_reduction_iters: p.sgd.lr_reduction_iters,
                momentum: p.sgd.momentum,
                weight_decay: p.sgd.weight_decay,
                train_iterations: p.train_iterations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ClusterConfig {
        ClusterConfig {
            ratio_samples: 2000,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn table2_reproduces_comm_dominance() {
        let rows = table2(&quick());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            // VGG-16's simulated share is ~60% (the paper's own testbed ran
            // VGG communication anomalously slow; see EXPERIMENTS.md).
            assert!(
                row.comm_fraction() > 0.55,
                "{}: comm {:.2}",
                row.model,
                row.comm_fraction()
            );
        }
    }

    #[test]
    fn table2_simulated_comm_tracks_paper_for_most_models() {
        // The paper's own VGG-16 measurement runs ~70% above raw-bandwidth
        // expectations (see EXPERIMENTS.md); everything else should land
        // within 25%.
        let rows = table2(&quick());
        let mut close = 0;
        for row in &rows {
            let rel = (row.communicate - row.paper_communicate).abs() / row.paper_communicate;
            if rel < 0.25 {
                close += 1;
            }
        }
        assert!(close >= 3, "only {close} models near the paper's comm time");
    }

    #[test]
    fn fig3_sizes_match_the_paper() {
        let rows = fig3(&quick());
        let sizes: Vec<(String, f64)> = rows.iter().map(|r| (r.model.clone(), r.size_mb)).collect();
        assert_eq!(sizes[0], ("AlexNet".to_string(), 233.0));
        assert_eq!(sizes[2], ("VGG-16".to_string(), 525.0));
        for r in &rows {
            assert!(r.comm_fraction > 0.5 && r.comm_fraction < 0.95);
        }
    }

    #[test]
    fn fabric_comm_reproduces_the_fig12_ordering() {
        let rows = hdc_fabric_comm(4, 2, 17);
        assert_eq!(rows.len(), 4);
        let get = |label: &str| rows.iter().find(|r| r.system == label).unwrap();
        let (wa, wac, inc, incc) = (get("WA"), get("WA+C"), get("INC"), get("INC+C"));
        // Uncompressed systems ship raw bytes; compressed ones spend
        // engine cycles and shrink the wire.
        assert_eq!(wa.engine_cycles_per_iter, 0.0);
        assert_eq!(wa.payload_bytes_per_iter, wa.wire_bytes_per_iter);
        assert!(incc.engine_cycles_per_iter > 0.0);
        assert!(
            incc.wire_ratio() > 1.5,
            "INC+C ratio {:.2}",
            incc.wire_ratio()
        );
        // WA+C compresses only the gather leg; INC+C compresses both, so
        // its achieved ratio is strictly better.
        assert!(
            incc.wire_ratio() > wac.wire_ratio() * 1.2,
            "INC+C {:.2} vs WA+C {:.2}",
            incc.wire_ratio(),
            wac.wire_ratio()
        );
        // Compression cuts the link time charged for the same exchange.
        assert!(incc.link_s_per_iter < inc.link_s_per_iter);
        assert!(wac.link_s_per_iter < wa.link_s_per_iter);
        assert!(inc.link_s_per_iter > 0.0);
    }

    #[test]
    fn traced_fabric_comm_totals_match_the_counters() {
        let recorder = obs::Recorder::on();
        let rows = hdc_fabric_comm_with(2, 1, 18, &recorder);
        let summary = recorder.finish().summary();
        // One iteration per system, so the per-iteration columns are the
        // run totals; the trace must account for every wire byte.
        let want_wire: f64 = rows.iter().map(|r| r.wire_bytes_per_iter).sum();
        assert_eq!(summary.total_wire_bytes() as f64, want_wire);
        assert!(summary.total_engine_cycles() > 0);
        assert!(summary.comm_fraction() > 0.0);
        // Four systems × one iteration each, sharing iteration keys.
        assert_eq!(summary.exchange_ns_by_label.len(), 2, "ring + aggregator");
    }

    #[test]
    fn table1_matches_paper_hyperparameters() {
        let cols = table1();
        let alex = &cols[0];
        assert_eq!(alex.batch_per_node, 64);
        assert_eq!(alex.train_iterations, 320_000);
        let hdc = &cols[1];
        assert_eq!(hdc.batch_per_node, 25);
        assert!((hdc.learning_rate - 0.1).abs() < 1e-6);
        assert_eq!(hdc.lr_reduction_iters, 2_000);
    }
}
