//! Fig. 3, Table I, and Table II: model sizes, hyper-parameters, and
//! the worker-aggregator time breakdown.

use inceptionn_dnn::profile::{ModelId, ModelProfile};
use serde::{Deserialize, Serialize};

use crate::cluster::{iteration_breakdown, ClusterConfig, SystemKind};

/// One row of the reproduced Table II (absolute seconds per 100
/// iterations on the 5-node WA cluster).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Model name.
    pub model: String,
    /// Forward pass (from the paper's measurements).
    pub forward: f64,
    /// Backward pass.
    pub backward: f64,
    /// GPU↔host copies.
    pub gpu_copy: f64,
    /// Gradient summation.
    pub grad_sum: f64,
    /// Communication — **simulated** by the packet-level model.
    pub communicate: f64,
    /// Weight update.
    pub update: f64,
    /// The paper's measured communication time, for comparison.
    pub paper_communicate: f64,
}

impl Table2Row {
    /// Total of the six phases.
    pub fn total(&self) -> f64 {
        self.forward + self.backward + self.gpu_copy + self.grad_sum + self.communicate + self.update
    }

    /// Fraction of time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        self.communicate / self.total()
    }
}

/// Reproduces Table II: per-phase times for 100 training iterations.
pub fn table2(cfg: &ClusterConfig) -> Vec<Table2Row> {
    ModelId::EVALUATED
        .iter()
        .map(|&id| {
            let p = ModelProfile::of(id);
            let sim = iteration_breakdown(&p, SystemKind::Wa, cfg);
            Table2Row {
                model: p.name().to_string(),
                forward: 100.0 * p.t_forward,
                backward: 100.0 * p.t_backward,
                gpu_copy: 100.0 * p.t_gpu_copy,
                grad_sum: 100.0 * sim.reduce_s,
                communicate: 100.0 * sim.comm_s,
                update: 100.0 * p.t_update,
                paper_communicate: 100.0 * p.paper_t_communicate,
            }
        })
        .collect()
}

/// One bar pair of Fig. 3: model size and communication share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig3Row {
    /// Model name.
    pub model: String,
    /// Exchanged weight/gradient size, MB.
    pub size_mb: f64,
    /// Fraction of WA training time spent communicating.
    pub comm_fraction: f64,
}

/// Reproduces Fig. 3 for the three models it plots.
pub fn fig3(cfg: &ClusterConfig) -> Vec<Fig3Row> {
    ModelId::FIG3
        .iter()
        .map(|&id| {
            let p = ModelProfile::of(id);
            let sim = iteration_breakdown(&p, SystemKind::Wa, cfg);
            Fig3Row {
                model: p.name().to_string(),
                size_mb: p.weight_bytes as f64 / 1e6,
                comm_fraction: sim.comm_fraction(),
            }
        })
        .collect()
}

/// One column of Table I (training hyper-parameters).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Column {
    /// Model name.
    pub model: String,
    /// Per-node minibatch size.
    pub batch_per_node: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// LR division factor of the step schedule.
    pub lr_reduction: f32,
    /// Schedule period (iterations).
    pub lr_reduction_iters: u64,
    /// Momentum.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    /// Total training iterations.
    pub train_iterations: u64,
}

/// Reproduces Table I.
pub fn table1() -> Vec<Table1Column> {
    ModelId::EVALUATED
        .iter()
        .map(|&id| {
            let p = ModelProfile::of(id);
            Table1Column {
                model: p.name().to_string(),
                batch_per_node: p.batch_per_node,
                learning_rate: p.sgd.learning_rate,
                lr_reduction: p.sgd.lr_reduction,
                lr_reduction_iters: p.sgd.lr_reduction_iters,
                momentum: p.sgd.momentum,
                weight_decay: p.sgd.weight_decay,
                train_iterations: p.train_iterations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ClusterConfig {
        ClusterConfig {
            ratio_samples: 2000,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn table2_reproduces_comm_dominance() {
        let rows = table2(&quick());
        assert_eq!(rows.len(), 4);
        for row in &rows {
            // VGG-16's simulated share is ~60% (the paper's own testbed ran
            // VGG communication anomalously slow; see EXPERIMENTS.md).
            assert!(
                row.comm_fraction() > 0.55,
                "{}: comm {:.2}",
                row.model,
                row.comm_fraction()
            );
        }
    }

    #[test]
    fn table2_simulated_comm_tracks_paper_for_most_models() {
        // The paper's own VGG-16 measurement runs ~70% above raw-bandwidth
        // expectations (see EXPERIMENTS.md); everything else should land
        // within 25%.
        let rows = table2(&quick());
        let mut close = 0;
        for row in &rows {
            let rel = (row.communicate - row.paper_communicate).abs() / row.paper_communicate;
            if rel < 0.25 {
                close += 1;
            }
        }
        assert!(close >= 3, "only {close} models near the paper's comm time");
    }

    #[test]
    fn fig3_sizes_match_the_paper() {
        let rows = fig3(&quick());
        let sizes: Vec<(String, f64)> =
            rows.iter().map(|r| (r.model.clone(), r.size_mb)).collect();
        assert_eq!(sizes[0], ("AlexNet".to_string(), 233.0));
        assert_eq!(sizes[2], ("VGG-16".to_string(), 525.0));
        for r in &rows {
            assert!(r.comm_fraction > 0.5 && r.comm_fraction < 0.95);
        }
    }

    #[test]
    fn table1_matches_paper_hyperparameters() {
        let cols = table1();
        let alex = &cols[0];
        assert_eq!(alex.batch_per_node, 64);
        assert_eq!(alex.train_iterations, 320_000);
        let hdc = &cols[1];
        assert_eq!(hdc.batch_per_node, 25);
        assert!((hdc.learning_rate - 0.1).abs() < 1e-6);
        assert_eq!(hdc.lr_reduction_iters, 2_000);
    }
}
