//! Fig. 5: the distribution of gradient values at early, middle, and
//! final training stages.
//!
//! The paper plots AlexNet's gradients at iterations 100 / 100k / 300k:
//! all values inside `(-1, 1)`, sharply peaked at zero, at every stage.
//! This driver trains the HDC network for real and snapshots its
//! gradient vector at three stages; the bench binary renders the
//! histograms and overlays the calibrated synthetic models.

use inceptionn_dnn::data::DigitDataset;
use inceptionn_dnn::models;
use inceptionn_dnn::optim::{Sgd, SgdConfig};
use serde::{Deserialize, Serialize};

use super::Fidelity;

/// A normalized histogram over `(-range, +range)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Half-width of the domain.
    pub range: f32,
    /// Per-bin frequency (sums to ≤ 1; out-of-range mass excluded).
    pub bins: Vec<f64>,
    /// Fraction of values inside `(-range, +range)`.
    pub in_range_fraction: f64,
    /// Fraction of values with |v| below `range / 100` (the "peak").
    pub near_zero_fraction: f64,
}

impl Histogram {
    /// Builds a histogram of `values` with `bins` buckets over
    /// `(-range, +range)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `range <= 0`.
    pub fn build(values: &[f32], bins: usize, range: f32) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(range > 0.0, "range must be positive");
        let mut counts = vec![0u64; bins];
        let mut inside = 0u64;
        let mut near_zero = 0u64;
        for &v in values {
            if v.abs() < range {
                inside += 1;
                let pos = ((v + range) / (2.0 * range) * bins as f32) as usize;
                counts[pos.min(bins - 1)] += 1;
            }
            if v.abs() < range / 100.0 {
                near_zero += 1;
            }
        }
        let n = values.len().max(1) as f64;
        Histogram {
            range,
            bins: counts.iter().map(|&c| c as f64 / n).collect(),
            in_range_fraction: inside as f64 / n,
            near_zero_fraction: near_zero as f64 / n,
        }
    }
}

/// One training-stage snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Label ("early" / "middle" / "final").
    pub stage: String,
    /// Iteration the snapshot was taken at.
    pub iteration: usize,
    /// The gradient histogram.
    pub histogram: Histogram,
}

/// Reproduces Fig. 5 on the real HDC network: gradient histograms at
/// three stages of training.
pub fn run(fidelity: Fidelity, seed: u64) -> Vec<StageSnapshot> {
    let total_iters = fidelity.scale(1500, 120);
    let stages = [
        ("early", total_iters / 30),
        ("middle", total_iters / 2),
        ("final", total_iters - 1),
    ];
    let mut net = match fidelity {
        Fidelity::Quick => models::hdc_mlp_small(seed),
        Fidelity::Full => models::hdc_mlp(seed),
    };
    let data = DigitDataset::generate(fidelity.scale(4000, 400), seed.wrapping_add(1));
    let mut sgd = Sgd::new(
        SgdConfig {
            learning_rate: 0.05,
            ..SgdConfig::default()
        },
        net.param_count(),
    );
    let batch = 25usize; // Table I's HDC batch size
    let mut out = Vec::new();
    for it in 0..total_iters {
        let (x, y) = data.minibatch(it * batch, batch);
        net.forward_backward(&x, &y);
        let mut grads = net.flat_grads();
        if let Some((stage, _)) = stages.iter().find(|&&(_, at)| at == it) {
            out.push(StageSnapshot {
                stage: stage.to_string(),
                iteration: it,
                histogram: Histogram::build(&grads, 41, 1.0),
            });
        }
        let mut params = net.flat_params();
        sgd.step(&mut params, &mut grads);
        net.set_flat_params(&params);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mechanics() {
        let h = Histogram::build(&[-0.5, 0.0, 0.5, 2.0], 4, 1.0);
        assert!((h.in_range_fraction - 0.75).abs() < 1e-9);
        let total: f64 = h.bins.iter().sum();
        assert!((total - 0.75).abs() < 1e-9);
        // -0.5 lands in bin 1, 0.0 in bin 2, 0.5 in bin 3.
        assert!(h.bins[1] > 0.0 && h.bins[2] > 0.0 && h.bins[3] > 0.0);
        assert_eq!(h.bins[0], 0.0);
    }

    #[test]
    fn real_gradients_match_paper_shape_at_all_stages() {
        let snaps = run(Fidelity::Quick, 3);
        assert_eq!(snaps.len(), 3);
        for s in &snaps {
            // Fig. 5: essentially all mass inside (-1, 1)…
            assert!(
                s.histogram.in_range_fraction > 0.99,
                "{}: {:.3} in range",
                s.stage,
                s.histogram.in_range_fraction
            );
            // …peaked tightly at zero.
            assert!(
                s.histogram.near_zero_fraction > 0.5,
                "{}: near-zero {:.3}",
                s.stage,
                s.histogram.near_zero_fraction
            );
            // The central bin dominates any edge bin.
            let center = s.histogram.bins[20];
            assert!(center > 10.0 * s.histogram.bins[1].max(1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::build(&[0.0], 0, 1.0);
    }
}
