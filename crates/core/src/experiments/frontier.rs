//! Extension: the accuracy-vs-wire-ratio frontier across compression
//! families.
//!
//! Fig. 4 and Fig. 9 of the paper trade gradient fidelity against the
//! bytes a worker puts on the wire for one codec family (lossy
//! truncation). With the fabric now carrying three families —
//! INCEPTIONN's burst truncation, threshold/top-k sparsification with
//! error feedback, and the homomorphic count-sketch — the interesting
//! question is the *frontier*: which family buys the most wire
//! reduction per point of accuracy on each proxy model.
//!
//! Each cell trains a proxy through the codec's real gradient round
//! trip (the same bytes the fabric would put on the wire, measured from
//! actual encodes of the training gradients, not a model) and reports
//! the end-task accuracy next to the measured payload/wire ratio.

use std::cell::Cell;

use inceptionn_compress::{
    sparse, BurstCodec, ErrorBound, ResidualState, SketchCodec, SparseCodec, SparseConfig,
};
use serde::{Deserialize, Serialize};

use super::truncation::{train_with_corruption, ProxyModel};
use super::Fidelity;

/// The wire seed every frontier encoder shares (the fabric's own
/// constant lives in `inceptionn-distrib`; the value is re-declared
/// here to keep the experiment layer off the transport dependency).
const FRONTIER_SEED: u64 = 0x1CEE_D5EE_D0DE_C0DE;

/// One (codec, proxy model) cell of the frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Codec family plus its knob setting.
    pub codec: String,
    /// Proxy model name.
    pub model: String,
    /// Measured payload/wire ratio over the whole run (1.0 = dense).
    pub wire_ratio: f64,
    /// Final test accuracy after training through the codec.
    pub accuracy: f32,
}

/// The codec families the frontier sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Lossless baseline: gradients untouched, dense wire.
    Lossless,
    /// INCEPTIONN burst truncation at `2^-e`.
    Inceptionn { exponent: u8 },
    /// Threshold-EF sparsification (`2^-e` threshold, per-mille cap).
    Sparse { exponent: u8, top_per_mille: u16 },
    /// Homomorphic count-sketch at `frac_bits` grid precision.
    Sketch { frac_bits: u8 },
}

impl Family {
    fn label(self) -> String {
        match self {
            Family::Lossless => "lossless".to_string(),
            Family::Inceptionn { exponent } => format!("inceptionn 2^-{exponent}"),
            Family::Sparse {
                exponent,
                top_per_mille,
            } => format!("sparse 2^-{exponent} top{}‰", top_per_mille),
            Family::Sketch { frac_bits } => format!("sketch fb={frac_bits}"),
        }
    }
}

/// The swept grid: the paper's middle truncation bound, two sparse
/// operating points (threshold-dominant and cap-dominant), and the
/// sketch at the coarsest grid the proxies tolerate. The sketch's wire
/// only shrinks below dense when the *grid-quantized* gradient is
/// sparse (its `SKETCH` mode keys off support size), which on these
/// proxies happens around `frac_bits = 6`; finer grids fall back to the
/// exact-recovery RAW path at ~1.0x.
const FAMILIES: &[Family] = &[
    Family::Lossless,
    Family::Inceptionn { exponent: 8 },
    Family::Sparse {
        exponent: 6,
        top_per_mille: 200,
    },
    Family::Sparse {
        exponent: 5,
        top_per_mille: 100,
    },
    Family::Sketch { frac_bits: 6 },
];

/// Trains one cell: the corruption closure runs the codec's real
/// encode/decode round trip per iteration and tallies payload and wire
/// bytes into the caller's cells.
fn run_cell(
    family: Family,
    model: ProxyModel,
    fidelity: Fidelity,
    seed: u64,
    payload: &Cell<u64>,
    wire: &Cell<u64>,
) -> f32 {
    match family {
        Family::Lossless => train_with_corruption(
            model,
            fidelity,
            seed,
            |g| {
                payload.set(payload.get() + (g.len() * 4) as u64);
                wire.set(wire.get() + (g.len() * 4) as u64);
            },
            |_| {},
        ),
        Family::Inceptionn { exponent } => {
            let codec = BurstCodec::new(ErrorBound::pow2(exponent));
            let mut buf = Vec::new();
            train_with_corruption(
                model,
                fidelity,
                seed,
                move |g| {
                    buf.clear();
                    codec.compress_append(g, &mut buf);
                    payload.set(payload.get() + (g.len() * 4) as u64);
                    wire.set(wire.get() + buf.len() as u64);
                    codec.quantize_inplace(g);
                },
                |_| {},
            )
        }
        Family::Sparse {
            exponent,
            top_per_mille,
        } => {
            let codec = SparseCodec::new(SparseConfig {
                bound: ErrorBound::pow2(exponent),
                top_per_mille,
                seed: FRONTIER_SEED,
            });
            let mut state = ResidualState::new();
            let mut buf = Vec::new();
            train_with_corruption(
                model,
                fidelity,
                seed,
                move |g| {
                    // One call = one iteration = one encode leg; the
                    // residual banks what the wire drops, exactly as the
                    // fabric's per-endpoint state does.
                    state.begin_iteration();
                    buf.clear();
                    codec.encode_append(0, &mut state, g, &mut buf);
                    payload.set(payload.get() + (g.len() * 4) as u64);
                    wire.set(wire.get() + buf.len() as u64);
                    sparse::decode_frame(&buf, g)
                        .expect("the frame this call just encoded decodes");
                },
                |_| {},
            )
        }
        Family::Sketch { frac_bits } => {
            let codec = SketchCodec::new(frac_bits, FRONTIER_SEED);
            let mut buf = Vec::new();
            train_with_corruption(
                model,
                fidelity,
                seed,
                move |g| {
                    buf.clear();
                    codec.encode_append(g, &mut buf);
                    payload.set(payload.get() + (g.len() * 4) as u64);
                    wire.set(wire.get() + buf.len() as u64);
                    // Exact on the quantization grid by construction.
                    inceptionn_compress::sketch::decode_frame(&buf, g)
                        .expect("the frame this call just encoded decodes");
                },
                |_| {},
            )
        }
    }
}

/// Runs the full frontier: every codec family × both proxy models.
pub fn run(fidelity: Fidelity, seed: u64) -> Vec<FrontierPoint> {
    let mut points = Vec::new();
    for &model in &[ProxyModel::Hdc, ProxyModel::MiniCnn] {
        for &family in FAMILIES {
            let payload = Cell::new(0u64);
            let wire = Cell::new(0u64);
            let accuracy = run_cell(family, model, fidelity, seed, &payload, &wire);
            points.push(FrontierPoint {
                codec: family.label(),
                model: model.name().to_string(),
                wire_ratio: payload.get() as f64 / wire.get().max(1) as f64,
                accuracy,
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_covers_three_lossy_families_on_both_proxies() {
        let pts = run(Fidelity::Quick, 41);
        assert_eq!(pts.len(), 2 * FAMILIES.len());
        for model in ["HDC", "MiniCNN (AlexNet proxy)"] {
            let of_model: Vec<_> = pts.iter().filter(|p| p.model == model).collect();
            let lossless = of_model
                .iter()
                .find(|p| p.codec == "lossless")
                .expect("baseline present");
            assert!(
                (lossless.wire_ratio - 1.0).abs() < 1e-9,
                "lossless must measure a dense wire"
            );
            // Every lossy family must actually shrink the wire…
            let lossy: Vec<_> = of_model.iter().filter(|p| p.codec != "lossless").collect();
            assert!(lossy.len() >= 3, "three lossy families per proxy");
            for p in &lossy {
                assert!(
                    p.wire_ratio > 1.2,
                    "{} on {}: ratio {:.2} did not shrink the wire",
                    p.codec,
                    p.model,
                    p.wire_ratio
                );
            }
            // …and the HDC proxy must stay clearly learnable through
            // each of them (MiniCNN quick runs are too short to bound
            // tightly; the full-fidelity table records those numbers).
            if model == "HDC" {
                for p in &lossy {
                    assert!(
                        p.accuracy > 0.5,
                        "{} collapsed HDC accuracy to {:.2}",
                        p.codec,
                        p.accuracy
                    );
                }
            }
        }
    }
}
