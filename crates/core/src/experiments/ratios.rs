//! Fig. 14 and Table III: compression ratios, bitwidth distributions,
//! and accuracy under each lossy scheme.

use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
use inceptionn_compress::truncate::Truncation;
use inceptionn_compress::{BitwidthHistogram, ErrorBound, InceptionnCodec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use super::truncation::{train_with_corruption, ProxyModel};
use super::Fidelity;

/// A lossy gradient-compression scheme compared in Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scheme {
    /// No compression.
    Base,
    /// Truncate `n` LSBs.
    Truncate(u8),
    /// The INCEPTIONN codec at an error bound `2^-e`.
    Inceptionn(u8),
}

impl Scheme {
    /// Fig. 14's seven bars, in order.
    pub const ALL: [Scheme; 7] = [
        Scheme::Base,
        Scheme::Truncate(16),
        Scheme::Truncate(22),
        Scheme::Truncate(24),
        Scheme::Inceptionn(10),
        Scheme::Inceptionn(8),
        Scheme::Inceptionn(6),
    ];

    /// Paper-style label.
    pub fn label(self) -> String {
        match self {
            Scheme::Base => "Base".to_string(),
            Scheme::Truncate(b) => format!("{b}b-T"),
            Scheme::Inceptionn(e) => format!("INC(2^-{e})"),
        }
    }
}

/// One (model, scheme) measurement of Fig. 14(a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioRow {
    /// Model name.
    pub model: String,
    /// Scheme measured.
    pub scheme: Scheme,
    /// Average compression ratio on the model's gradient stream.
    pub ratio: f64,
}

/// Reproduces Fig. 14(a): average compression ratio of every scheme on
/// every model's (synthetic, calibrated) gradient stream.
pub fn fig14_ratios(fidelity: Fidelity, seed: u64) -> Vec<RatioRow> {
    let samples = fidelity.scale(400_000, 20_000);
    let mut rows = Vec::new();
    for preset in GradientPreset::ALL {
        let mut rng = StdRng::seed_from_u64(seed ^ preset as u64);
        let grads = GradientModel::preset(preset).sample(&mut rng, samples);
        for scheme in Scheme::ALL {
            let ratio = match scheme {
                Scheme::Base => 1.0,
                Scheme::Truncate(b) => Truncation::new(b).compression_ratio(),
                Scheme::Inceptionn(e) => InceptionnCodec::new(ErrorBound::pow2(e))
                    .compress(&grads)
                    .compression_ratio(),
            };
            rows.push(RatioRow {
                model: preset.name().to_string(),
                scheme,
                ratio,
            });
        }
    }
    rows
}

/// One (model, scheme) accuracy measurement of Fig. 14(b), run on a
/// really-trained proxy network (see `DESIGN.md` on model substitution).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Proxy network name.
    pub model: String,
    /// Scheme applied to every exchanged gradient.
    pub scheme: Scheme,
    /// Final test accuracy.
    pub accuracy: f32,
    /// Accuracy relative to the Base run.
    pub relative: f32,
}

/// Reproduces Fig. 14(b) on a trainable proxy: final accuracy when
/// every iteration's gradient passes through the scheme (same number of
/// epochs for all schemes, like the paper).
pub fn fig14_accuracy(model: ProxyModel, fidelity: Fidelity, seed: u64) -> Vec<AccuracyRow> {
    let mut rows: Vec<AccuracyRow> = Vec::new();
    let mut base_acc = 1.0f32;
    for scheme in Scheme::ALL {
        let accuracy = match scheme {
            Scheme::Base => train_with_corruption(model, fidelity, seed, |_| {}, |_| {}),
            Scheme::Truncate(b) => {
                let t = Truncation::new(b);
                train_with_corruption(model, fidelity, seed, move |g| t.apply_inplace(g), |_| {})
            }
            Scheme::Inceptionn(e) => {
                let codec = InceptionnCodec::new(ErrorBound::pow2(e));
                train_with_corruption(
                    model,
                    fidelity,
                    seed,
                    move |g| codec.quantize_inplace(g),
                    |_| {},
                )
            }
        };
        if matches!(scheme, Scheme::Base) {
            base_acc = accuracy.max(1e-6);
        }
        rows.push(AccuracyRow {
            model: model.name().to_string(),
            scheme,
            accuracy,
            relative: accuracy / base_acc,
        });
    }
    rows
}

/// Reproduces Fig. 14(a) *on the wire*: instead of asking the software
/// codec for its output size, every stream is pushed through the
/// modeled NIC datapath ([`NicFabric`]) and the ratio is read off the
/// transport counters — payload bytes in over post-compression packet
/// payload bytes out. Slightly below [`fig14_ratios`] because each MTU
/// packet is compressed independently (per-packet byte alignment), which
/// is exactly what the hardware ships.
pub fn fig14_wire_ratios(fidelity: Fidelity, seed: u64) -> Vec<RatioRow> {
    use inceptionn_distrib::fabric::{FabricBuilder, TransportKind};
    let samples = fidelity.scale(400_000, 20_000);
    let mut rows = Vec::new();
    for preset in GradientPreset::ALL {
        let mut rng = StdRng::seed_from_u64(seed ^ preset as u64);
        let grads = GradientModel::preset(preset).sample(&mut rng, samples);
        for e in [10u8, 8, 6] {
            let mut fabric = FabricBuilder::new(2)
                .transport(TransportKind::Nic)
                .compression(Some(ErrorBound::pow2(e)))
                .build();
            fabric
                .transfer(0, 1, &grads)
                .expect("matched NIC endpoints always decode each other's frames");
            rows.push(RatioRow {
                model: preset.name().to_string(),
                scheme: Scheme::Inceptionn(e),
                ratio: fabric.stats().wire_ratio(),
            });
        }
    }
    rows
}

/// One row of Table III: the bitwidth distribution of one model at one
/// error bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Model name.
    pub model: String,
    /// Error-bound exponent (`2^-e`).
    pub bound_exp: u8,
    /// The measured tag distribution.
    pub histogram: BitwidthHistogram,
}

/// Reproduces Table III over the calibrated synthetic gradient streams.
pub fn table3(fidelity: Fidelity, seed: u64) -> Vec<Table3Row> {
    let samples = fidelity.scale(400_000, 30_000);
    let mut rows = Vec::new();
    for preset in GradientPreset::ALL {
        let mut rng = StdRng::seed_from_u64(seed ^ (preset as u64) << 3);
        let grads = GradientModel::preset(preset).sample(&mut rng, samples);
        for e in [10u8, 8, 6] {
            let hist = InceptionnCodec::new(ErrorBound::pow2(e)).histogram(&grads);
            rows.push(Table3Row {
                model: preset.name().to_string(),
                bound_exp: e,
                histogram: hist,
            });
        }
    }
    rows
}

/// Table III measured on *real* gradients from a short HDC training run
/// (cross-checking the synthetic calibration).
pub fn table3_real_hdc(fidelity: Fidelity, seed: u64) -> Vec<Table3Row> {
    use inceptionn_dnn::data::DigitDataset;
    use inceptionn_dnn::models;
    use inceptionn_dnn::optim::{Sgd, SgdConfig};
    let mut net = models::hdc_mlp_small(seed);
    let data = DigitDataset::generate(fidelity.scale(2000, 300), seed.wrapping_add(1));
    let mut sgd = Sgd::new(SgdConfig::default(), net.param_count());
    let mut all_grads: Vec<f32> = Vec::new();
    let iters = fidelity.scale(60, 15);
    for it in 0..iters {
        let (x, y) = data.minibatch(it * 25, 25);
        net.forward_backward(&x, &y);
        let mut g = net.flat_grads();
        if it % 5 == 0 {
            all_grads.extend_from_slice(&g);
        }
        let mut p = net.flat_params();
        sgd.step(&mut p, &mut g);
        net.set_flat_params(&p);
    }
    [10u8, 8, 6]
        .into_iter()
        .map(|e| Table3Row {
            model: "HDC (real gradients)".to_string(),
            bound_exp: e,
            histogram: InceptionnCodec::new(ErrorBound::pow2(e)).histogram(&all_grads),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_ratios_are_constant_and_capped_at_four() {
        let rows = fig14_ratios(Fidelity::Quick, 1);
        for r in rows
            .iter()
            .filter(|r| matches!(r.scheme, Scheme::Truncate(_)))
        {
            assert!(r.ratio <= 4.0, "{:?}: {}", r.scheme, r.ratio);
        }
        // INC at the loosest bound reaches near-15x on at least one model.
        let best = rows
            .iter()
            .filter(|r| r.scheme == Scheme::Inceptionn(6))
            .map(|r| r.ratio)
            .fold(0.0f64, f64::max);
        assert!(best > 11.0, "best INC(2^-6) ratio {best:.1}");
    }

    #[test]
    fn inceptionn_ratio_grows_as_bound_relaxes() {
        let rows = fig14_ratios(Fidelity::Quick, 2);
        for model in ["AlexNet", "HDC", "ResNet-50", "VGG-16"] {
            let get = |s: Scheme| {
                rows.iter()
                    .find(|r| r.model == model && r.scheme == s)
                    .unwrap()
                    .ratio
            };
            let (r10, r8, r6) = (
                get(Scheme::Inceptionn(10)),
                get(Scheme::Inceptionn(8)),
                get(Scheme::Inceptionn(6)),
            );
            assert!(r10 < r8 && r8 < r6, "{model}: {r10:.1} {r8:.1} {r6:.1}");
            assert!(
                r10 > 2.0,
                "{model}: even the tight bound beats 2x ({r10:.1})"
            );
        }
    }

    #[test]
    fn inceptionn_preserves_accuracy_where_deep_truncation_fails() {
        // Fig. 14(b)'s contrast on the trainable proxy: every INC bound
        // keeps relative accuracy near 1.0.
        let rows = fig14_accuracy(ProxyModel::Hdc, Fidelity::Quick, 11);
        for r in &rows {
            if let Scheme::Inceptionn(e) = r.scheme {
                // Tight bounds must be indistinguishable from lossless; the
                // aggressive 2^-6 bound may lag at quick fidelity (the paper
                // recovers its ~2% gap with 1-2 extra epochs, Sec. VIII-B).
                let floor = if e >= 8 { 0.85 } else { 0.70 };
                assert!(
                    r.relative > floor,
                    "{}: relative {:.2}",
                    r.scheme.label(),
                    r.relative
                );
            }
        }
        // (No truncation comparison here: the paper itself finds HDC-class
        // MLPs tolerate even 24-bit gradient truncation — Fig. 14's
        // truncation collapse only appears on the complex CNNs.)
    }

    #[test]
    fn wire_ratios_track_the_codec_ratios() {
        // The NIC ships per-packet compressed streams; the achieved wire
        // ratio must sit within a few percent of the whole-stream codec
        // ratio (per-packet alignment costs at most a byte per 1448).
        let codec = fig14_ratios(Fidelity::Quick, 5);
        let wire = fig14_wire_ratios(Fidelity::Quick, 5);
        for w in &wire {
            let c = codec
                .iter()
                .find(|r| r.model == w.model && r.scheme == w.scheme)
                .unwrap();
            assert!(
                w.ratio > 1.5,
                "{} {:?}: wire {:.2}",
                w.model,
                w.scheme,
                w.ratio
            );
            let rel = (w.ratio - c.ratio).abs() / c.ratio;
            assert!(
                rel < 0.05,
                "{} {:?}: wire {:.2} vs codec {:.2}",
                w.model,
                w.scheme,
                w.ratio,
                c.ratio
            );
        }
    }

    #[test]
    fn table3_matches_paper_trends() {
        let rows = table3(Fidelity::Quick, 3);
        assert_eq!(rows.len(), 12);
        for model in ["AlexNet", "HDC", "ResNet-50", "VGG-16"] {
            let zero_at = |e: u8| {
                rows.iter()
                    .find(|r| r.model == model && r.bound_exp == e)
                    .unwrap()
                    .histogram
                    .fractions()
                    .0
            };
            // Looser bound -> more 2-bit values; >= 74% everywhere.
            assert!(
                zero_at(10) < zero_at(8) && zero_at(8) < zero_at(6),
                "{model}"
            );
            assert!(zero_at(10) > 0.70, "{model}: {:.3}", zero_at(10));
            assert!(zero_at(6) > 0.90, "{model}: {:.3}", zero_at(6));
        }
    }

    #[test]
    fn real_hdc_gradients_compress_like_the_calibration() {
        let real = table3_real_hdc(Fidelity::Quick, 4);
        for row in &real {
            let (zero, _, _, _) = row.histogram.fractions();
            assert!(
                zero > 0.5,
                "real HDC @2^-{}: zero fraction {zero:.3}",
                row.bound_exp
            );
        }
        // The compression ratio on real gradients is substantial.
        let r10 = &real[0];
        assert!(r10.histogram.compression_ratio() > 3.0);
    }
}
