//! Fig. 12 and Fig. 13: the end-to-end system comparison.

use inceptionn_dnn::profile::{ModelId, ModelProfile};
use serde::{Deserialize, Serialize};

use crate::cluster::{
    iteration_breakdown, iterations_per_epoch, ClusterConfig, IterationBreakdown, SystemKind,
};

/// One bar of Fig. 12: a (model, system) iteration profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig12Row {
    /// Model name.
    pub model: String,
    /// System variant.
    pub system: SystemKind,
    /// The simulated breakdown.
    pub breakdown: IterationBreakdown,
    /// Total normalized to the model's WA bar.
    pub normalized: f64,
}

/// Reproduces Fig. 12: per-iteration time of WA / WA+C / INC / INC+C
/// for every evaluated model, normalized per model to WA.
pub fn fig12(cfg: &ClusterConfig) -> Vec<Fig12Row> {
    let mut rows = Vec::new();
    for id in ModelId::EVALUATED {
        let profile = ModelProfile::of(id);
        let wa_total = iteration_breakdown(&profile, SystemKind::Wa, cfg).total_s();
        for system in SystemKind::ALL {
            let breakdown = iteration_breakdown(&profile, system, cfg);
            rows.push(Fig12Row {
                model: profile.name().to_string(),
                system,
                normalized: breakdown.total_s() / wa_total,
                breakdown,
            });
        }
    }
    rows
}

/// One column of Fig. 13: training both systems to the *same accuracy*.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig13Row {
    /// Model name.
    pub model: String,
    /// Final top-1 accuracy both systems reach.
    pub final_accuracy: f64,
    /// Epochs the WA baseline trains.
    pub epochs_wa: u32,
    /// Epochs INC+C trains (1–2 more, Sec. VIII-B).
    pub epochs_inc_c: u32,
    /// Simulated WA training time, hours.
    pub hours_wa: f64,
    /// Simulated INC+C training time, hours.
    pub hours_inc_c: f64,
    /// End-to-end speedup at accuracy parity.
    pub speedup: f64,
}

/// Reproduces Fig. 13 using the paper's measured epoch counts and our
/// simulated per-iteration times.
pub fn fig13(cfg: &ClusterConfig) -> Vec<Fig13Row> {
    let mut rows = Vec::new();
    for id in ModelId::EVALUATED {
        let profile = ModelProfile::of(id);
        let conv = profile.convergence.expect("evaluated models converge");
        let ipe = iterations_per_epoch(&profile, cfg.workers) as f64;
        let wa_iter = iteration_breakdown(&profile, SystemKind::Wa, cfg).total_s();
        let inc_iter = iteration_breakdown(&profile, SystemKind::IncC, cfg).total_s();
        let hours_wa = wa_iter * ipe * conv.epochs_baseline as f64 / 3600.0;
        let hours_inc_c = inc_iter * ipe * conv.epochs_compressed as f64 / 3600.0;
        rows.push(Fig13Row {
            model: profile.name().to_string(),
            final_accuracy: conv.final_accuracy,
            epochs_wa: conv.epochs_baseline,
            epochs_inc_c: conv.epochs_compressed,
            hours_wa,
            hours_inc_c,
            speedup: hours_wa / hours_inc_c,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig {
            ratio_samples: 3000,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn fig12_wa_bars_are_normalized_to_one() {
        let rows = fig12(&quick_cfg());
        assert_eq!(rows.len(), 16);
        for r in rows.iter().filter(|r| r.system == SystemKind::Wa) {
            assert!((r.normalized - 1.0).abs() < 1e-12, "{}", r.model);
        }
    }

    #[test]
    fn fig12_inc_c_lands_in_paper_speedup_band() {
        // Fig. 12: 2.2x (VGG-16) to 3.1x (AlexNet) over WA.
        let rows = fig12(&quick_cfg());
        for r in rows.iter().filter(|r| r.system == SystemKind::IncC) {
            let speedup = 1.0 / r.normalized;
            assert!(
                (1.8..4.5).contains(&speedup),
                "{}: INC+C speedup {speedup:.2}",
                r.model
            );
        }
    }

    #[test]
    fn fig12_inc_alone_cuts_training_time_30_to_55_percent() {
        // Sec. VIII-A: INC (no compression) trains 31-52% faster than WA.
        let rows = fig12(&quick_cfg());
        for r in rows.iter().filter(|r| r.system == SystemKind::Inc) {
            let cut = 1.0 - r.normalized;
            assert!((0.25..0.65).contains(&cut), "{}: INC cut {cut:.2}", r.model);
        }
    }

    #[test]
    fn fig13_reproduces_headline_speedups() {
        let rows = fig13(&quick_cfg());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(
                (1.8..4.2).contains(&r.speedup),
                "{}: {:.2}x",
                r.model,
                r.speedup
            );
            // Accuracy parity costs at most 2 extra epochs.
            assert!(r.epochs_inc_c - r.epochs_wa <= 2);
        }
        // AlexNet's WA baseline: the paper reports 175 h.
        let alex = rows.iter().find(|r| r.model == "AlexNet").unwrap();
        assert!(
            (140.0..210.0).contains(&alex.hours_wa),
            "AlexNet WA {:.0} h",
            alex.hours_wa
        );
    }
}
