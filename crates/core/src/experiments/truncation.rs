//! Fig. 4: how IEEE-754 LSB truncation of weights vs gradients affects
//! trained accuracy.
//!
//! The paper's observation (Sec. III-A): gradients tolerate aggressive
//! truncation because their error does not accumulate, while weight
//! truncation compounds across iterations and collapses accuracy — the
//! motivation for compressing *gradients* and never weights.

use inceptionn_compress::truncate::Truncation;
use inceptionn_dnn::data::DigitDataset;
use inceptionn_dnn::models;
use inceptionn_dnn::optim::{Sgd, SgdConfig};
use inceptionn_dnn::Network;
use serde::{Deserialize, Serialize};

use super::Fidelity;

/// Which tensors the lossy transform corrupts each iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CorruptTarget {
    /// Truncate the gradient before the optimizer step ("g only").
    GradientsOnly,
    /// Truncate the weights after the optimizer step ("w only").
    WeightsOnly,
    /// Both ("w & g").
    Both,
}

impl CorruptTarget {
    /// The three paper conditions in Fig. 4's order.
    pub const ALL: [CorruptTarget; 3] = [
        CorruptTarget::GradientsOnly,
        CorruptTarget::WeightsOnly,
        CorruptTarget::Both,
    ];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            CorruptTarget::GradientsOnly => "g only",
            CorruptTarget::WeightsOnly => "w only",
            CorruptTarget::Both => "w & g",
        }
    }
}

/// Which trainable stand-in network runs the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProxyModel {
    /// The paper's HDC MLP (full fidelity runs the 500-wide version).
    Hdc,
    /// The conv-net stand-in for AlexNet (see DESIGN.md).
    MiniCnn,
}

impl ProxyModel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            ProxyModel::Hdc => "HDC",
            ProxyModel::MiniCnn => "MiniCNN (AlexNet proxy)",
        }
    }
}

/// Result of one (scheme, target) training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruncationPoint {
    /// Truncated LSB count (0 = lossless baseline).
    pub truncated_bits: u8,
    /// What was corrupted.
    pub target: CorruptTarget,
    /// Final test accuracy.
    pub accuracy: f32,
}

/// Fig. 4 for one proxy model: final accuracy per truncation scheme per
/// corruption target, plus the lossless baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TruncationStudy {
    /// Which network ran.
    pub model: String,
    /// Lossless baseline accuracy.
    pub baseline_accuracy: f32,
    /// All corrupted runs.
    pub points: Vec<TruncationPoint>,
}

impl TruncationStudy {
    /// Accuracy of a specific condition.
    pub fn accuracy(&self, bits: u8, target: CorruptTarget) -> Option<f32> {
        self.points
            .iter()
            .find(|p| p.truncated_bits == bits && p.target == target)
            .map(|p| p.accuracy)
    }
}

/// Trains once with a per-iteration corruption hook and returns the
/// final test accuracy. Exposed for reuse by the Fig. 14 accuracy study.
pub fn train_with_corruption(
    model: ProxyModel,
    fidelity: Fidelity,
    seed: u64,
    mut corrupt_grads: impl FnMut(&mut [f32]),
    mut corrupt_weights: impl FnMut(&mut [f32]),
) -> f32 {
    let (mut net, conv_input): (Network, bool) = match (model, fidelity) {
        (ProxyModel::Hdc, Fidelity::Quick) => (models::hdc_mlp_small(seed), false),
        (ProxyModel::Hdc, Fidelity::Full) => (models::hdc_mlp(seed), false),
        (ProxyModel::MiniCnn, _) => (models::mini_cnn(seed), true),
    };
    let iters = match (model, fidelity) {
        (ProxyModel::MiniCnn, Fidelity::Quick) => 60,
        (_, Fidelity::Quick) => 500,
        (ProxyModel::MiniCnn, Fidelity::Full) => 400,
        (_, Fidelity::Full) => 1200,
    };
    let batch = 16usize;
    let train = DigitDataset::generate(fidelity.scale(4000, 600), seed.wrapping_add(1));
    let test = DigitDataset::generate(fidelity.scale(1000, 200), seed.wrapping_add(2));
    let mut sgd = Sgd::new(
        SgdConfig {
            learning_rate: 0.02,
            ..SgdConfig::default()
        },
        net.param_count(),
    );
    for it in 0..iters {
        let (x, y) = if conv_input {
            train.minibatch_nchw(it * batch, batch)
        } else {
            train.minibatch(it * batch, batch)
        };
        net.forward_backward(&x, &y);
        let mut grads = net.flat_grads();
        corrupt_grads(&mut grads);
        let mut params = net.flat_params();
        sgd.step(&mut params, &mut grads);
        corrupt_weights(&mut params);
        net.set_flat_params(&params);
    }
    let inputs = if conv_input {
        test.images_nchw()
    } else {
        test.images_flat()
    };
    net.evaluate(&inputs, test.labels(), 50)
}

/// Runs the full Fig. 4 grid for one proxy model.
pub fn run(model: ProxyModel, fidelity: Fidelity, seed: u64) -> TruncationStudy {
    let baseline = train_with_corruption(model, fidelity, seed, |_| {}, |_| {});
    let mut points = Vec::new();
    for &bits in &inceptionn_compress::truncate::PAPER_TRUNCATIONS {
        let trunc = Truncation::new(bits);
        for target in CorruptTarget::ALL {
            let hit_g = matches!(target, CorruptTarget::GradientsOnly | CorruptTarget::Both);
            let hit_w = matches!(target, CorruptTarget::WeightsOnly | CorruptTarget::Both);
            let accuracy = train_with_corruption(
                model,
                fidelity,
                seed,
                |g| {
                    if hit_g {
                        trunc.apply_inplace(g);
                    }
                },
                |w| {
                    if hit_w {
                        trunc.apply_inplace(w);
                    }
                },
            );
            points.push(TruncationPoint {
                truncated_bits: bits,
                target,
                accuracy,
            });
        }
    }
    TruncationStudy {
        model: model.name().to_string(),
        baseline_accuracy: baseline,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_truncation_is_benign_weight_truncation_is_fatal() {
        // The core Fig. 4 contrast, on the quick HDC proxy.
        let study = run(ProxyModel::Hdc, Fidelity::Quick, 5);
        let base = study.baseline_accuracy;
        assert!(base > 0.6, "baseline failed to train: {base}");
        let g24 = study.accuracy(24, CorruptTarget::GradientsOnly).unwrap();
        let w24 = study.accuracy(24, CorruptTarget::WeightsOnly).unwrap();
        // 24-bit truncation of gradients barely hurts…
        assert!(g24 > base - 0.25, "g-only collapsed: {g24} vs base {base}");
        // …but the same truncation of weights destroys training.
        assert!(
            w24 < base - 0.3,
            "w-only unexpectedly fine: {w24} vs {base}"
        );
        assert!(w24 < g24, "w24 {w24} should be below g24 {g24}");
    }

    #[test]
    fn mild_truncation_of_either_is_tolerable() {
        let study = run(ProxyModel::Hdc, Fidelity::Quick, 7);
        let base = study.baseline_accuracy;
        let g16 = study.accuracy(16, CorruptTarget::GradientsOnly).unwrap();
        let w16 = study.accuracy(16, CorruptTarget::WeightsOnly).unwrap();
        assert!(g16 > base - 0.15, "{g16} vs {base}");
        assert!(w16 > base - 0.25, "{w16} vs {base}");
    }

    #[test]
    fn study_grid_is_complete() {
        let study = run(ProxyModel::Hdc, Fidelity::Quick, 9);
        assert_eq!(study.points.len(), 9);
        for &bits in &[16u8, 22, 24] {
            for t in CorruptTarget::ALL {
                assert!(study.accuracy(bits, t).is_some(), "{bits} {t:?}");
            }
        }
    }
}
