//! Extension: INCEPTIONN vs the related-work gradient-reduction
//! algorithms the paper discusses (Sec. IX).
//!
//! 1-bit SGD, TernGrad, and DGC-style top-k sparsification reach large
//! compression ratios, but they are *stateful algorithm changes* (error
//! feedback, stochastic rounding, sparsity) that must run on the host;
//! INCEPTIONN's pitch is a stateless per-value codec cheap enough for
//! NIC hardware. This study measures both axes on the trainable proxy:
//! achieved ratio and final accuracy under the same epoch budget.

use inceptionn_compress::reduction::{GradientReduction, OneBitSgd, Qsgd, TernGrad, TopK};
use inceptionn_compress::{ErrorBound, InceptionnCodec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use super::truncation::{train_with_corruption, ProxyModel};
use super::Fidelity;

/// The compared gradient-traffic-reduction approaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Approach {
    /// Lossless exchange.
    Base,
    /// INCEPTIONN codec at `2^-10`.
    Inceptionn,
    /// 1-bit SGD with error feedback.
    OneBit,
    /// TernGrad stochastic ternarization.
    TernGrad,
    /// QSGD stochastic uniform quantization (4 levels).
    Qsgd,
    /// DGC-style top-1% sparsification with accumulation.
    TopK,
}

impl Approach {
    /// All compared approaches.
    pub const ALL: [Approach; 6] = [
        Approach::Base,
        Approach::Inceptionn,
        Approach::OneBit,
        Approach::TernGrad,
        Approach::Qsgd,
        Approach::TopK,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Approach::Base => "Base (lossless)",
            Approach::Inceptionn => "INCEPTIONN (2^-10)",
            Approach::OneBit => "1-bit SGD",
            Approach::TernGrad => "TernGrad",
            Approach::Qsgd => "QSGD (s=4)",
            Approach::TopK => "top-k 1% (DGC)",
        }
    }

    /// Whether the approach needs per-worker persistent state — the
    /// property that blocks a stateless in-network implementation.
    pub fn is_stateful(self) -> bool {
        matches!(self, Approach::OneBit | Approach::TopK)
    }
}

/// One measured row of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelatedWorkRow {
    /// Approach measured.
    pub approach: Approach,
    /// Mean on-wire compression ratio over the training run.
    pub ratio: f64,
    /// Final test accuracy.
    pub accuracy: f32,
    /// Accuracy relative to Base.
    pub relative: f32,
}

/// Runs the comparison on the HDC proxy.
pub fn run(fidelity: Fidelity, seed: u64) -> Vec<RelatedWorkRow> {
    let mut rows: Vec<RelatedWorkRow> = Vec::new();
    let mut base_acc = 1.0f32;
    for approach in Approach::ALL {
        // Accumulate (bits_sent, values_sent) across the run inside the
        // corruption hook.
        let mut wire_bits = 0u64;
        let mut values = 0u64;
        let accuracy = {
            let wire_bits = &mut wire_bits;
            let values = &mut values;
            match approach {
                Approach::Base => {
                    train_with_corruption(ProxyModel::Hdc, fidelity, seed, |_| {}, |_| {})
                }
                Approach::Inceptionn => {
                    let codec = InceptionnCodec::new(ErrorBound::pow2(10));
                    train_with_corruption(
                        ProxyModel::Hdc,
                        fidelity,
                        seed,
                        move |g| {
                            *wire_bits += codec.histogram(g).wire_bits() as u64;
                            *values += g.len() as u64;
                            codec.quantize_inplace(g);
                        },
                        |_| {},
                    )
                }
                Approach::OneBit => {
                    let mut red = OneBitSgd::new();
                    train_with_corruption(
                        ProxyModel::Hdc,
                        fidelity,
                        seed,
                        move |g| {
                            let out = red.reduce(g);
                            *wire_bits += out.wire_bits;
                            *values += g.len() as u64;
                            g.copy_from_slice(&out.dense);
                        },
                        |_| {},
                    )
                }
                Approach::TernGrad => {
                    let mut red = TernGrad::new(StdRng::seed_from_u64(seed ^ 0xAB));
                    train_with_corruption(
                        ProxyModel::Hdc,
                        fidelity,
                        seed,
                        move |g| {
                            let out = red.reduce(g);
                            *wire_bits += out.wire_bits;
                            *values += g.len() as u64;
                            g.copy_from_slice(&out.dense);
                        },
                        |_| {},
                    )
                }
                Approach::Qsgd => {
                    let mut red = Qsgd::new(StdRng::seed_from_u64(seed ^ 0xCD), 4);
                    train_with_corruption(
                        ProxyModel::Hdc,
                        fidelity,
                        seed,
                        move |g| {
                            let out = red.reduce(g);
                            *wire_bits += out.wire_bits;
                            *values += g.len() as u64;
                            g.copy_from_slice(&out.dense);
                        },
                        |_| {},
                    )
                }
                Approach::TopK => {
                    let mut red = TopK::new(0.01);
                    train_with_corruption(
                        ProxyModel::Hdc,
                        fidelity,
                        seed,
                        move |g| {
                            let out = red.reduce(g);
                            *wire_bits += out.wire_bits;
                            *values += g.len() as u64;
                            g.copy_from_slice(&out.dense);
                        },
                        |_| {},
                    )
                }
            }
        };
        let ratio = if wire_bits == 0 {
            1.0
        } else {
            values as f64 * 32.0 / wire_bits as f64
        };
        if approach == Approach::Base {
            base_acc = accuracy.max(1e-6);
        }
        rows.push(RelatedWorkRow {
            approach,
            ratio,
            accuracy,
            relative: accuracy / base_acc,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_covers_all_approaches_with_sane_ratios() {
        let rows = run(Fidelity::Quick, 21);
        assert_eq!(rows.len(), 6);
        let get = |a: Approach| rows.iter().find(|r| r.approach == a).unwrap();
        assert_eq!(get(Approach::Base).ratio, 1.0);
        assert!(get(Approach::Inceptionn).ratio > 2.0);
        assert!(get(Approach::OneBit).ratio > 25.0);
        assert!((get(Approach::TernGrad).ratio - 16.0).abs() < 1.0);
        assert!((get(Approach::Qsgd).ratio - 8.0).abs() < 0.6);
        assert!(get(Approach::TopK).ratio > 40.0);
    }

    #[test]
    fn every_approach_still_learns() {
        // All four reduction schemes are published *working* methods; the
        // proxy task must remain learnable under each (relative accuracy
        // well above chance-level collapse).
        let rows = run(Fidelity::Quick, 22);
        for r in &rows {
            assert!(
                r.relative > 0.5,
                "{}: relative {:.2}",
                r.approach.label(),
                r.relative
            );
        }
    }

    #[test]
    fn statefulness_classification() {
        assert!(Approach::OneBit.is_stateful());
        assert!(Approach::TopK.is_stateful());
        assert!(!Approach::Inceptionn.is_stateful());
        assert!(!Approach::TernGrad.is_stateful());
    }
}
