//! # INCEPTIONN — reproduction of the MICRO 2018 paper
//!
//! *"A Network-Centric Hardware/Algorithm Co-Design to Accelerate
//! Distributed Training of Deep Neural Networks"* (Li et al.).
//!
//! INCEPTIONN attacks the dominant cost of distributed DNN training —
//! gradient/weight communication — with three co-designed pieces:
//!
//! 1. **A lossy floating-point gradient codec** ([`ErrorBound`],
//!    [`InceptionnCodec`]) that exploits gradients' tight distribution
//!    around zero to encode most values in 2 bits while guaranteeing a
//!    per-value absolute error bound;
//! 2. **In-NIC compression accelerators**
//!    ([`inceptionn_nicsim::NicPipeline`]) that apply the codec at line
//!    rate to ToS-tagged TCP/IP packets;
//! 3. **A gradient-centric, aggregator-free training algorithm**
//!    ([`inceptionn_distrib::ring::ring_allreduce`]) that exchanges
//!    gradients in *both* legs of communication so everything on the
//!    wire is compressible, while spreading aggregation work evenly.
//!
//! This crate is the top of the reproduction stack: it provides the
//! user-facing collective API ([`api`]), the end-to-end cluster timing
//! model ([`cluster`]) that regenerates the paper's performance results,
//! the elastic multi-tenant training host ([`service`]), and one driver
//! per published table/figure ([`experiments`]).
//!
//! ## Quickstart
//!
//! ```
//! use inceptionn::api::CollectiveContext;
//! use inceptionn::ErrorBound;
//!
//! // Four workers hold local gradients; sum them INCEPTIONN-style:
//! // ring exchange with in-network lossy compression at eb = 2^-10.
//! let mut grads = vec![vec![0.25f32; 32]; 4];
//! let ctx = CollectiveContext::new(4).with_compression(ErrorBound::pow2(10));
//! ctx.allreduce(&mut grads);
//! for g in &grads {
//!     assert!((g[0] - 1.0).abs() <= 4.0 * 2f32.powi(-10));
//! }
//! ```
//!
//! ## Reproducing the paper
//!
//! Every table and figure in the evaluation has a driver in
//! [`experiments`] and a matching binary in the `inceptionn-bench`
//! crate (`cargo run --release -p inceptionn-bench --bin fig12`). See
//! `EXPERIMENTS.md` at the repository root for the recorded
//! paper-vs-measured comparison.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_debug_implementations)]

pub mod api;
pub mod cluster;
pub mod experiments;
pub mod report;
pub mod service;

pub use inceptionn_compress::{ErrorBound, InceptionnCodec};
pub use inceptionn_dnn::profile::{ModelId, ModelProfile};

pub use cluster::{ClusterConfig, IterationBreakdown, SystemKind};
pub use service::{ClusterService, JobSpec, TenantReport};
