//! Elastic multi-tenant cluster service over the unified membership +
//! exchange API.
//!
//! A [`ClusterService`] hosts N concurrent training jobs on one modeled
//! physical fabric: every tenant gets a slice of the switch's link
//! bandwidth ([`TenantShares`], weighted by job priority), its own
//! [`Recorder`] for isolated observability, and its own
//! [`MembershipSchedule`] so workers can join, leave, and crash
//! mid-run independently per job. The service interleaves tenant
//! iterations with a deterministic weighted-fair scheduler that is
//! straggler-aware: the next block goes to the job whose accumulated
//! wire time (normalized by priority) is smallest, so a tenant slowed
//! by a thin bandwidth share or a fault-recovery detour naturally
//! yields the host to its peers without ever starving.
//!
//! Everything is replayable: the same admitted jobs in the same order
//! produce byte-identical [`TenantReport`]s — parameters, wire bytes,
//! and recovered-step counts included — and each tenant's obs-side
//! wire-byte total reconciles against its transport's [`FabricStats`]
//! to the byte.

use inceptionn_distrib::fabric::{CodecSelection, FabricStats, TransportKind};
use inceptionn_distrib::trainer::{DistributedTrainer, ExchangeStrategy, TrainerConfig};
use inceptionn_distrib::{FaultPlan, MembershipSchedule};
use inceptionn_dnn::data::DigitDataset;
use inceptionn_dnn::{models, Network};
use inceptionn_netsim::{NetworkConfig, TenantShares};
use obs::Recorder;

/// One tenant's training job, as admitted to the service.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Human-readable tenant name (lands on the report).
    pub name: String,
    /// Worker replicas this job trains with.
    pub workers: usize,
    /// Gradient-exchange strategy.
    pub strategy: ExchangeStrategy,
    /// Lossy wire codec ([`CodecSelection::None`] = lossless).
    pub codec: CodecSelection,
    /// Transport the job's exchanges run over. Bandwidth shares only
    /// bite on the timed transports (default: [`TransportKind::TimedNic`]).
    pub transport: TransportKind,
    /// Iterations the job runs to completion.
    pub iterations: usize,
    /// Scheduling weight: both the tenant's bandwidth share and its
    /// claim on host steps scale with it (0 is treated as 1).
    pub priority: u64,
    /// Per-worker minibatch size.
    pub batch_per_worker: usize,
    /// Seed for the job's model init and synthetic dataset.
    pub seed: u64,
    /// Samples in the job's synthetic dataset.
    pub data_samples: usize,
    /// Elastic membership schedule (joins / leaves / crashes).
    pub membership: MembershipSchedule,
    /// Link-fault injection, if any.
    pub faults: Option<FaultPlan>,
    /// Model constructor (seed → replica).
    pub model: fn(u64) -> Network,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            name: "tenant".to_string(),
            workers: 4,
            strategy: ExchangeStrategy::Ring,
            codec: CodecSelection::None,
            transport: TransportKind::TimedNic,
            iterations: 8,
            priority: 1,
            batch_per_worker: 8,
            seed: 0,
            data_samples: 160,
            membership: MembershipSchedule::new(),
            faults: None,
            model: models::hdc_mlp_small,
        }
    }
}

/// What one tenant did, measured from both sides of the obs seam.
///
/// Equality is the *deterministic replay contract*: two reports compare
/// equal iff every replayable field matches — parameters (via the
/// fingerprint), wire/payload bytes, virtual link time, churn and
/// recovery counts. The host wall-time fields (`compute_ns`,
/// `exchange_ns`, `comm_fraction`) measure the machine the run happened
/// on, not the run itself, and are excluded.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant name from the [`JobSpec`].
    pub name: String,
    /// Admission index (also the tenant's share slot).
    pub tenant: usize,
    /// Fraction of the switch's link bandwidth this tenant held.
    pub bandwidth_fraction: f64,
    /// Iterations completed (always the spec's `iterations`).
    pub completed_iterations: usize,
    /// Post-compression bytes the tenant put on the wire, from the
    /// transport's own counters ([`FabricStats::wire_bytes`]).
    pub wire_bytes: u64,
    /// The same total, independently accumulated through the tenant's
    /// [`Recorder`] — must reconcile with `wire_bytes` to the byte.
    pub obs_wire_bytes: u64,
    /// Pre-compression payload bytes.
    pub payload_bytes: u64,
    /// Virtual link time the tenant's transfers occupied, ns.
    pub link_latency_ns: u64,
    /// Host wall time spent in forward/backward compute, ns.
    pub compute_ns: u64,
    /// Host wall time spent in the gradient exchange, ns.
    pub exchange_ns: u64,
    /// exchange / (compute + exchange) over the whole run.
    pub comm_fraction: f64,
    /// Iterations that hit the recovery ladder (an endpoint excision)
    /// and were re-run over the survivors.
    pub recovered_steps: u64,
    /// Workers that joined (or rejoined) across the run.
    pub joins: usize,
    /// Workers that left gracefully across the run.
    pub leaves: usize,
    /// Crash events the fabric refused traffic for.
    pub crashes: u64,
    /// Mean training loss of the final iteration.
    pub final_loss: f32,
    /// FNV-1a over the lead replica's parameter bits — two runs
    /// converged bit-identically iff the fingerprints match.
    pub param_fingerprint: u64,
}

impl PartialEq for TenantReport {
    fn eq(&self, other: &Self) -> bool {
        // Everything except the host wall-time measurements.
        self.name == other.name
            && self.tenant == other.tenant
            && self.bandwidth_fraction == other.bandwidth_fraction
            && self.completed_iterations == other.completed_iterations
            && self.wire_bytes == other.wire_bytes
            && self.obs_wire_bytes == other.obs_wire_bytes
            && self.payload_bytes == other.payload_bytes
            && self.link_latency_ns == other.link_latency_ns
            && self.recovered_steps == other.recovered_steps
            && self.joins == other.joins
            && self.leaves == other.leaves
            && self.crashes == other.crashes
            && self.final_loss.to_bits() == other.final_loss.to_bits()
            && self.param_fingerprint == other.param_fingerprint
    }
}

/// FNV-1a over the bit patterns of a parameter vector.
fn fingerprint(params: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for p in params {
        for byte in p.to_bits().to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

struct Tenant {
    spec: JobSpec,
    trainer: DistributedTrainer,
    recorder: Recorder,
    completed: usize,
    recovered_steps: u64,
    joins: usize,
    leaves: usize,
    final_loss: f32,
}

impl Tenant {
    /// The tenant's weighted-fair virtual time: accumulated wire time
    /// (or completed iterations, on untimed transports) normalized by
    /// priority. The scheduler always serves the smallest.
    fn virtual_time(&self) -> f64 {
        let stats = self.trainer.fabric_stats();
        let progress = if stats.link_latency_ns > 0 {
            stats.link_latency_ns as f64
        } else {
            self.completed as f64
        };
        progress / self.spec.priority.max(1) as f64
    }

    fn done(&self) -> bool {
        self.completed >= self.spec.iterations
    }
}

/// A long-running multi-tenant training host: admit jobs, then [`run`]
/// them to completion under weighted-fair scheduling and per-tenant
/// bandwidth shares.
///
/// [`run`]: ClusterService::run
///
/// # Examples
///
/// ```
/// use inceptionn::service::{ClusterService, JobSpec};
///
/// let mut cluster = ClusterService::new();
/// cluster.admit(JobSpec {
///     name: "small".into(),
///     workers: 2,
///     iterations: 2,
///     batch_per_worker: 4,
///     data_samples: 32,
///     ..JobSpec::default()
/// });
/// let reports = cluster.run();
/// assert_eq!(reports[0].completed_iterations, 2);
/// assert_eq!(reports[0].wire_bytes, reports[0].obs_wire_bytes);
/// ```
#[derive(Debug, Default)]
pub struct ClusterService {
    specs: Vec<JobSpec>,
}

impl ClusterService {
    /// An empty service; admit jobs before running.
    pub fn new() -> Self {
        ClusterService::default()
    }

    /// Admits a job; returns its tenant index (also its bandwidth-share
    /// slot). Shares are settled when [`run`](Self::run) starts, over
    /// the full admitted set.
    pub fn admit(&mut self, spec: JobSpec) -> usize {
        self.specs.push(spec);
        self.specs.len() - 1
    }

    /// Admitted jobs, in admission order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.specs
    }

    /// The bandwidth shares the admitted set resolves to (weighted by
    /// job priority).
    pub fn shares(&self) -> TenantShares {
        let weights: Vec<u64> = self.specs.iter().map(|s| s.priority.max(1)).collect();
        TenantShares::new(&weights)
    }

    /// Runs every admitted job to completion, interleaving iterations
    /// under the weighted-fair scheduler, and reports per tenant.
    ///
    /// # Panics
    ///
    /// Panics if no job was admitted, or if a job's configuration is
    /// itself invalid (zero workers, dataset smaller than the worker
    /// count).
    pub fn run(&mut self) -> Vec<TenantReport> {
        assert!(!self.specs.is_empty(), "admit at least one job");
        let shares = self.shares();
        let mut tenants: Vec<Tenant> = self
            .specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let recorder = Recorder::on();
                let data = DigitDataset::generate(spec.data_samples, spec.seed);
                let base = NetworkConfig::ten_gbe(spec.workers + 1);
                let trainer = DistributedTrainer::new(
                    TrainerConfig {
                        workers: spec.workers,
                        strategy: spec.strategy,
                        transport: spec.transport,
                        codec: spec.codec,
                        faults: spec.faults.clone(),
                        membership: spec.membership.clone(),
                        network: Some(shares.scaled(i, base)),
                        batch_per_worker: spec.batch_per_worker,
                        seed: spec.seed,
                        recorder: recorder.clone(),
                        ..TrainerConfig::default()
                    },
                    spec.model,
                    &data,
                );
                Tenant {
                    spec: spec.clone(),
                    trainer,
                    recorder,
                    completed: 0,
                    recovered_steps: 0,
                    joins: 0,
                    leaves: 0,
                    final_loss: 0.0,
                }
            })
            .collect();

        // Deterministic weighted-fair interleave: serve the unfinished
        // tenant with the smallest virtual time, admission order
        // breaking ties.
        loop {
            let next = tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.done())
                .min_by(|(_, a), (_, b)| {
                    a.virtual_time()
                        .partial_cmp(&b.virtual_time())
                        .expect("virtual times are finite")
                })
                .map(|(i, _)| i);
            let Some(i) = next else { break };
            let tenant = &mut tenants[i];
            let log = tenant.trainer.step();
            tenant.completed += 1;
            tenant.final_loss = log.loss;
            if log.excised.is_some() {
                tenant.recovered_steps += 1;
            }
            tenant.joins += log.joined.len();
            tenant.leaves += log.left.len();
        }

        tenants
            .iter_mut()
            .enumerate()
            .map(|(i, t)| {
                t.trainer.flush_trace();
                let stats: FabricStats = t.trainer.fabric_stats();
                let summary = t.recorder.finish().summary();
                let alive = t.trainer.alive();
                let lead = alive.iter().position(|&a| a).unwrap_or(0);
                let compute_ns: u64 = summary.iters.values().map(|s| s.compute_ns).sum();
                let exchange_ns: u64 = summary.iters.values().map(|s| s.exchange_ns).sum();
                TenantReport {
                    name: t.spec.name.clone(),
                    tenant: i,
                    bandwidth_fraction: shares.fraction(i),
                    completed_iterations: t.completed,
                    wire_bytes: stats.wire_bytes,
                    obs_wire_bytes: summary.total_wire_bytes(),
                    payload_bytes: stats.payload_bytes,
                    link_latency_ns: stats.link_latency_ns,
                    compute_ns,
                    exchange_ns,
                    comm_fraction: summary.comm_fraction(),
                    recovered_steps: t.recovered_steps,
                    joins: t.joins,
                    leaves: t.leaves,
                    crashes: t.trainer.fault_stats().crashes,
                    final_loss: t.final_loss,
                    param_fingerprint: fingerprint(&t.trainer.replica(lead).flat_params()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                name: "elastic-ring".into(),
                workers: 3,
                iterations: 6,
                priority: 3,
                batch_per_worker: 4,
                data_samples: 48,
                seed: 11,
                membership: MembershipSchedule::new().leave(2, 2).join(4, 2),
                ..JobSpec::default()
            },
            JobSpec {
                name: "crashy-switch".into(),
                workers: 3,
                strategy: ExchangeStrategy::SwitchReduce,
                iterations: 5,
                priority: 1,
                batch_per_worker: 4,
                data_samples: 48,
                seed: 13,
                membership: MembershipSchedule::new().crash(2, 1).join(4, 1),
                ..JobSpec::default()
            },
        ]
    }

    fn run_cluster() -> Vec<TenantReport> {
        let mut cluster = ClusterService::new();
        for job in churn_jobs() {
            cluster.admit(job);
        }
        cluster.run()
    }

    #[test]
    fn two_tenants_with_churn_replay_byte_identically() {
        let a = run_cluster();
        let b = run_cluster();
        assert_eq!(a, b, "the whole multi-tenant run must replay exactly");
        assert_eq!(a[0].joins, 1);
        assert_eq!(a[0].leaves, 1);
        assert_eq!(a[1].crashes, 1);
        assert_eq!(a[1].joins, 1);
        assert_eq!(a[1].recovered_steps, 1);
    }

    #[test]
    fn obs_wire_bytes_reconcile_with_the_fabric_to_the_byte() {
        for report in run_cluster() {
            assert!(report.wire_bytes > 0, "{}: nothing crossed", report.name);
            assert_eq!(
                report.wire_bytes, report.obs_wire_bytes,
                "{}: transport and obs disagree on wire bytes",
                report.name
            );
        }
    }

    #[test]
    fn priorities_resolve_to_bandwidth_shares() {
        let reports = run_cluster();
        assert_eq!(reports[0].bandwidth_fraction, 0.75);
        assert_eq!(reports[1].bandwidth_fraction, 0.25);
        // The thin-share tenant pays more link time per wire byte.
        let cost = |r: &TenantReport| r.link_latency_ns as f64 / r.wire_bytes as f64;
        assert!(
            cost(&reports[1]) > cost(&reports[0]),
            "25% share must be slower per byte than 75%: {} vs {}",
            cost(&reports[1]),
            cost(&reports[0]),
        );
    }

    #[test]
    fn every_tenant_finishes_and_converges() {
        let reports = run_cluster();
        for (report, spec) in reports.iter().zip(churn_jobs()) {
            assert_eq!(report.completed_iterations, spec.iterations);
            assert!(report.final_loss.is_finite());
            assert!(report.comm_fraction > 0.0 && report.comm_fraction < 1.0);
        }
    }
}
