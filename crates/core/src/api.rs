//! The user-facing collective-communication API.
//!
//! Mirrors the paper's software interface (Sec. VI-B): the default MPI
//! collectives (`collec_comm`) exchange raw gradients, while the
//! `_comp` variants (`collec_comm_comp`) set the reserved ToS value on
//! the underlying sockets so the NIC engines compress every gradient
//! packet. Here the two variants are one [`CollectiveContext`] with an
//! optional [`ErrorBound`], and the transport underneath — in-process
//! shortcut, modeled NIC datapath, or either with link timing — is
//! selected with a [`TransportKind`].

use inceptionn_compress::ErrorBound;
use inceptionn_distrib::fabric::{Fabric, FabricBuilder, FabricStats, TransportKind};
use inceptionn_distrib::{Exchange, ExchangeStrategy};

/// A handle over a fixed-size worker group, configured once and used
/// for many exchanges (like an MPI communicator).
///
/// # Examples
///
/// ```
/// use inceptionn::api::CollectiveContext;
///
/// let ctx = CollectiveContext::new(3);
/// let mut grads = vec![vec![1.0f32], vec![2.0], vec![4.0]];
/// ctx.allreduce(&mut grads);
/// assert_eq!(grads[2], vec![7.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectiveContext {
    workers: usize,
    compression: Option<ErrorBound>,
    transport: TransportKind,
}

impl CollectiveContext {
    /// Creates a context over `workers` ring-connected workers using the
    /// in-process transport.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "at least one worker required");
        CollectiveContext {
            workers,
            compression: None,
            transport: TransportKind::InProcess,
        }
    }

    /// Enables in-network lossy compression at the given bound — the
    /// `collec_comm_comp` variant.
    pub fn with_compression(mut self, bound: ErrorBound) -> Self {
        self.compression = Some(bound);
        self
    }

    /// Selects the transport the collectives run over (default:
    /// [`TransportKind::InProcess`]).
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// The worker-group size.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The configured compression bound, if any.
    pub fn compression(&self) -> Option<ErrorBound> {
        self.compression
    }

    /// The configured transport.
    pub fn transport(&self) -> TransportKind {
        self.transport
    }

    /// A fresh fabric for one exchange. The extra endpoint serves as the
    /// aggregator for [`allreduce_worker_aggregator`]
    /// (`CollectiveContext::allreduce_worker_aggregator`).
    fn fabric(&self) -> Box<dyn Fabric> {
        FabricBuilder::new(self.workers + 1)
            .transport(self.transport)
            .compression(self.compression)
            .build()
    }

    /// Sums one gradient vector per worker in place via the
    /// gradient-centric ring (Algorithm 1). Every worker ends with the
    /// full sum.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != self.workers()` or the vectors differ
    /// in length.
    pub fn allreduce(&self, grads: &mut [Vec<f32>]) {
        self.allreduce_measured(grads);
    }

    /// [`allreduce`](Self::allreduce), returning what crossed the
    /// transport (wire volume, engine cycles, link latency — depending
    /// on the transport kind).
    pub fn allreduce_measured(&self, grads: &mut [Vec<f32>]) -> FabricStats {
        assert_eq!(grads.len(), self.workers, "one gradient vector per worker");
        self.run(ExchangeStrategy::Ring, grads)
    }

    /// Sums gradients via the hierarchical grouping of Fig. 1(c).
    ///
    /// # Panics
    ///
    /// Panics on a worker-count mismatch or when `group_size` does not
    /// divide the worker count.
    pub fn allreduce_hierarchical(&self, grads: &mut [Vec<f32>], group_size: usize) {
        self.allreduce_hierarchical_measured(grads, group_size);
    }

    /// [`allreduce_hierarchical`](Self::allreduce_hierarchical) with
    /// transport accounting.
    pub fn allreduce_hierarchical_measured(
        &self,
        grads: &mut [Vec<f32>],
        group_size: usize,
    ) -> FabricStats {
        assert_eq!(grads.len(), self.workers, "one gradient vector per worker");
        self.run(ExchangeStrategy::HierarchicalRing { group_size }, grads)
    }

    /// Sums gradients via the conventional worker-aggregator exchange
    /// (only the gradient leg is compressed — the baseline the paper
    /// calls WA/WA+C).
    ///
    /// # Panics
    ///
    /// Panics if `grads.len() != self.workers()`.
    pub fn allreduce_worker_aggregator(&self, grads: &mut [Vec<f32>]) {
        self.allreduce_worker_aggregator_measured(grads);
    }

    /// [`allreduce_worker_aggregator`](Self::allreduce_worker_aggregator)
    /// with transport accounting.
    pub fn allreduce_worker_aggregator_measured(&self, grads: &mut [Vec<f32>]) -> FabricStats {
        assert_eq!(grads.len(), self.workers, "one gradient vector per worker");
        self.run(ExchangeStrategy::WorkerAggregator, grads)
    }

    /// One exchange through the unified [`Exchange`] dispatch seam over
    /// a fresh fabric, returning the transport accounting.
    fn run(&self, strategy: ExchangeStrategy, grads: &mut [Vec<f32>]) -> FabricStats {
        let mut fabric = self.fabric();
        let live: Vec<usize> = (0..self.workers).collect();
        Exchange::new(self.workers)
            .run(strategy, fabric.as_mut(), grads, &live)
            .expect("built-in transports deliver their own frames");
        fabric.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressed_and_plain_contexts_agree_within_bound() {
        let plain = CollectiveContext::new(4);
        let lossy = CollectiveContext::new(4).with_compression(ErrorBound::pow2(10));
        let make = || -> Vec<Vec<f32>> {
            (0..4)
                .map(|w| {
                    (0..64)
                        .map(|i| ((w * 64 + i) as f32 * 0.001).sin() * 0.1)
                        .collect()
                })
                .collect()
        };
        let mut a = make();
        let mut b = make();
        plain.allreduce(&mut a);
        lossy.allreduce(&mut b);
        let eb = 2f32.powi(-10);
        for (x, y) in a[0].iter().zip(&b[0]) {
            assert!((x - y).abs() <= 8.0 * eb, "{x} vs {y}");
        }
    }

    #[test]
    fn all_three_collectives_compute_the_same_sum() {
        let ctx = CollectiveContext::new(4);
        let make = || -> Vec<Vec<f32>> { (0..4).map(|w| vec![w as f32 + 1.0; 16]).collect() };
        let mut ring = make();
        ctx.allreduce(&mut ring);
        let mut hier = make();
        ctx.allreduce_hierarchical(&mut hier, 2);
        let mut wa = make();
        ctx.allreduce_worker_aggregator(&mut wa);
        assert_eq!(ring[0], vec![10.0f32; 16]);
        assert_eq!(hier[3], vec![10.0f32; 16]);
        assert_eq!(wa[1], vec![10.0f32; 16]);
    }

    #[test]
    fn transport_choice_changes_accounting_not_values() {
        let make = || -> Vec<Vec<f32>> {
            (0..4)
                .map(|w| {
                    (0..500)
                        .map(|i| ((w * 500 + i) as f32).sin() * 0.01)
                        .collect()
                })
                .collect()
        };
        let shortcut = CollectiveContext::new(4).with_compression(ErrorBound::pow2(10));
        let hardware = shortcut.with_transport(TransportKind::TimedNic);
        let mut a = make();
        let stats_a = shortcut.allreduce_measured(&mut a);
        let mut b = make();
        let stats_b = hardware.allreduce_measured(&mut b);
        assert_eq!(a, b, "transport must not change the values");
        assert_eq!(stats_a.link_latency_ns, 0);
        assert_eq!(stats_a.engine_cycles, 0);
        assert!(stats_b.link_latency_ns > 0);
        assert!(stats_b.engine_cycles > 0);
        assert!(stats_b.wire_ratio() > 1.5, "ratio {}", stats_b.wire_ratio());
    }

    #[test]
    #[should_panic(expected = "one gradient vector per worker")]
    fn allreduce_checks_worker_count() {
        CollectiveContext::new(3).allreduce(&mut [vec![0.0f32]]);
    }
}
