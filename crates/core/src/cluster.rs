//! End-to-end cluster timing model.
//!
//! Combines the per-iteration local compute costs of a
//! [`ModelProfile`] (the paper's own Table II measurements) with the
//! packet-level network simulation of [`inceptionn_netsim`] to predict
//! the training time of the four systems Fig. 12 compares:
//!
//! | system | exchange | compression |
//! |---|---|---|
//! | `Wa`   | worker-aggregator | none |
//! | `WaC`  | worker-aggregator | gradient (up) leg only |
//! | `Inc`  | INCEPTIONN ring   | none |
//! | `IncC` | INCEPTIONN ring   | both legs |

use inceptionn_compress::gradmodel::{GradientModel, GradientPreset};
use inceptionn_compress::{ErrorBound, InceptionnCodec};
use inceptionn_dnn::profile::ModelProfile;
use inceptionn_netsim::collective::{
    ring_exchange, worker_aggregator_exchange, RING_HOST_S_PER_BYTE,
};
use inceptionn_netsim::sim::NetworkConfig;
use inceptionn_netsim::transfer::CompressionSpec;
use inceptionn_nicsim::engine::{NS_PER_CYCLE, PIPELINE_DEPTH};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The four systems of Fig. 12.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// Conventional worker-aggregator training (the paper's baseline).
    Wa,
    /// Worker-aggregator with in-NIC compression of the gradient leg.
    WaC,
    /// INCEPTIONN's ring algorithm without compression.
    Inc,
    /// The full INCEPTIONN system: ring plus both-leg compression.
    IncC,
}

impl SystemKind {
    /// All four systems in Fig. 12's order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Wa,
        SystemKind::WaC,
        SystemKind::Inc,
        SystemKind::IncC,
    ];

    /// The paper's label for the system.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Wa => "WA",
            SystemKind::WaC => "WA+C",
            SystemKind::Inc => "INC",
            SystemKind::IncC => "INC+C",
        }
    }

    /// Whether this system uses the ring exchange.
    pub fn is_ring(self) -> bool {
        matches!(self, SystemKind::Inc | SystemKind::IncC)
    }

    /// Whether this system compresses gradient traffic.
    pub fn is_compressed(self) -> bool {
        matches!(self, SystemKind::WaC | SystemKind::IncC)
    }
}

/// Cluster-level parameters shared by all timing experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Worker count (the paper's testbed: 4, plus one aggregator for WA).
    pub workers: usize,
    /// Error bound of the NIC engines for the `+C` systems.
    pub bound: ErrorBound,
    /// Gradient values sampled when measuring a model's compression
    /// ratio (larger = tighter estimate).
    pub ratio_samples: usize,
    /// Per-byte host cost of the ring's receive→reduce→send loop
    /// (see [`RING_HOST_S_PER_BYTE`]); set to 0 for an idealized stack.
    pub ring_host_s_per_byte: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            bound: ErrorBound::default(),
            ratio_samples: 50_000,
            ring_host_s_per_byte: RING_HOST_S_PER_BYTE,
        }
    }
}

/// Per-iteration wall-clock breakdown (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Forward + backward + copies + weight update.
    pub local_compute_s: f64,
    /// Gradient sum-reduction (central for WA, distributed for INC).
    pub reduce_s: f64,
    /// Time on the wire (including NIC engine latency when compressed).
    pub comm_s: f64,
}

impl IterationBreakdown {
    /// Total iteration wall-clock.
    pub fn total_s(&self) -> f64 {
        self.local_compute_s + self.reduce_s + self.comm_s
    }

    /// Fraction of the iteration spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        self.comm_s / self.total_s()
    }
}

/// Measures a model's average gradient compression ratio at a bound by
/// compressing a sampled synthetic stream of its calibrated
/// distribution.
pub fn measured_compression_ratio(
    preset: GradientPreset,
    bound: ErrorBound,
    samples: usize,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let grads = GradientModel::preset(preset).sample(&mut rng, samples.max(1));
    InceptionnCodec::new(bound)
        .compress(&grads)
        .compression_ratio()
}

/// The [`CompressionSpec`] the network simulator should apply for a
/// model at a bound: measured payload ratio plus the hardware engine's
/// per-MTU-packet pipeline latency.
pub fn compression_spec(
    preset: GradientPreset,
    bound: ErrorBound,
    samples: usize,
) -> CompressionSpec {
    let ratio = measured_compression_ratio(preset, bound, samples, 0xC0FFEE);
    // An MTU payload holds 362 f32 lanes = 46 input bursts; compress on
    // TX plus decompress on RX, each pipelined.
    let bursts_per_packet = (1448u64 / 4).div_ceil(8);
    let engine_latency_ns = 2 * (bursts_per_packet + PIPELINE_DEPTH) * NS_PER_CYCLE;
    CompressionSpec::new(ratio.max(1.0), engine_latency_ns)
}

/// Predicts one training iteration of `profile` under `system`.
pub fn iteration_breakdown(
    profile: &ModelProfile,
    system: SystemKind,
    cfg: &ClusterConfig,
) -> IterationBreakdown {
    let gamma = profile.gamma_per_byte();
    let spec = system
        .is_compressed()
        .then(|| compression_spec(profile.grad_preset, cfg.bound, cfg.ratio_samples));
    let exchange = if system.is_ring() {
        let net = NetworkConfig::ten_gbe(cfg.workers);
        ring_exchange(
            &net,
            profile.weight_bytes,
            gamma,
            spec,
            cfg.ring_host_s_per_byte,
        )
    } else {
        let net = NetworkConfig::ten_gbe(cfg.workers + 1);
        worker_aggregator_exchange(&net, cfg.workers, profile.weight_bytes, gamma, spec)
    };
    IterationBreakdown {
        local_compute_s: profile.local_compute_seconds(),
        reduce_s: exchange.reduce_s,
        comm_s: exchange.comm_s,
    }
}

/// Training-set size of a profile's dataset (ImageNet for the CNNs,
/// MNIST-scale for HDC).
pub fn dataset_samples(profile: &ModelProfile) -> u64 {
    match profile.grad_preset {
        GradientPreset::Hdc => 60_000,
        _ => 1_280_000,
    }
}

/// Iterations per epoch on a `workers`-node cluster.
pub fn iterations_per_epoch(profile: &ModelProfile, workers: usize) -> u64 {
    dataset_samples(profile) / (profile.batch_per_node as u64 * workers as u64)
}

/// Wall-clock hours to train `epochs` epochs of `profile` on `system`.
pub fn training_hours(
    profile: &ModelProfile,
    system: SystemKind,
    cfg: &ClusterConfig,
    epochs: u32,
) -> f64 {
    let per_iter = iteration_breakdown(profile, system, cfg).total_s();
    let iters = iterations_per_epoch(profile, cfg.workers) * epochs as u64;
    per_iter * iters as f64 / 3600.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use inceptionn_dnn::profile::ModelId;

    fn quick_cfg() -> ClusterConfig {
        ClusterConfig {
            ratio_samples: 5_000,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn wa_iteration_matches_table_ii_for_alexnet() {
        let profile = ModelProfile::of(ModelId::AlexNet);
        let b = iteration_breakdown(&profile, SystemKind::Wa, &quick_cfg());
        // Paper Table II: 1.487 s communicate, 1.9635 s total per iteration.
        assert!(
            (b.comm_s - profile.paper_t_communicate).abs() / profile.paper_t_communicate < 0.15,
            "comm {:.3}s vs paper {:.3}s",
            b.comm_s,
            profile.paper_t_communicate
        );
        assert!(
            b.comm_fraction() > 0.70,
            "comm fraction {:.2}",
            b.comm_fraction()
        );
    }

    #[test]
    fn systems_order_correctly() {
        // Fig. 12's ordering: WA slowest, then WA+C, INC, INC+C fastest.
        let profile = ModelProfile::of(ModelId::AlexNet);
        let cfg = quick_cfg();
        let t: Vec<f64> = SystemKind::ALL
            .iter()
            .map(|&s| iteration_breakdown(&profile, s, &cfg).total_s())
            .collect();
        assert!(t[0] > t[1], "WA {:.3} should exceed WA+C {:.3}", t[0], t[1]);
        assert!(
            t[1] > t[2],
            "WA+C {:.3} should exceed INC {:.3}",
            t[1],
            t[2]
        );
        assert!(
            t[2] > t[3],
            "INC {:.3} should exceed INC+C {:.3}",
            t[2],
            t[3]
        );
    }

    #[test]
    fn full_system_speedup_is_in_paper_range() {
        // Fig. 12: INC+C is 2.2-3.1x faster than WA at equal epochs.
        let cfg = quick_cfg();
        for id in [ModelId::AlexNet, ModelId::ResNet50, ModelId::Vgg16] {
            let profile = ModelProfile::of(id);
            let wa = iteration_breakdown(&profile, SystemKind::Wa, &cfg).total_s();
            let inc_c = iteration_breakdown(&profile, SystemKind::IncC, &cfg).total_s();
            let speedup = wa / inc_c;
            assert!(
                (1.8..4.5).contains(&speedup),
                "{}: speedup {speedup:.2}",
                profile.name()
            );
        }
    }

    #[test]
    fn communication_reduction_hits_paper_band() {
        // Sec. VIII-A: INC+C cuts communication time by ~70.9-80.7% vs WA.
        let cfg = quick_cfg();
        let mut in_band = 0;
        for id in ModelId::EVALUATED {
            let profile = ModelProfile::of(id);
            let wa = iteration_breakdown(&profile, SystemKind::Wa, &cfg).comm_s;
            let inc_c = iteration_breakdown(&profile, SystemKind::IncC, &cfg).comm_s;
            let cut = 1.0 - inc_c / wa;
            assert!(cut > 0.60, "{}: comm cut only {cut:.2}", profile.name());
            if (0.68..0.88).contains(&cut) {
                in_band += 1;
            }
        }
        assert!(in_band >= 2, "most models should land in the paper band");
    }

    #[test]
    fn measured_ratio_grows_with_looser_bounds() {
        let r10 =
            measured_compression_ratio(GradientPreset::AlexNet, ErrorBound::pow2(10), 20_000, 1);
        let r6 =
            measured_compression_ratio(GradientPreset::AlexNet, ErrorBound::pow2(6), 20_000, 1);
        assert!(r6 > r10, "{r6} vs {r10}");
        assert!(r6 > 9.0, "loose-bound ratio {r6}");
    }

    #[test]
    fn training_hours_reproduce_fig13_baseline() {
        // Fig. 13: WA AlexNet trains 64 epochs in ~175 h.
        let profile = ModelProfile::of(ModelId::AlexNet);
        let h = training_hours(&profile, SystemKind::Wa, &quick_cfg(), 64);
        assert!((140.0..210.0).contains(&h), "AlexNet WA: {h:.0} h");
        // HDC: 17 epochs in ~170 s.
        let hdc = ModelProfile::of(ModelId::Hdc);
        let s = training_hours(&hdc, SystemKind::Wa, &quick_cfg(), 17) * 3600.0;
        assert!((100.0..260.0).contains(&s), "HDC WA: {s:.0} s");
    }

    #[test]
    fn epoch_accounting_matches_table_i() {
        // 64 epochs * 5000 iters/epoch = Table I's 320k AlexNet iterations.
        let profile = ModelProfile::of(ModelId::AlexNet);
        assert_eq!(iterations_per_epoch(&profile, 4), 5_000);
        assert_eq!(
            iterations_per_epoch(&profile, 4) * 64,
            profile.train_iterations
        );
        let vgg = ModelProfile::of(ModelId::Vgg16);
        assert_eq!(iterations_per_epoch(&vgg, 4) * 74, vgg.train_iterations);
    }
}
