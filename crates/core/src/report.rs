//! Plain-text table rendering for the experiment binaries.

/// A simple fixed-width text table builder.
///
/// # Examples
///
/// ```
/// use inceptionn::report::TextTable;
///
/// let mut t = TextTable::new(vec!["model", "ratio"]);
/// t.row(vec!["AlexNet".into(), "5.5".into()]);
/// let s = t.render();
/// assert!(s.contains("AlexNet"));
/// assert!(s.contains("model"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..cols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[c], width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

/// Formats seconds adaptively (s vs h).
pub fn human_time(seconds: f64) -> String {
    if seconds >= 3600.0 {
        format!("{:.1}h", seconds / 3600.0)
    } else if seconds >= 1.0 {
        format!("{seconds:.2}s")
    } else {
        format!("{:.2}ms", seconds * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a", "bb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        t.row(vec!["z".into(), "wwww".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].starts_with("---"));
        // All data lines align the second column.
        let col = lines[2].find("y").unwrap();
        assert_eq!(lines[3].find("wwww").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn helpers_format() {
        assert_eq!(pct(0.7571), "75.7%");
        assert_eq!(human_time(7200.0), "2.0h");
        assert_eq!(human_time(2.5), "2.50s");
        assert_eq!(human_time(0.0136), "13.60ms");
    }
}
